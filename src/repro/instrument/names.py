"""Canonical counter, gauge, and timer names.

Every instrumented module draws its metric names from this table so
tests, benchmarks, and exports agree on spelling.  The names map onto
the paper's work accounting as follows:

========================  ==================================================
name                      meaning (paper reference)
========================  ==================================================
``plan.nodes``            operator nodes materialized by the plan executor
                          per the Section II-B cost model
                          ``sum_v (1 - prod_q (1 - sr_q))``; on sr=1
                          instances the per-round average equals
                          :func:`repro.plans.cost.expected_plan_cost`
                          exactly.
``plan.merges``           binary top-k merges performed (one per
                          materialized operator node).
``plan.cache_hits``       round-memo hits: a node requested again within
                          the round after materialization (sharing paying
                          off inside one round).
``plan.cache_misses``     round-memo misses (first materialization of a
                          node in a round, leaves included).
``plan.leaf_scans``       advertiser leaf values read by operator nodes
                          (the shoe-store example's 470-vs-270 scan
                          bookkeeping).
``plan.node_merges``      *keyed* counter: merges per plan node id.
``plan.pairs_scored``     candidate pair unions whose greedy coverage
                          gain the planner actually computed.
``plan.pairs_skipped_lazy``  union scorings the lazy planner served from
                          its heap instead of recomputing (the naive
                          full rescan would have recomputed each).
``plan.covers_computed``  greedy set-cover/partition runs performed
                          while planning.
``plan.covers_memo_hits``  cover requests served from the lazy planner's
                          per-(query, candidate-generation) memo.
``plan.nodes_reused``     needed operator nodes served unchanged from the
                          cross-round cache (no merge, no leaf read) --
                          the per-round work the incremental executor
                          amortizes away.
``plan.nodes_invalidated``  cached node values invalidated by a round's
                          dirty leaves (the ancestor cone of changed
                          scores, restricted to resident cache entries);
                          plan rebinds after maintenance count their
                          dropped entries here too.
``plan.revalidations``    stale nodes proven unchanged without a merge
                          (both operand values identical to the last
                          computation); these count as materializations
                          but not merges, which is why the incremental
                          mode may report ``plan.merges <
                          plan.nodes``.
``plan.cache_evictions``  cross-round cache entries evicted by the
                          capacity bound (LRU order).
``plan.cache_resident``   *gauge*: entries resident in the cross-round
                          cache after the most recent round.
``topk.scans``            :func:`repro.core.topk.top_k_scan` invocations
                          (one per unshared per-phrase ranking).
``topk.scan_entries``     entries consumed by ``top_k_scan`` -- the
                          Section II-A unshared baseline's work.
``topk.merges``           :func:`repro.core.topk.top_k_merge` calls made
                          with an enabled collector.
``sort.leaf_reads``       advertiser bids read from the store by the
                          Section III merge network (sequential accesses).
``sort.operator_pulls``   items produced by on-demand merge operators --
                          the full-sort cost model's unit of work.
``sort.cache_replays``    stream reads served from an operator's output
                          cache with zero child pulls (sharing across
                          phrases paying off).
``sort.node_pulls``       *keyed* counter: pulls per shared-sort plan node
                          (assembly operators keyed by phrase).
``sort.batch_pulls``      batched stream reads issued through
                          :meth:`SortStream.items` (one per call; the
                          per-item engine would have issued one read per
                          returned item instead).
``sort.batched_items``    items returned by batched stream reads; the
                          ratio to ``sort.batch_pulls`` is the realized
                          amortization factor.
``sort.pairs_scored``     expected-savings evaluations performed by the
                          shared-sort plan builder (every same-size pair
                          every merge round under the naive builder;
                          only touched pairs under the lazy builder).
``sort.savings_memo_hits``  savings requests the lazy builder served from
                          its ``(size, phrase-mask)`` memo instead of
                          recomputing.
``sort.streams_reused``   streams served unchanged from the cross-round
                          sort cache (their output caches replay across
                          rounds for free).
``sort.streams_invalidated``  streams dropped by the cross-round sort
                          cache because a bid below them changed (the
                          dirty ancestor cone over the sort-plan DAG).
``ta.runs``               threshold-algorithm invocations (one per
                          occurring phrase in shared-sort mode).
``ta.sorted_accesses``    Section III sorted accesses across both lists.
``ta.random_accesses``    random-access score resolutions.
``ta.stages``             total stages executed; the gauge
                          ``ta.stop_depth`` holds the depth at which the
                          most recent run stopped.
``throttle.problems_reused``  Section IV throttle problems served
                          unchanged from the incremental throttle cache
                          (:class:`repro.budgets.incremental.IncrementalThrottleCache`)
                          -- the advertiser was clean on the change feed
                          and its ``(bid, multiplicity)`` key matched, so
                          its last b̂ / bounds were reused in O(1).
``throttle.problems_rebuilt``  throttle problems rebuilt because the
                          advertiser was dirty, its key moved, or it was
                          never cached.
``throttle.cache_invalidations``  cache entries marked dirty by drained
                          ``BudgetChanged``/``BidChanged`` events
                          (entries only; events for uncached advertisers
                          do not count).
``throttle.exact_fallbacks``  non-trivial exact b̂ computations -- the
                          ``O(min(2^l, l·β))`` DP/enumeration actually
                          ran (trivially-unthrottled shortcuts are
                          free and not counted).  This is the unit of
                          "throttle work" the budgets benchmark gates.
``throttle.bounds_comparisons``  interval comparisons made by
                          bound-driven top-k selection
                          (``throttle_mode="bounded"``).
``throttle.expansions``   largest-π expand-out refinement steps taken to
                          separate incomparable intervals -- the other
                          half of gated throttle work.
``bus.events_published``  events published on the engine's unified
                          change feed
                          (:class:`repro.engine.changefeed.ChangeFeed`).
``bus.events_consumed``   event deliveries: queue drains plus push-
                          handler invocations.  An event delivered to
                          two subscribers counts twice; an unmatched
                          event counts zero.
``cache.autotune_resizes``  LRU capacity changes the cache autotuner
                          (:class:`repro.engine.autotune.CacheAutotuner`)
                          actually applied (recommendations inside the
                          hysteresis band are not counted).
``cache.bypass_rounds``   rounds a cross-round cache ran fresh because
                          the windowed dirty fraction made caching a
                          net loss.
``columnar.score_batches``  vectorized scoring batches executed by the
                          columnar engine (one per round with occurring
                          phrases under ``layout="columnar"``).
``columnar.score_rows``   occurring rows scored per vectorized batch --
                          the columnar layout's unit of scoring work,
                          comparable to one object-path advertiser loop
                          iteration each.
``columnar.throttle_fallbacks``  debt-carrying advertisers the columnar
                          scorer handed back to the object path's exact
                          per-advertiser DP/enumeration (the closed-form
                          array kernel covers only empty-ledger rows).
``engine.rounds``         rounds resolved by the engine.
``engine.phrases``        phrase auctions resolved.
``engine.displays``       ads displayed.
``engine.clicks``         clicks settled *within rounds*.
``engine.revenue_cents``  click payments charged within rounds.  The
                          end-of-run flush of still-pending clicks
                          (:meth:`SharedAuctionEngine.run`) settles
                          outside any round and is reported on
                          :class:`EngineReport` only, so a short run's
                          ``EngineReport.revenue_cents`` can exceed this
                          counter.
``engine.forgiven_cents`` click value forgiven (over-budget clicks),
                          within rounds -- same flush caveat as revenue.
``serve.queries``         queries resolved by the serving loop
                          (:class:`repro.serving.ServingEngine`) -- one
                          per query-at-a-time tick.
``serve.query_seconds``   *timer*: wall time inside
                          :meth:`SharedAuctionEngine.serve_query`, per
                          query.
``serve.p50_ms``          *gauge*: exact nearest-rank median query
                          latency of the most recent serving session,
                          milliseconds.
``serve.p99_ms``          *gauge*: exact nearest-rank 99th-percentile
                          query latency, milliseconds.
``serve.qps``             *gauge*: sustained service throughput of the
                          session (queries / busy seconds).
========================  ==================================================

Wall-clock-derived serving figures are gauges, never counters: the
serving determinism test asserts that two identical serving runs record
identical *counters*, and latency cannot be part of that contract.
"""

from __future__ import annotations

__all__ = [
    "PLAN_NODES",
    "PLAN_MERGES",
    "PLAN_CACHE_HITS",
    "PLAN_CACHE_MISSES",
    "PLAN_LEAF_SCANS",
    "PLAN_NODE_MERGES",
    "PLAN_PAIRS_SCORED",
    "PLAN_PAIRS_SKIPPED_LAZY",
    "PLAN_COVERS_COMPUTED",
    "PLAN_COVERS_MEMO_HITS",
    "PLAN_NODES_REUSED",
    "PLAN_NODES_INVALIDATED",
    "PLAN_REVALIDATIONS",
    "PLAN_CACHE_EVICTIONS",
    "PLAN_CACHE_RESIDENT",
    "TOPK_SCANS",
    "TOPK_SCAN_ENTRIES",
    "TOPK_MERGES",
    "SORT_LEAF_READS",
    "SORT_OPERATOR_PULLS",
    "SORT_CACHE_REPLAYS",
    "SORT_NODE_PULLS",
    "SORT_BATCH_PULLS",
    "SORT_BATCHED_ITEMS",
    "SORT_PAIRS_SCORED",
    "SORT_SAVINGS_MEMO_HITS",
    "SORT_STREAMS_REUSED",
    "SORT_STREAMS_INVALIDATED",
    "TA_RUNS",
    "TA_SORTED_ACCESSES",
    "TA_RANDOM_ACCESSES",
    "TA_STAGES",
    "TA_STOP_DEPTH",
    "THROTTLE_PROBLEMS_REUSED",
    "THROTTLE_PROBLEMS_REBUILT",
    "THROTTLE_CACHE_INVALIDATIONS",
    "THROTTLE_EXACT_FALLBACKS",
    "THROTTLE_BOUNDS_COMPARISONS",
    "THROTTLE_EXPANSIONS",
    "BUS_EVENTS_PUBLISHED",
    "BUS_EVENTS_CONSUMED",
    "CACHE_AUTOTUNE_RESIZES",
    "CACHE_BYPASS_ROUNDS",
    "COLUMNAR_SCORE_BATCHES",
    "COLUMNAR_SCORE_ROWS",
    "COLUMNAR_THROTTLE_FALLBACKS",
    "ENGINE_ROUNDS",
    "ENGINE_PHRASES",
    "ENGINE_DISPLAYS",
    "ENGINE_CLICKS",
    "ENGINE_REVENUE_CENTS",
    "ENGINE_FORGIVEN_CENTS",
    "ENGINE_ROUND_TIMER",
    "SERVE_QUERIES",
    "SERVE_QUERY_TIMER",
    "SERVE_P50_MS",
    "SERVE_P99_MS",
    "SERVE_QPS",
]

# Shared-plan executor (Section II).
PLAN_NODES = "plan.nodes"
PLAN_MERGES = "plan.merges"
PLAN_CACHE_HITS = "plan.cache_hits"
PLAN_CACHE_MISSES = "plan.cache_misses"
PLAN_LEAF_SCANS = "plan.leaf_scans"
PLAN_NODE_MERGES = "plan.node_merges"

# Greedy planner work accounting (Section II-D heuristic).
PLAN_PAIRS_SCORED = "plan.pairs_scored"
PLAN_PAIRS_SKIPPED_LAZY = "plan.pairs_skipped_lazy"
PLAN_COVERS_COMPUTED = "plan.covers_computed"
PLAN_COVERS_MEMO_HITS = "plan.covers_memo_hits"

# Cross-round incremental execution (dirty-set invalidation layer).
PLAN_NODES_REUSED = "plan.nodes_reused"
PLAN_NODES_INVALIDATED = "plan.nodes_invalidated"
PLAN_REVALIDATIONS = "plan.revalidations"
PLAN_CACHE_EVICTIONS = "plan.cache_evictions"
PLAN_CACHE_RESIDENT = "plan.cache_resident"

# Top-k primitives (Section II-A).
TOPK_SCANS = "topk.scans"
TOPK_SCAN_ENTRIES = "topk.scan_entries"
TOPK_MERGES = "topk.merges"

# Shared on-demand merge-sort (Section III-B).
SORT_LEAF_READS = "sort.leaf_reads"
SORT_OPERATOR_PULLS = "sort.operator_pulls"
SORT_CACHE_REPLAYS = "sort.cache_replays"
SORT_NODE_PULLS = "sort.node_pulls"
SORT_BATCH_PULLS = "sort.batch_pulls"
SORT_BATCHED_ITEMS = "sort.batched_items"

# Shared-sort plan builder work accounting (Section III-C greedy).
SORT_PAIRS_SCORED = "sort.pairs_scored"
SORT_SAVINGS_MEMO_HITS = "sort.savings_memo_hits"

# Cross-round sort-stream reuse (dirty-set invalidation layer).
SORT_STREAMS_REUSED = "sort.streams_reused"
SORT_STREAMS_INVALIDATED = "sort.streams_invalidated"

# Threshold algorithm (Section III-A).
TA_RUNS = "ta.runs"
TA_SORTED_ACCESSES = "ta.sorted_accesses"
TA_RANDOM_ACCESSES = "ta.random_accesses"
TA_STAGES = "ta.stages"
TA_STOP_DEPTH = "ta.stop_depth"

# Incremental Section IV throttling (change-feed cache + bound-driven
# selection).
THROTTLE_PROBLEMS_REUSED = "throttle.problems_reused"
THROTTLE_PROBLEMS_REBUILT = "throttle.problems_rebuilt"
THROTTLE_CACHE_INVALIDATIONS = "throttle.cache_invalidations"
THROTTLE_EXACT_FALLBACKS = "throttle.exact_fallbacks"
THROTTLE_BOUNDS_COMPARISONS = "throttle.bounds_comparisons"
THROTTLE_EXPANSIONS = "throttle.expansions"

# Unified change feed and adaptive cache policy.
BUS_EVENTS_PUBLISHED = "bus.events_published"
BUS_EVENTS_CONSUMED = "bus.events_consumed"
CACHE_AUTOTUNE_RESIZES = "cache.autotune_resizes"
CACHE_BYPASS_ROUNDS = "cache.bypass_rounds"

# Columnar (struct-of-arrays) kernels.
COLUMNAR_SCORE_BATCHES = "columnar.score_batches"
COLUMNAR_SCORE_ROWS = "columnar.score_rows"
COLUMNAR_THROTTLE_FALLBACKS = "columnar.throttle_fallbacks"

# Engine rollups.
ENGINE_ROUNDS = "engine.rounds"
ENGINE_PHRASES = "engine.phrases"
ENGINE_DISPLAYS = "engine.displays"
ENGINE_CLICKS = "engine.clicks"
ENGINE_REVENUE_CENTS = "engine.revenue_cents"
ENGINE_FORGIVEN_CENTS = "engine.forgiven_cents"
ENGINE_ROUND_TIMER = "engine.round_seconds"

# Query-at-a-time serving loop.
SERVE_QUERIES = "serve.queries"
SERVE_QUERY_TIMER = "serve.query_seconds"
SERVE_P50_MS = "serve.p50_ms"
SERVE_P99_MS = "serve.p99_ms"
SERVE_QPS = "serve.qps"
