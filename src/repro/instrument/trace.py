"""Structured trace events in a bounded ring buffer.

A :class:`TraceRing` records :class:`TraceEvent` tuples emitted by an
enabled collector.  The buffer is a fixed-capacity ring: once full, the
oldest events are dropped (and counted in :attr:`TraceRing.dropped`) so
tracing a long engine run has bounded memory no matter how many rounds
execute.  Events carry a monotonically increasing sequence number, a
perf-counter timestamp relative to the ring's creation, an event name,
and a flat mapping of JSON-serializable fields.

The export format is deliberately plain -- ``{"events": [...],
"dropped": n}`` with one object per event -- so traces can be consumed
by ``jq``, pandas, or the Chrome-trace-style tooling of choice without a
schema dependency.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.errors import InvalidAuctionError

__all__ = ["TraceEvent", "TraceRing"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes:
        seq: Monotonically increasing sequence number (never reused, even
            when earlier events have been dropped from the ring).
        elapsed_s: Seconds since the ring was created (perf-counter
            clock; informational only -- never asserted on by tests).
        name: Event name, dotted like counter names (e.g.
            ``"engine.round"``).
        fields: Flat JSON-serializable payload.
    """

    seq: int
    elapsed_s: float
    name: str
    fields: Mapping[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        """The event as a plain JSON-ready dict."""
        return {
            "seq": self.seq,
            "elapsed_s": self.elapsed_s,
            "name": self.name,
            **dict(self.fields),
        }


class TraceRing:
    """A fixed-capacity ring buffer of trace events.

    Args:
        capacity: Maximum events retained; older events are dropped
            (counted) once the ring is full.  Must be positive.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise InvalidAuctionError(
                f"trace ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._next_seq = 0
        self.dropped = 0
        self._start = time.perf_counter()

    def append(self, name: str, **fields: Any) -> TraceEvent:
        """Record one event; returns the stored record."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = TraceEvent(
            seq=self._next_seq,
            elapsed_s=time.perf_counter() - self._start,
            name=name,
            fields=fields,
        )
        self._next_seq += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all retained events (sequence numbers keep increasing)."""
        self._events.clear()

    def as_dict(self) -> Dict[str, Any]:
        """The ring contents as a JSON-ready dict."""
        return {
            "dropped": self.dropped,
            "events": [event.as_dict() for event in self._events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the ring contents to JSON text."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def dump(self, path: str, indent: Optional[int] = 2) -> None:
        """Write the ring contents to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=indent))
            handle.write("\n")
