"""The metrics registry: a null collector and a recording collector.

Instrumented code takes a ``collector`` argument defaulting to
:data:`NULL`, the shared :class:`NullCollector` singleton, and calls
``collector.incr(name, n)`` (and friends) unconditionally.  The null
collector's methods are empty -- the cost of instrumentation when
disabled is one attribute lookup and one no-op call per *flush*, not per
unit of work, because hot loops accumulate locally and flush once.

Code that wants per-key detail (e.g. per-plan-node merge counts) guards
on :attr:`Collector.enabled` so the disabled path never pays for key
formatting:

    if collector.enabled:
        collector.incr_keyed(PLAN_NODE_MERGES, node_id)

:class:`MetricsCollector` records counters (monotone ints), keyed
counters (``name -> key -> int``), gauges (last-written floats), and
timers (count + total seconds via :meth:`Collector.timer`), and can
carry a :class:`repro.instrument.trace.TraceRing` for structured events.
:meth:`MetricsCollector.snapshot` / :meth:`MetricsCollector.delta_since`
support per-round rollups: snapshot before the round, diff after.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Hashable, Mapping, Optional

from repro.instrument.trace import TraceRing

__all__ = [
    "Collector",
    "NullCollector",
    "MetricsCollector",
    "TimerStats",
    "NULL",
]


class _NullTimer:
    """Context manager that measures nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class Collector:
    """The collector interface; the base class collects nothing.

    Attributes:
        enabled: ``False`` on the null collector; callers guard optional
            expensive detail (keyed counters, event payload formatting)
            on this flag.
    """

    enabled = False

    def incr(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name``."""

    def incr_keyed(self, name: str, key: Hashable, value: int = 1) -> None:
        """Add ``value`` to the ``key`` bucket of keyed counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""

    def timer(self, name: str) -> Any:
        """A context manager accumulating wall time under ``name``."""
        return _NULL_TIMER

    def event(self, name: str, **fields: Any) -> None:
        """Record a structured trace event (dropped without a trace ring)."""

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when unknown/disabled)."""
        return 0

    def snapshot(self) -> Dict[str, int]:
        """A frozen copy of the plain counters (empty when disabled)."""
        return {}

    def delta_since(self, snapshot: Mapping[str, int]) -> Dict[str, int]:
        """Counter increments since ``snapshot`` (empty when disabled)."""
        return {}


class NullCollector(Collector):
    """The no-op collector; use the shared :data:`NULL` singleton."""

    __slots__ = ()


NULL = NullCollector()
"""Shared no-op collector used as the default everywhere."""


class TimerStats:
    """Accumulated wall-time for one timer name."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready view."""
        return {"count": self.count, "total_s": self.total_s}


class _RunningTimer:
    """Context manager feeding one timed span into a TimerStats."""

    __slots__ = ("_stats", "_start")

    def __init__(self, stats: TimerStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "_RunningTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stats.count += 1
        self._stats.total_s += time.perf_counter() - self._start


class MetricsCollector(Collector):
    """A recording collector.

    Args:
        trace: Optional ring buffer receiving :meth:`event` records.
    """

    enabled = True

    def __init__(self, trace: Optional[TraceRing] = None) -> None:
        self.counters: Dict[str, int] = {}
        self.keyed_counters: Dict[str, Dict[Hashable, int]] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerStats] = {}
        self.trace = trace

    # -- recording -----------------------------------------------------
    def incr(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def incr_keyed(self, name: str, key: Hashable, value: int = 1) -> None:
        bucket = self.keyed_counters.setdefault(name, {})
        bucket[key] = bucket.get(key, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def timer(self, name: str) -> _RunningTimer:
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = TimerStats()
        return _RunningTimer(stats)

    def event(self, name: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.append(name, **fields)

    # -- reading -------------------------------------------------------
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def keyed(self, name: str) -> Dict[Hashable, int]:
        """A copy of keyed counter ``name`` (empty when unknown)."""
        return dict(self.keyed_counters.get(name, {}))

    def snapshot(self) -> Dict[str, int]:
        """A frozen copy of the plain counters, for later diffing."""
        return dict(self.counters)

    def delta_since(self, snapshot: Mapping[str, int]) -> Dict[str, int]:
        """Counter increments since ``snapshot`` (zero deltas omitted)."""
        delta: Dict[str, int] = {}
        for name, value in self.counters.items():
            change = value - snapshot.get(name, 0)
            if change:
                delta[name] = change
        return delta

    def reset(self) -> None:
        """Clear all recorded metrics (the trace ring is kept, cleared)."""
        self.counters.clear()
        self.keyed_counters.clear()
        self.gauges.clear()
        self.timers.clear()
        if self.trace is not None:
            self.trace.clear()

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """All metrics (and the trace, if any) as one JSON-ready dict."""
        payload: Dict[str, Any] = {
            "counters": dict(sorted(self.counters.items())),
            "keyed_counters": {
                name: {str(key): value for key, value in sorted(
                    bucket.items(), key=lambda item: str(item[0])
                )}
                for name, bucket in sorted(self.keyed_counters.items())
            },
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: stats.as_dict()
                for name, stats in sorted(self.timers.items())
            },
        }
        if self.trace is not None:
            payload["trace"] = self.trace.as_dict()
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize all metrics to JSON text."""
        return json.dumps(self.as_dict(), indent=indent)

    def dump(self, path: str, indent: Optional[int] = 2) -> None:
        """Write all metrics (and trace) to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=indent))
            handle.write("\n")
