"""Engine-wide instrumentation: metric registry and trace events.

The paper's claims are *work* claims -- shared plans materialize fewer
nodes (Section II), shared merge-sort streams feed the threshold
algorithm with fewer accesses (Section III) -- so the library threads a
collector through every hot path to account for where work happens.

Usage:

    from repro.instrument import MetricsCollector, TraceRing, names

    collector = MetricsCollector(trace=TraceRing())
    engine = SharedAuctionEngine(..., collector=collector)
    engine.run(100)
    print(collector.counter(names.PLAN_NODES))
    collector.dump("trace.json")

Instrumentation is off by default: every instrumented entry point
defaults to :data:`NULL`, a shared no-op collector whose methods do
nothing, and hot loops accumulate counts locally and flush once, so the
disabled overhead is a handful of no-op calls per round.  See
:mod:`repro.instrument.names` for the canonical counter vocabulary and
its mapping onto the paper's cost models.
"""

from repro.instrument import names
from repro.instrument.registry import (
    NULL,
    Collector,
    MetricsCollector,
    NullCollector,
    TimerStats,
)
from repro.instrument.trace import TraceEvent, TraceRing

__all__ = [
    "Collector",
    "MetricsCollector",
    "NullCollector",
    "TimerStats",
    "NULL",
    "TraceEvent",
    "TraceRing",
    "names",
]
