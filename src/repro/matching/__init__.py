"""Query-to-bid-phrase matching (the paper's assumed front end).

Section II-B assumes the two-stage method of Radlinski et al.: a raw
search query is first mapped into the lower-dimensional space of bid
phrases, then matched to advertisers' phrases by *exact* match.  This
package supplies that substrate so the engine can consume raw query
streams:

- :mod:`repro.matching.normalize` -- deterministic query normalization
  (case folding, punctuation stripping, token de-duplication, stopword
  removal);
- :mod:`repro.matching.rewriter` -- the two-stage rewriter: a phrase
  dictionary indexed by token, candidate generation by token overlap,
  Jaccard scoring with a threshold, then exact match downstream.
"""

from repro.matching.normalize import normalize_query, tokenize
from repro.matching.rewriter import PhraseDictionary, RewriteResult, TwoStageRewriter

__all__ = [
    "PhraseDictionary",
    "RewriteResult",
    "TwoStageRewriter",
    "normalize_query",
    "tokenize",
]
