"""Deterministic query normalization.

Normalization must be a pure function of the text: the same raw query
always lands on the same phrase, or advertisers could not reason about
which auctions their bid phrases enter.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Tuple

__all__ = ["STOPWORDS", "tokenize", "normalize_query"]

STOPWORDS: FrozenSet[str] = frozenset(
    {
        "a",
        "an",
        "and",
        "buy",
        "cheap",
        "for",
        "in",
        "of",
        "online",
        "or",
        "the",
        "to",
        "with",
    }
)
"""Tokens dropped during normalization.

Includes commercial filler ("buy", "cheap", "online") that rarely
distinguishes bid phrases; the list is intentionally small and fixed so
rewriting stays predictable.
"""

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase and split into alphanumeric tokens, in order."""
    return _TOKEN_PATTERN.findall(text.lower())


def normalize_query(text: str) -> Tuple[str, ...]:
    """Normalize a raw query into its canonical token tuple.

    Steps: lowercase, strip punctuation, drop stopwords, de-duplicate
    while keeping first-occurrence order.  The token *tuple* (not a
    joined string) is the canonical form so phrase matching can compare
    token sets without re-splitting.
    """
    seen = set()
    out: List[str] = []
    for token in tokenize(text):
        if token in STOPWORDS or token in seen:
            continue
        seen.add(token)
        out.append(token)
    return tuple(out)
