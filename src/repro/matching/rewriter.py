"""The two-stage query rewriter.

Stage 1 maps a normalized query into the bid-phrase space: candidate
phrases are generated from an inverted token index and scored by Jaccard
similarity between token sets; the best candidate above a threshold
wins (ties broken lexicographically for determinism).  Stage 2 -- exact
match of the chosen phrase against advertisers' phrase sets -- is what
the auction engine already does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import InvalidAuctionError
from repro.matching.normalize import normalize_query

__all__ = ["PhraseDictionary", "RewriteResult", "TwoStageRewriter"]


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of rewriting one raw query.

    Attributes:
        query: The raw query text.
        phrase: The matched bid phrase, or ``None`` when nothing cleared
            the threshold (the query then triggers no sponsored auction).
        score: Jaccard similarity of the winning match (0.0 on miss).
        exact: Whether the query normalized to exactly the phrase's
            tokens.
    """

    query: str
    phrase: Optional[str]
    score: float
    exact: bool


class PhraseDictionary:
    """The searchable set of known bid phrases.

    Args:
        phrases: The bid-phrase texts advertisers registered.

    Phrases are indexed both by their full normalized token set (exact
    lookups) and by individual tokens (candidate generation).
    """

    def __init__(self, phrases: Iterable[str]) -> None:
        self._token_sets: Dict[str, FrozenSet[str]] = {}
        self._by_tokens: Dict[FrozenSet[str], str] = {}
        self._inverted: Dict[str, Set[str]] = {}
        for phrase in phrases:
            tokens = frozenset(normalize_query(phrase))
            if not tokens:
                raise InvalidAuctionError(
                    f"bid phrase {phrase!r} normalizes to nothing"
                )
            self._token_sets[phrase] = tokens
            # First registration of a token set wins (deterministic).
            self._by_tokens.setdefault(tokens, phrase)
            for token in tokens:
                self._inverted.setdefault(token, set()).add(phrase)
        if not self._token_sets:
            raise InvalidAuctionError("phrase dictionary cannot be empty")

    def __len__(self) -> int:
        return len(self._token_sets)

    def __contains__(self, phrase: str) -> bool:
        return phrase in self._token_sets

    def exact(self, tokens: FrozenSet[str]) -> Optional[str]:
        """The phrase whose token set equals ``tokens``, if any."""
        return self._by_tokens.get(tokens)

    def candidates(self, tokens: FrozenSet[str]) -> List[str]:
        """Phrases sharing at least one token with the query, sorted."""
        found: Set[str] = set()
        for token in tokens:
            found |= self._inverted.get(token, set())
        return sorted(found)

    def tokens_of(self, phrase: str) -> FrozenSet[str]:
        """Normalized token set of a registered phrase."""
        try:
            return self._token_sets[phrase]
        except KeyError:
            raise InvalidAuctionError(f"unknown phrase {phrase!r}") from None


class TwoStageRewriter:
    """Stage-1 rewriting with Jaccard scoring over a phrase dictionary.

    Args:
        dictionary: The registered bid phrases.
        threshold: Minimum Jaccard similarity for a non-exact match
            (exact token-set matches always succeed).  Must be in
            ``(0, 1]``.
    """

    def __init__(self, dictionary: PhraseDictionary, threshold: float = 0.5) -> None:
        if not 0.0 < threshold <= 1.0:
            raise InvalidAuctionError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.dictionary = dictionary
        self.threshold = threshold

    def rewrite(self, query: str) -> RewriteResult:
        """Map one raw query to its bid phrase (or to no auction)."""
        tokens = frozenset(normalize_query(query))
        if not tokens:
            return RewriteResult(query, None, 0.0, False)
        exact = self.dictionary.exact(tokens)
        if exact is not None:
            return RewriteResult(query, exact, 1.0, True)
        best_phrase: Optional[str] = None
        best_score = 0.0
        for phrase in self.dictionary.candidates(tokens):
            phrase_tokens = self.dictionary.tokens_of(phrase)
            score = _jaccard(tokens, phrase_tokens)
            if score > best_score or (
                score == best_score
                and best_phrase is not None
                and phrase < best_phrase
            ):
                best_score = score
                best_phrase = phrase
        if best_phrase is None or best_score < self.threshold:
            return RewriteResult(query, None, best_score, False)
        return RewriteResult(query, best_phrase, best_score, False)

    def rewrite_stream(
        self, queries: Iterable[Tuple[float, str]]
    ) -> List[Tuple[float, str]]:
        """Rewrite a timestamped query stream, dropping misses.

        Returns ``(arrival_time, phrase)`` pairs ready for
        :class:`repro.engine.rounds.RoundBatcher`.
        """
        out: List[Tuple[float, str]] = []
        for arrival_time, query in queries:
            result = self.rewrite(query)
            if result.phrase is not None:
                out.append((arrival_time, result.phrase))
        return out


def _jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union
