"""Fragment-level columnar execution of shared aggregation rounds.

The object-path :class:`repro.plans.executor.PlanExecutor` answers each
round by walking the greedy plan DAG, materializing one
:class:`~repro.core.topk.TopKList` per operator node.  With the
population in a :class:`repro.core.columnar.ColumnarStore`, the same
sharing structure collapses to two vectorized steps:

1. every needed *fragment* (Section II-D.1 equivalence class of
   advertisers occurring in the same queries) is top-k'd **once** per
   round by :func:`repro.core.columnar.columnar_top_k` over its row
   slice;
2. each requested query's answer is the ``⊕``-merge of its fragments'
   k-lists -- exact because fragments partition the query's variable
   set, and the binary top-k merge of exact per-part top-k lists is the
   exact top-k of the union (axioms A1-A4).

This keeps the paper's sharing (a fragment shared by ten queries is
scanned once, not ten times) while replacing every per-advertiser
Python loop with ``np.argpartition``.  The greedy plan itself is never
built: fragment identification is the cheap first stage of planning,
and the merge tree above fragments is a balanced left fold, which is
sufficient because ``⊕`` is associative and commutative -- answers are
byte-identical to the plan executor's, as the layout differential
asserts.

Cross-round caching (``exec_cache=True``) runs in *array space*
(``cross_round=True``): instead of the object executor's per-variable
score dicts and DAG-node ancestor-cone walks, the executor keeps a
full-length last-seen score column, a seen mask, per-row and
per-fragment epoch arrays, and a per-fragment dirty flag.  Draining the
:class:`repro.engine.changefeed.ChangeFeed` yields declared-dirty
advertiser ids; one vectorized compare against the snapshot refines the
declaration to the rows whose score actually moved (and, under
``verify=True``, cross-checks that no undeclared row moved -- the same
declared-vs-diffed soundness contract as
:class:`repro.plans.executor.CrossRoundPlanExecutor`).  The
"invalidation cone" of a dirty row is simply its fragment: a
row-to-fragment index map turns the dirty rows into dirty fragments in
O(|dirty|), clean fragments replay their cached
:class:`~repro.core.topk.TopKList` with zero scans, and a per-query
operand-identity memo skips the final merges when every fragment list
is literally the same object as last time (the columnar analogue of
the object cache's merge-free revalidation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.columnar import ColumnarStore, columnar_top_k, require_numpy
from repro.core.topk import TopKList, top_k_merge
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names
from repro.plans.fragments import identify_fragments
from repro.plans.instance import SharedAggregationInstance

try:  # pragma: no cover - numpy ships with the package
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["ColumnarExecResult", "ColumnarFragmentExecutor"]


@dataclass
class ColumnarExecResult:
    """One round's answers and work, mirroring ``ExecutionResult``.

    Attributes:
        answers: ``{query name: TopKList}`` for every requested query.
        merges_performed: Binary top-k merges (one per extra fragment
            beyond the first in each requested query's cover).
        advertisers_scanned: Rows read by fragment materializations
            (each needed fragment is scanned exactly once per round --
            the sharing the paper's cost model counts).
        nodes_reused: Cross-round mode only: cached fragment /
            trivial-leaf lists served without a scan because no member
            row was dirty.
        nodes_invalidated: Cross-round mode only: resident cached
            fragments newly marked dirty by this round's dirty rows.
        nodes_revalidated: Cross-round mode only: merges skipped
            because every operand of a query's fold was identical (by
            object identity) to the last time the query was answered.
        bypassed: Cross-round mode only: the autotuner judged the
            observed dirty fraction too high for caching to pay and the
            round ran fresh (scores were still absorbed, so the cached
            state stays sound for later rounds).
    """

    answers: Dict[str, TopKList]
    merges_performed: int = 0
    advertisers_scanned: int = 0
    nodes_reused: int = 0
    nodes_invalidated: int = 0
    nodes_revalidated: int = 0
    bypassed: bool = False


class ColumnarFragmentExecutor:
    """Answers shared-aggregation rounds from fragment row slices.

    Args:
        instance: The engine's aggregation instance (defines queries,
            trivial queries, and -- via
            :func:`repro.plans.fragments.identify_fragments` -- the
            fragment partition).
        store: The columnar population; fragment member ids are
            translated to row indices once at construction.
        k: Result capacity (the engine passes ``slots + 1`` for GSP).
        collector: Counts ``plan.merges`` per fragment merge and
            ``plan.leaf_scans`` per row read, so shared-mode work tables
            keep their meaning under the columnar layout.  In
            cross-round mode additionally ``plan.nodes_reused`` /
            ``plan.nodes_invalidated`` / ``plan.revalidations``.
        cross_round: Keep fragment lists alive between rounds and
            rescore only fragments touching a dirty row (see the module
            docstring).  ``False`` (the default) answers each round
            from scratch with only a within-round fragment memo.
        verify: Cross-round mode only: keep the exact score diff as a
            soundness cross-check on the declared dirty sets -- an
            undeclared score change raises ``InvalidPlanError``.
            ``False`` trusts the declaration and keeps the last-seen
            snapshot for undeclared rows, so a later covering event
            still repairs the cache.
        autotuner: Optional duck-typed
            :class:`repro.engine.autotune.CacheAutotuner` (cross-round
            mode only).  Consulted per round for the bypass decision
            and fed the observed dirty fraction.  LRU sizing does not
            apply -- the resident set is bounded by the fragment count,
            exactly like the sort cache's stream set.

    Attributes:
        rounds: Cross-round rounds absorbed.
        bypass_rounds: Rounds answered fresh on autotuner advice.
    """

    def __init__(
        self,
        instance: SharedAggregationInstance,
        store: ColumnarStore,
        k: int,
        collector: Collector = NULL,
        cross_round: bool = False,
        verify: bool = True,
        autotuner=None,
    ) -> None:
        if k <= 0:
            raise InvalidPlanError(f"k must be positive, got {k}")
        self.k = k
        self.store = store
        self.collector = collector
        self.cross_round = cross_round
        self.verify = verify
        self.autotuner = autotuner
        fragments = identify_fragments(instance)
        self._fragment_rows: List = [
            store.rows_of(sorted(fragment.variables))
            for fragment in fragments
        ]
        self._fragments_of: Dict[str, Tuple[int, ...]] = {}
        covers: Dict[str, List[int]] = {
            query.name: [] for query in instance.queries
        }
        for index, fragment in enumerate(fragments):
            for name in fragment.query_names:
                covers[name].append(index)
        self._fragments_of = {
            name: tuple(indices) for name, indices in covers.items()
        }
        self._trivial: Dict[str, int] = {
            query.name: next(iter(query.variables))
            for query in instance.trivial_queries
        }
        self.rounds = 0
        self.bypass_rounds = 0
        self._subscription = None
        self._pending_dirty: Set[int] = set()
        if cross_round:
            require_numpy()
            size = store.size
            count = len(fragments)
            # Last absorbed score per row plus a seen mask: the array
            # analogue of the object executor's ``_last_scores`` dict
            # (absent key == never seen == always dirty).
            self._last_scores = np.zeros(size, dtype=np.float64)
            self._seen = np.zeros(size, dtype=bool)
            # Epochs bump exactly when a value actually changes -- the
            # same monotone versioning tests probe via ``leaf_epoch``.
            self._row_epoch = np.zeros(size, dtype=np.int64)
            self._frag_epoch = np.zeros(count, dtype=np.int64)
            self._frag_dirty = np.ones(count, dtype=bool)
            self._frag_value: List[Optional[TopKList]] = [None] * count
            # The vectorized invalidation cone: each row belongs to at
            # most one fragment, so dirty rows map to dirty fragments
            # with one fancy-index write.
            self._fragment_of_row = np.full(size, -1, dtype=np.int64)
            for index, rows in enumerate(self._fragment_rows):
                self._fragment_of_row[rows] = index
            self._trivial_value: Dict[str, TopKList] = {}
            self._trivial_epoch: Dict[str, int] = {}
            # Per-query merge memo: the operand tuple (by identity) and
            # the merged answer it produced.
            self._answer_ops: Dict[str, Tuple[TopKList, ...]] = {}
            self._answer_value: Dict[str, TopKList] = {}
            self._dirty_rows_last = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # change-feed consumption (cross-round mode)
    # ------------------------------------------------------------------
    def connect(self, feed) -> None:
        """Subscribe to a change feed; dirty sets then arrive as events.

        Same contract as
        :meth:`repro.plans.executor.CrossRoundPlanExecutor.connect`:
        :meth:`run_round` drains the subscription at the top of every
        round, unions the events' dirty advertisers into a pending set,
        and absorbs the ids the round actually scored; passing
        ``dirty=`` explicitly is then an error.
        """
        if not self.cross_round:
            raise InvalidPlanError(
                "connect requires cross_round=True (the uncached "
                "executor keeps no state to invalidate)"
            )
        if self._subscription is not None:
            raise InvalidPlanError("executor is already connected to a feed")
        self._subscription = feed.subscribe(
            name="columnar-exec-cache",
            kinds=(
                "bid_changed",
                "budget_changed",
                "advertiser_added",
                "advertiser_removed",
            ),
        )

    @property
    def pending_dirty(self) -> frozenset:
        """Advertisers declared dirty by drained events and not yet
        absorbed by a round that scored them (cross-round mode)."""
        return frozenset(self._pending_dirty)

    def fragment_epoch(self, index: int) -> int:
        """Monotone rescore count of one fragment (cross-round mode)."""
        return int(self._frag_epoch[index])

    def row_epoch(self, row: int) -> int:
        """Monotone change count of one row's absorbed score."""
        return int(self._row_epoch[row])

    def dirty_rows_last_round(self) -> "np.ndarray":
        """Row indices the last round treated as dirty (ascending).

        Exposed for the differential suites: the hypothesis property
        asserts these rows' advertiser ids equal the object executor's
        dirty cone leaves, round for round.
        """
        return self._dirty_rows_last

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def run_round(
        self,
        score_by_row,
        names: Sequence[str],
        rows=None,
        dirty: Optional[Iterable[int]] = None,
    ) -> ColumnarExecResult:
        """Answer the round's requested queries.

        Args:
            score_by_row: Full-length float64 array of effective scores;
                only rows belonging to the requested queries are read
                (the engine fills exactly the occurring rows).
            names: The requested (canonical) query names.
            rows: The round's scored row indices (ascending) -- the
                union of the requested queries' member rows.  The
                engine passes its occurring-row array; ``None`` derives
                it from ``names`` (one-off callers and tests).
            dirty: Cross-round mode only: explicitly declared dirty
                advertiser ids.  ``None`` with no connected feed
                auto-diffs every scored row.  Mutually exclusive with a
                connected feed.

        Raises:
            InvalidPlanError: If a name matches no query of the
                instance, or (cross-round ``verify=True``) a score
                changed without being declared dirty.
        """
        if not self.cross_round:
            if dirty is not None:
                raise InvalidPlanError(
                    "dirty declarations require cross_round=True"
                )
            return self._run_fresh(score_by_row, names)
        return self._run_cross_round(score_by_row, names, rows, dirty)

    def _run_fresh(
        self, score_by_row, names: Sequence[str]
    ) -> ColumnarExecResult:
        """One round from scratch, with only a within-round memo."""
        result = ColumnarExecResult(answers={})
        fragment_lists: Dict[int, TopKList] = {}
        collector = self.collector
        for name in names:
            trivial_variable = self._trivial.get(name)
            if trivial_variable is not None:
                row = self.store.row_of(trivial_variable)
                result.answers[name] = TopKList.singleton(
                    self.k, float(score_by_row[row]), trivial_variable
                )
                result.advertisers_scanned += 1
                if collector.enabled:
                    collector.incr(metric_names.PLAN_LEAF_SCANS)
                continue
            cover = self._fragments_of.get(name)
            if cover is None:
                raise InvalidPlanError(f"unknown query {name!r}")
            parts: List[TopKList] = []
            for index in cover:
                ranked = fragment_lists.get(index)
                if ranked is None:
                    ranked = self._scan_fragment(
                        index, score_by_row, result
                    )
                    fragment_lists[index] = ranked
                parts.append(ranked)
            result.answers[name] = self._fold(parts, result)
        return result

    def _run_cross_round(
        self,
        score_by_row,
        names: Sequence[str],
        rows,
        dirty: Optional[Iterable[int]],
    ) -> ColumnarExecResult:
        self.rounds += 1
        store = self.store
        if self._subscription is not None:
            if dirty is not None:
                raise InvalidPlanError(
                    "dirty sets arrive via the change feed once connected; "
                    "do not also declare them by argument"
                )
            for event in self._subscription.drain():
                self._pending_dirty |= event.dirty_advertisers
            declared_ids: Optional[Set[int]] = set(self._pending_dirty)
        elif dirty is not None:
            declared_ids = set(dirty)
        else:
            declared_ids = None
        if rows is None:
            rows = self._rows_for(names)
        else:
            rows = np.asarray(rows, dtype=np.int64)

        changed_count, invalidated = self._absorb_scores(
            score_by_row, rows, declared_ids
        )
        autotuner = self.autotuner
        if autotuner is not None and autotuner.should_bypass():
            # Fresh, cache-free execution: the scores were still
            # absorbed above (and dirty fragments stay marked), so the
            # resident lists remain sound for whenever caching resumes.
            result = self._run_fresh(score_by_row, names)
            result.nodes_invalidated = invalidated
            result.bypassed = True
            self.bypass_rounds += 1
            autotuner.record_bypass()
            if self.collector.enabled and invalidated:
                self.collector.incr(
                    metric_names.PLAN_NODES_INVALIDATED, invalidated
                )
            working_set = result.advertisers_scanned
        else:
            result = self._run_cached(score_by_row, names)
            result.nodes_invalidated = invalidated
            if self.collector.enabled and invalidated:
                self.collector.incr(
                    metric_names.PLAN_NODES_INVALIDATED, invalidated
                )
            working_set = result.nodes_reused + result.advertisers_scanned
        if declared_ids is not None and self._pending_dirty:
            # Scored advertisers are absorbed; events for everyone else
            # survive until they next occur.
            scored = np.zeros(store.size, dtype=bool)
            scored[rows] = True
            self._pending_dirty = {
                advertiser_id
                for advertiser_id in self._pending_dirty
                if advertiser_id not in store
                or not scored[store.row_of(advertiser_id)]
            }
        if autotuner is not None:
            autotuner.observe_round(changed_count, int(len(rows)), working_set)
        return result

    def _rows_for(self, names: Sequence[str]) -> "np.ndarray":
        """Scored-row union of the requested queries (sorted, unique)."""
        mask = np.zeros(self.store.size, dtype=bool)
        for name in names:
            trivial_variable = self._trivial.get(name)
            if trivial_variable is not None:
                mask[self.store.row_of(trivial_variable)] = True
                continue
            cover = self._fragments_of.get(name)
            if cover is None:
                raise InvalidPlanError(f"unknown query {name!r}")
            for index in cover:
                mask[self._fragment_rows[index]] = True
        return np.flatnonzero(mask)

    def _absorb_scores(
        self, score_by_row, rows, declared_ids: Optional[Set[int]]
    ) -> Tuple[int, int]:
        """Diff the scored rows against the snapshot; mark dirty fragments.

        The array-space transcription of
        ``CrossRoundPlanExecutor._absorb_scores``: first-sight rows are
        always dirty; declared rows are dirty iff their score actually
        moved; an undeclared move raises under ``verify=True`` and
        keeps the stale snapshot under ``verify=False`` (so a later
        covering event still repairs the cache).

        Returns:
            ``(changed, invalidated)``: rows whose score actually
            changed, and resident cached fragments newly invalidated.
        """
        store = self.store
        sub = score_by_row[rows]
        seen = self._seen[rows]
        changed = seen & (sub != self._last_scores[rows])
        if declared_ids is None:
            dirty_sub = ~seen | changed
        else:
            declared = np.zeros(store.size, dtype=bool)
            if declared_ids:
                present = sorted(
                    advertiser_id
                    for advertiser_id in declared_ids
                    if advertiser_id in store
                )
                if present:
                    declared[store.rows_of(present)] = True
            declared_sub = declared[rows]
            if self.verify:
                bad = changed & ~declared_sub
                if bad.any():
                    row = int(rows[int(np.flatnonzero(bad)[0])])
                    raise InvalidPlanError(
                        f"unsound dirty set: score of "
                        f"{int(store.ids[row])} changed "
                        f"({float(self._last_scores[row])} -> "
                        f"{float(score_by_row[row])}) but the variable "
                        "was not declared dirty"
                    )
            dirty_sub = ~seen | (declared_sub & changed)
        dirty_rows = rows[dirty_sub]
        self._dirty_rows_last = dirty_rows
        if not len(dirty_rows):
            return 0, 0
        self._last_scores[dirty_rows] = score_by_row[dirty_rows]
        self._seen[dirty_rows] = True
        self._row_epoch[dirty_rows] += 1
        fragment_ids = self._fragment_of_row[dirty_rows]
        fragment_ids = np.unique(fragment_ids[fragment_ids >= 0])
        invalidated = 0
        for index in fragment_ids:
            index = int(index)
            if not self._frag_dirty[index] and (
                self._frag_value[index] is not None
            ):
                invalidated += 1
            self._frag_dirty[index] = True
        return int(len(dirty_rows)), invalidated

    def _run_cached(
        self, score_by_row, names: Sequence[str]
    ) -> ColumnarExecResult:
        """Serve requested queries, rescanning only dirty fragments."""
        result = ColumnarExecResult(answers={})
        collector = self.collector
        for name in names:
            trivial_variable = self._trivial.get(name)
            if trivial_variable is not None:
                row = self.store.row_of(trivial_variable)
                epoch = int(self._row_epoch[row])
                cached = self._trivial_value.get(name)
                if cached is not None and self._trivial_epoch[name] == epoch:
                    result.answers[name] = cached
                    result.nodes_reused += 1
                    if collector.enabled:
                        collector.incr(metric_names.PLAN_NODES_REUSED)
                    continue
                answer = TopKList.singleton(
                    self.k, float(score_by_row[row]), trivial_variable
                )
                self._trivial_value[name] = answer
                self._trivial_epoch[name] = epoch
                result.answers[name] = answer
                result.advertisers_scanned += 1
                if collector.enabled:
                    collector.incr(metric_names.PLAN_LEAF_SCANS)
                continue
            cover = self._fragments_of.get(name)
            if cover is None:
                raise InvalidPlanError(f"unknown query {name!r}")
            parts: List[TopKList] = []
            for index in cover:
                if self._frag_dirty[index] or self._frag_value[index] is None:
                    ranked = self._scan_fragment(index, score_by_row, result)
                    self._frag_value[index] = ranked
                    self._frag_dirty[index] = False
                    self._frag_epoch[index] += 1
                else:
                    ranked = self._frag_value[index]
                    result.nodes_reused += 1
                    if collector.enabled:
                        collector.incr(metric_names.PLAN_NODES_REUSED)
                parts.append(ranked)
            if len(parts) == 1:
                result.answers[name] = parts[0]
                continue
            ops = tuple(parts)
            previous = self._answer_ops.get(name)
            if previous is not None and all(
                a is b for a, b in zip(previous, ops)
            ):
                # Merge-free revalidation: every operand is literally
                # the list the last fold consumed, so the fold's value
                # is unchanged.
                result.answers[name] = self._answer_value[name]
                skipped = len(parts) - 1
                result.nodes_revalidated += skipped
                if collector.enabled:
                    collector.incr(metric_names.PLAN_REVALIDATIONS, skipped)
                continue
            answer = self._fold(parts, result)
            self._answer_ops[name] = ops
            self._answer_value[name] = answer
            result.answers[name] = answer
        return result

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _scan_fragment(
        self, index: int, score_by_row, result: ColumnarExecResult
    ) -> TopKList:
        rows = self._fragment_rows[index]
        ranked = columnar_top_k(
            self.k, score_by_row[rows], self.store.ids[rows]
        )
        result.advertisers_scanned += len(rows)
        if self.collector.enabled:
            self.collector.incr(metric_names.PLAN_LEAF_SCANS, len(rows))
        return ranked

    def _fold(
        self, parts: List[TopKList], result: ColumnarExecResult
    ) -> TopKList:
        answer = parts[0]
        for part in parts[1:]:
            answer = top_k_merge(answer, part)
            result.merges_performed += 1
            if self.collector.enabled:
                self.collector.incr(metric_names.PLAN_MERGES)
        return answer
