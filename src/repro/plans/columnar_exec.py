"""Fragment-level columnar execution of shared aggregation rounds.

The object-path :class:`repro.plans.executor.PlanExecutor` answers each
round by walking the greedy plan DAG, materializing one
:class:`~repro.core.topk.TopKList` per operator node.  With the
population in a :class:`repro.core.columnar.ColumnarStore`, the same
sharing structure collapses to two vectorized steps:

1. every needed *fragment* (Section II-D.1 equivalence class of
   advertisers occurring in the same queries) is top-k'd **once** per
   round by :func:`repro.core.columnar.columnar_top_k` over its row
   slice;
2. each requested query's answer is the ``⊕``-merge of its fragments'
   k-lists -- exact because fragments partition the query's variable
   set, and the binary top-k merge of exact per-part top-k lists is the
   exact top-k of the union (axioms A1-A4).

This keeps the paper's sharing (a fragment shared by ten queries is
scanned once, not ten times) while replacing every per-advertiser
Python loop with ``np.argpartition``.  The greedy plan itself is never
built: fragment identification is the cheap first stage of planning,
and the merge tree above fragments is a balanced left fold, which is
sufficient because ``⊕`` is associative and commutative -- answers are
byte-identical to the plan executor's, as the layout differential
asserts.

Cross-round caching (``exec_cache=True``) stays on the object executor:
its dirty-cone bookkeeping is keyed to plan DAG nodes.  The engine
therefore uses this executor only for ``layout="columnar"`` without the
exec cache; with the cache it keeps the object plan and feeds it
vectorized scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.columnar import ColumnarStore, columnar_top_k
from repro.core.topk import TopKList, top_k_merge
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names
from repro.plans.fragments import identify_fragments
from repro.plans.instance import SharedAggregationInstance

__all__ = ["ColumnarExecResult", "ColumnarFragmentExecutor"]


@dataclass
class ColumnarExecResult:
    """One round's answers and work, mirroring ``ExecutionResult``.

    Attributes:
        answers: ``{query name: TopKList}`` for every requested query.
        merges_performed: Binary top-k merges (one per extra fragment
            beyond the first in each requested query's cover).
        advertisers_scanned: Rows read by fragment materializations
            (each needed fragment is scanned exactly once per round --
            the sharing the paper's cost model counts).
    """

    answers: Dict[str, TopKList]
    merges_performed: int = 0
    advertisers_scanned: int = 0


class ColumnarFragmentExecutor:
    """Answers shared-aggregation rounds from fragment row slices.

    Args:
        instance: The engine's aggregation instance (defines queries,
            trivial queries, and -- via
            :func:`repro.plans.fragments.identify_fragments` -- the
            fragment partition).
        store: The columnar population; fragment member ids are
            translated to row indices once at construction.
        k: Result capacity (the engine passes ``slots + 1`` for GSP).
        collector: Counts ``plan.merges`` per fragment merge and
            ``plan.leaf_scans`` per row read, so shared-mode work tables
            keep their meaning under the columnar layout.
    """

    def __init__(
        self,
        instance: SharedAggregationInstance,
        store: ColumnarStore,
        k: int,
        collector: Collector = NULL,
    ) -> None:
        if k <= 0:
            raise InvalidPlanError(f"k must be positive, got {k}")
        self.k = k
        self.store = store
        self.collector = collector
        fragments = identify_fragments(instance)
        self._fragment_rows: List = [
            store.rows_of(sorted(fragment.variables))
            for fragment in fragments
        ]
        self._fragments_of: Dict[str, Tuple[int, ...]] = {}
        covers: Dict[str, List[int]] = {
            query.name: [] for query in instance.queries
        }
        for index, fragment in enumerate(fragments):
            for name in fragment.query_names:
                covers[name].append(index)
        self._fragments_of = {
            name: tuple(indices) for name, indices in covers.items()
        }
        self._trivial: Dict[str, int] = {
            query.name: next(iter(query.variables))
            for query in instance.trivial_queries
        }

    def run_round(
        self, score_by_row, names: Sequence[str]
    ) -> ColumnarExecResult:
        """Answer the round's requested queries.

        Args:
            score_by_row: Full-length float64 array of effective scores;
                only rows belonging to the requested queries are read
                (the engine fills exactly the occurring rows).
            names: The requested (canonical) query names.

        Raises:
            InvalidPlanError: If a name matches no query of the
                instance.
        """
        result = ColumnarExecResult(answers={})
        fragment_lists: Dict[int, TopKList] = {}
        collector = self.collector
        for name in names:
            trivial_variable = self._trivial.get(name)
            if trivial_variable is not None:
                row = self.store.row_of(trivial_variable)
                result.answers[name] = TopKList.singleton(
                    self.k, float(score_by_row[row]), trivial_variable
                )
                result.advertisers_scanned += 1
                if collector.enabled:
                    collector.incr(metric_names.PLAN_LEAF_SCANS)
                continue
            cover = self._fragments_of.get(name)
            if cover is None:
                raise InvalidPlanError(f"unknown query {name!r}")
            parts: List[TopKList] = []
            for index in cover:
                ranked = fragment_lists.get(index)
                if ranked is None:
                    rows = self._fragment_rows[index]
                    ranked = columnar_top_k(
                        self.k,
                        score_by_row[rows],
                        self.store.ids[rows],
                    )
                    fragment_lists[index] = ranked
                    result.advertisers_scanned += len(rows)
                    if collector.enabled:
                        collector.incr(
                            metric_names.PLAN_LEAF_SCANS, len(rows)
                        )
                parts.append(ranked)
            answer = parts[0]
            for part in parts[1:]:
                answer = top_k_merge(answer, part)
                result.merges_performed += 1
                if collector.enabled:
                    collector.incr(metric_names.PLAN_MERGES)
            result.answers[name] = answer
        return result
