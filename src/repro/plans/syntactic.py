"""Optimal shared plans for non-associative operators (Fig. 5 PTIME rows).

Without associativity, an ``⊕``-expression's computation structure is
forced: the only admissible rewrites are the ones licensed by the
remaining axioms (swapping operands under A4, collapsing ``x ⊕ x`` under
A3).  Consequently a min-cost plan must contain one node per *distinct
canonical subterm* of the query set, and hash-consing canonical subtrees
is both optimal and polynomial -- the paper's PTIME rows for A1 = N.

:class:`SyntacticPlan` builds exactly that DAG; ``optimal_cost`` equals
the number of distinct canonical operator nodes, and tests cross-check
it against exhaustive search on tiny instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple, TypeVar

from repro.algebra.axioms import AxiomProfile
from repro.algebra.expressions import Expr, Op, Var, canonical_key
from repro.errors import InvalidPlanError

__all__ = ["SyntacticPlan", "count_distinct_subterms"]

T = TypeVar("T")


@dataclass(frozen=True)
class _SynNode:
    """One hash-consed node: a variable leaf or a pair of node ids."""

    node_id: int
    variable: Optional[str] = None
    left: Optional[int] = None
    right: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return self.variable is not None


class SyntacticPlan:
    """A hash-consed shared DAG for expressions under a non-associative profile.

    Args:
        queries: ``{name: expression}`` -- the ``⊕``-expressions to share.
        profile: The operator's axiom profile; must *not* include A1
            (associative profiles are the NP-hard territory handled by
            :mod:`repro.plans.greedy_planner`).

    Attributes:
        profile: The profile used for canonicalization.
    """

    def __init__(self, queries: Mapping[str, Expr], profile: AxiomProfile) -> None:
        if profile.associative:
            raise InvalidPlanError(
                "SyntacticPlan handles non-associative profiles only; "
                "use the shared-aggregation planners for associative ones"
            )
        if not queries:
            raise InvalidPlanError("need at least one query expression")
        self.profile = profile
        self._nodes: List[_SynNode] = []
        self._by_key: Dict[Hashable, int] = {}
        self._roots: Dict[str, int] = {}
        for name, expr in sorted(queries.items()):
            self._roots[name] = self._intern(expr)

    def _intern(self, expr: Expr) -> int:
        key = canonical_key(expr, self.profile)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        if isinstance(expr, Var):
            node = _SynNode(len(self._nodes), variable=expr.name)
        else:
            left = self._intern(expr.left)
            right = self._intern(expr.right)
            if self.profile.idempotent and left == right:
                # x ⊕ x collapses to x: no operator node needed.
                self._by_key[key] = left
                return left
            if self.profile.commutative and right < left:
                left, right = right, left
            node = _SynNode(len(self._nodes), left=left, right=right)
        self._nodes.append(node)
        self._by_key[key] = node.node_id
        return node.node_id

    @property
    def optimal_cost(self) -> int:
        """Number of operator nodes -- optimal for non-associative profiles."""
        return sum(1 for node in self._nodes if not node.is_leaf)

    @property
    def num_leaves(self) -> int:
        """Distinct variables appearing in the query set."""
        return sum(1 for node in self._nodes if node.is_leaf)

    def root_of(self, name: str) -> int:
        """Node id computing the named query."""
        try:
            return self._roots[name]
        except KeyError:
            raise InvalidPlanError(f"unknown query {name!r}") from None

    def shared_nodes(self) -> List[int]:
        """Ids of operator nodes referenced by more than one parent/root."""
        references: Dict[int, int] = {}
        for node in self._nodes:
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                references[node.left] = references.get(node.left, 0) + 1
                references[node.right] = references.get(node.right, 0) + 1
        for root in self._roots.values():
            references[root] = references.get(root, 0) + 1
        return [
            node.node_id
            for node in self._nodes
            if not node.is_leaf and references.get(node.node_id, 0) > 1
        ]

    def evaluate(
        self,
        combine: Callable[[T, T], T],
        assignment: Mapping[str, T],
    ) -> Dict[str, T]:
        """Evaluate every query bottom-up, computing each node once.

        Args:
            combine: The concrete (non-associative is fine) operator.
            assignment: Variable values.

        Returns:
            ``{query name: value}``.
        """
        values: Dict[int, T] = {}
        for node in self._nodes:
            if node.is_leaf:
                assert node.variable is not None
                try:
                    values[node.node_id] = assignment[node.variable]
                except KeyError:
                    raise InvalidPlanError(
                        f"no value bound for variable {node.variable!r}"
                    ) from None
            else:
                assert node.left is not None and node.right is not None
                values[node.node_id] = combine(
                    values[node.left], values[node.right]
                )
        return {name: values[root] for name, root in self._roots.items()}


def count_distinct_subterms(
    queries: Mapping[str, Expr], profile: AxiomProfile
) -> int:
    """Distinct canonical operator subterms across the query set.

    Equals :attr:`SyntacticPlan.optimal_cost`; exposed for tests that
    want the count without building the DAG.
    """
    keys: set[Hashable] = set()

    def walk(expr: Expr) -> Hashable:
        key = canonical_key(expr, profile)
        if isinstance(expr, Op):
            left = walk(expr.left)
            right = walk(expr.right)
            if profile.idempotent and left == right:
                return left
            keys.add(key)
        return key

    for expr in queries.values():
        walk(expr)
    return len(keys)
