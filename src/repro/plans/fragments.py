"""Fragment identification -- stage 1 of the planning heuristic.

Section II-D.1: associate with each variable the bit string recording
which query expressions it occurs in, and group variables with identical
bit strings.  The groups are equivalence classes called *fragments*
(after Krishnamurthy, Wu & Franklin's on-the-fly stream sharing).
Aggregating within a fragment is always safe -- no sharing boundary ever
splits a fragment -- and already provides basic multi-query optimization
because no fragment is computed twice.

Although there are ``2^m`` possible bit strings for ``m`` queries, at
most ``n`` fragments are non-empty for ``n`` variables; grouping is a
hash of bit strings, ``O(m * n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.plans.instance import SharedAggregationInstance

__all__ = ["Fragment", "identify_fragments", "fragment_cover_counts"]

Variable = Hashable


@dataclass(frozen=True)
class Fragment:
    """An equivalence class of variables occurring in the same queries.

    Attributes:
        signature: The membership bit string -- entry ``i`` is ``True``
            iff the fragment's variables occur in the ``i``-th
            (name-sorted) query of the instance.
        variables: The variables in the class.
        query_names: Names of the queries the fragment belongs to, in the
            instance's query order.
    """

    signature: Tuple[bool, ...]
    variables: FrozenSet[Variable]
    query_names: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.variables)


def identify_fragments(instance: SharedAggregationInstance) -> List[Fragment]:
    """Group the instance's variables into fragments.

    Variables that occur in *no* non-trivial query (they appear only in
    trivial single-variable queries) are excluded: they need no
    aggregation.  Fragments are returned sorted by signature (as a bool
    tuple) for determinism.

    Internally signatures are int bitmasks built in one pass over the
    query memberships (``O(sum_q |X_q|)`` instead of ``O(m * n)`` set
    probes); bit ``i`` of a query is placed at position ``m - 1 - i`` so
    plain integer order equals the lexicographic bool-tuple order and
    the public sort is unchanged.  The bool-tuple :attr:`Fragment.signature`
    remains the boundary type.
    """
    queries = instance.queries
    num_queries = len(queries)
    signature_of: Dict[Variable, int] = {}
    for index, query in enumerate(queries):
        bit = 1 << (num_queries - 1 - index)
        for variable in query.variables:
            signature_of[variable] = signature_of.get(variable, 0) | bit
    groups: Dict[int, set[Variable]] = {}
    for variable, signature in signature_of.items():
        groups.setdefault(signature, set()).add(variable)
    names = [q.name for q in queries]
    fragments = []
    for signature in sorted(groups, reverse=True):
        bits = tuple(
            bool(signature >> (num_queries - 1 - index) & 1)
            for index in range(num_queries)
        )
        fragments.append(
            Fragment(
                bits,
                frozenset(groups[signature]),
                tuple(n for n, bit in zip(names, bits) if bit),
            )
        )
    return fragments


def fragment_cover_counts(
    instance: SharedAggregationInstance, fragments: List[Fragment]
) -> Dict[str, int]:
    """Number of fragments making up each query's variable set.

    Because fragments partition each query's variables exactly, query
    ``q`` is the disjoint union of the fragments whose signature has
    ``q``'s bit set; the count is the size of the (unique) exact cover of
    ``X_q`` by fragments.  This is the starting value of ``|C_q|`` for
    the greedy completion stage.
    """
    counts = {q.name: 0 for q in instance.queries}
    for fragment in fragments:
        for name in fragment.query_names:
            counts[name] += 1
    return counts
