"""Serialization of shared-aggregation plans.

Plans are built *offline* (Section II-B: re-planning every round is not
feasible under the latency budget) and then loaded by the serving path,
so they need a stable on-disk form.  The format is plain JSON:

- the instance (queries with their variables and search rates), and
- the internal-node structure as ``(left, right)`` operand pairs in
  creation order (leaves are reconstructed from the instance).

Variables must be JSON-representable scalars (int or str), which covers
advertiser ids.  ``loads(dumps(plan))`` reproduces the plan exactly --
node ids, varsets, query assignment, and costs -- and the loader
re-validates, so a corrupted file cannot produce an inconsistent plan.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import InvalidPlanError
from repro.plans.dag import Plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance

__all__ = ["plan_to_dict", "plan_from_dict", "dumps", "loads"]

_FORMAT_VERSION = 1


def _encode_variable(variable: Any) -> List[Any]:
    if isinstance(variable, bool) or not isinstance(variable, (int, str)):
        raise InvalidPlanError(
            f"only int and str variables serialize; got {type(variable).__name__}"
        )
    kind = "i" if isinstance(variable, int) else "s"
    return [kind, variable]


def _decode_variable(encoded: List[Any]) -> Any:
    kind, value = encoded
    if kind == "i":
        return int(value)
    if kind == "s":
        return str(value)
    raise InvalidPlanError(f"unknown variable kind {kind!r}")


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    """Encode a validated plan as a JSON-ready dictionary."""
    plan.validate()
    queries = []
    for query in plan.instance.queries + plan.instance.trivial_queries:
        queries.append(
            {
                "name": query.name,
                "variables": [_encode_variable(v) for v in sorted(query.variables, key=repr)],
                "search_rate": query.search_rate,
            }
        )
    internal = []
    for node in plan.nodes:
        if node.is_leaf:
            continue
        internal.append({"id": node.node_id, "left": node.left, "right": node.right})
    assignments = {}
    for query in plan.instance.queries:
        node_id = plan.query_node(query)
        assert node_id is not None
        assignments[query.name] = node_id
    return {
        "version": _FORMAT_VERSION,
        "queries": queries,
        "internal_nodes": internal,
        "query_assignment": assignments,
    }


def plan_from_dict(data: Dict[str, Any]) -> Plan:
    """Rebuild a plan from its dictionary form.

    Raises:
        InvalidPlanError: On version mismatch, malformed structure, or a
            plan that fails re-validation.
    """
    if data.get("version") != _FORMAT_VERSION:
        raise InvalidPlanError(
            f"unsupported plan format version {data.get('version')!r}"
        )
    try:
        queries = [
            AggregateQuery(
                q["name"],
                [_decode_variable(v) for v in q["variables"]],
                q["search_rate"],
            )
            for q in data["queries"]
        ]
        instance = SharedAggregationInstance(queries)
        plan = Plan(instance)
        id_map: Dict[int, int] = {
            node.node_id: node.node_id for node in plan.nodes
        }
        for record in data["internal_nodes"]:
            left = id_map[record["left"]]
            right = id_map[record["right"]]
            new_id = plan.add_internal(left, right, reuse=False)
            id_map[record["id"]] = new_id
        for name, node_id in data["query_assignment"].items():
            plan.assign_query(name, id_map[node_id])
    except (KeyError, TypeError, IndexError) as exc:
        raise InvalidPlanError(f"malformed plan data: {exc}") from exc
    plan.validate()
    return plan


def dumps(plan: Plan) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), sort_keys=True)


def loads(text: str) -> Plan:
    """Deserialize a plan from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidPlanError(f"invalid plan JSON: {exc}") from exc
    return plan_from_dict(data)
