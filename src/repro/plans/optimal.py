"""Exhaustive optimal planning for small instances.

Optimal shared aggregation is NP-hard (Theorem 2), so these solvers are
exponential and intended for the small instances used to measure the
greedy heuristic's quality (benchmark E8) and to decode the Theorem 2/3
reductions.

Two observations keep the search space manageable:

- *Duplicate-free dominance*: merging two nodes with the same variable
  set never raises the expected cost (a node shared by query sets
  ``Q1, Q2`` costs ``1 - prod_{Q1 ∪ Q2}(1 - sr)``, which is at most the
  sum of the two copies' costs), so only plans whose internal nodes have
  distinct variable sets are enumerated.
- *Usefulness*: a node whose variable set is not a subset of any query's
  can never feed a query, contributes zero probability, and can be
  dropped; only subsets of query variable sets are enumerated.

:func:`optimal_plan_size` finds the minimum total cost (node count) by
iterative-deepening DFS.  :func:`optimal_plan` additionally enumerates
operand structures to minimize *expected* cost among plans with at most
``optimal size + extra_nodes`` internal nodes; with all search rates 1
the expected cost equals the node count and ``extra_nodes=0`` is exact.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.errors import PlanConstructionError
from repro.plans.cost import expected_plan_cost
from repro.plans.dag import Plan
from repro.plans.instance import SharedAggregationInstance

__all__ = ["optimal_plan_size", "optimal_plan"]

Variable = Hashable
VarSet = FrozenSet[Variable]


def _useful_universe(instance: SharedAggregationInstance) -> List[VarSet]:
    """All query variable sets, largest first (for subset checks)."""
    return sorted({q.variables for q in instance.queries}, key=len, reverse=True)


def _is_useful(varset: VarSet, queries: List[VarSet]) -> bool:
    return any(varset <= q for q in queries)


def optimal_plan_size(
    instance: SharedAggregationInstance, max_nodes: int = 64
) -> int:
    """Minimum number of internal nodes of any plan for the instance.

    Iterative-deepening DFS over states = sets of available variable
    sets.  Raises :class:`PlanConstructionError` if no plan with at most
    ``max_nodes`` internal nodes exists (a guard against runaway search;
    any instance is solvable with ``sum_q (|X_q| - 1)`` nodes).
    """
    query_sets = _useful_universe(instance)
    leaves = frozenset(frozenset({v}) for v in instance.variables)
    targets: Set[VarSet] = {q.variables for q in instance.queries}

    def missing(available: FrozenSet[VarSet]) -> int:
        return sum(1 for t in targets if t not in available)

    # Lower bounds: every distinct query varset needs a node, and a query
    # of size s needs at least s - 1 internal nodes in its downward
    # closure (each union can grow a varset by at most the partner's
    # size, and all nodes start as singletons).
    lower = max(len(targets), max(len(t) for t in targets) - 1)
    for budget in range(lower, max_nodes + 1):
        visited: Dict[FrozenSet[VarSet], int] = {}

        def dfs(available: FrozenSet[VarSet], remaining: int) -> bool:
            lacking = missing(available)
            if lacking == 0:
                return True
            if lacking > remaining:
                return False
            seen = visited.get(available)
            if seen is not None and seen >= remaining:
                return False
            visited[available] = remaining
            pool = sorted(available, key=lambda s: (len(s), repr(sorted(s, key=repr))))
            for left, right in combinations(pool, 2):
                if left <= right or right <= left:
                    continue
                union = left | right
                if union in available:
                    continue
                if not _is_useful(union, query_sets):
                    continue
                if dfs(available | {union}, remaining - 1):
                    return True
            return False

        if dfs(leaves, budget):
            return budget
    raise PlanConstructionError(
        f"no plan with at most {max_nodes} internal nodes found"
    )


def optimal_plan(
    instance: SharedAggregationInstance,
    extra_nodes: int = 0,
    max_nodes: int = 64,
) -> Plan:
    """Minimum-expected-cost plan among near-minimum-size plans.

    Enumerates every duplicate-free plan with at most
    ``optimal_plan_size(instance) + extra_nodes`` internal nodes,
    including all operand structures, and returns the one with the least
    expected materialization cost (ties broken deterministically by the
    construction order).

    With all search rates equal to 1 this is the exact optimum for
    ``extra_nodes = 0``.  For probabilistic instances the returned plan
    is exact within the size budget; raising ``extra_nodes`` widens the
    search (every useful node costs at least ``min_q sr_q``, so a budget
    of ``min_size + (upper_bound - lower_bound) / min_q sr_q`` is always
    sufficient).
    """
    min_size = optimal_plan_size(instance, max_nodes=max_nodes)
    budget = min_size + extra_nodes
    query_sets = _useful_universe(instance)
    targets: Set[VarSet] = {q.variables for q in instance.queries}

    leaves: List[VarSet] = [frozenset({v}) for v in instance.variables]
    best_plan: Optional[Plan] = None
    best_cost = float("inf")
    visited: Set[Tuple[FrozenSet[Tuple[VarSet, VarSet, VarSet]], int]] = set()

    Step = Tuple[VarSet, VarSet, VarSet]  # (union, left, right)

    def build(steps: List[Step]) -> Plan:
        plan = Plan(instance)
        for union, left, right in steps:
            left_id = plan.node_for_varset(left)
            right_id = plan.node_for_varset(right)
            assert left_id is not None and right_id is not None
            plan.add_internal(left_id, right_id)
        plan.validate()
        return plan

    def dfs(available: List[VarSet], steps: List[Step]) -> None:
        nonlocal best_plan, best_cost
        available_set = set(available)
        lacking = [t for t in targets if t not in available_set]
        if not lacking:
            plan = build(steps)
            cost = expected_plan_cost(plan)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_plan = plan
            return
        if len(steps) + len(lacking) > budget:
            return
        state = (frozenset(steps), len(steps))
        if state in visited:
            return
        visited.add(state)
        pool = sorted(available, key=lambda s: (len(s), repr(sorted(s, key=repr))))
        for left, right in combinations(pool, 2):
            if left <= right or right <= left:
                continue
            union = left | right
            if union in available_set:
                continue
            if not _is_useful(union, query_sets):
                continue
            steps.append((union, left, right))
            dfs(available + [union], steps)
            steps.pop()

    dfs(list(leaves), [])
    if best_plan is None:
        raise PlanConstructionError("optimal search failed to find a plan")
    return best_plan
