"""Shared top-k aggregation plans (Section II of the paper).

The shared-aggregation problem: given a set of aggregate queries, each a
set of variables (the advertisers interested in one bid phrase) with a
search rate, build a DAG of binary ``⊕`` nodes computing every query while
minimizing the *expected number of nodes materialized per round*.

Modules:

- :mod:`repro.plans.instance` -- queries and problem instances.
- :mod:`repro.plans.dag` -- the plan DAG and its structural validation.
- :mod:`repro.plans.cost` -- the expected-materialization cost model.
- :mod:`repro.plans.fragments` -- stage 1 of the heuristic: grouping
  variables by the exact set of queries they appear in.
- :mod:`repro.plans.set_cover` -- greedy and exact set cover.
- :mod:`repro.plans.varsets` -- interned variable-set bitmasks (the
  planner hot path's representation).
- :mod:`repro.plans.greedy_planner` -- the paper's two-stage heuristic.
- :mod:`repro.plans.baselines` -- no-sharing and fragment-only planners.
- :mod:`repro.plans.optimal` -- exhaustive optimal planning (small n).
- :mod:`repro.plans.reductions` -- the Theorem 2/3 set-cover reductions.
- :mod:`repro.plans.executor` -- runs a plan on live bids each round.
- :mod:`repro.plans.columnar_exec` -- vectorized fragment-level
  execution over a columnar store (no plan DAG).
"""

from repro.plans.baselines import fragment_only_plan, no_sharing_plan
from repro.plans.columnar_exec import (
    ColumnarExecResult,
    ColumnarFragmentExecutor,
)
from repro.plans.cost import expected_plan_cost, node_materialization_probability
from repro.plans.dag import Plan, PlanNode
from repro.plans.executor import (
    CrossRoundCache,
    CrossRoundPlanExecutor,
    ExecutionResult,
    PlanExecutor,
)
from repro.plans.fragments import Fragment, identify_fragments
from repro.plans.greedy_planner import GreedyPlannerStats, greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.optimal import optimal_plan
from repro.plans.set_cover import exact_min_set_cover, greedy_set_cover
from repro.plans.varsets import SubsetIndex, VarSetInterner

__all__ = [
    "AggregateQuery",
    "ColumnarExecResult",
    "ColumnarFragmentExecutor",
    "CrossRoundCache",
    "CrossRoundPlanExecutor",
    "ExecutionResult",
    "Fragment",
    "GreedyPlannerStats",
    "Plan",
    "PlanExecutor",
    "PlanNode",
    "SharedAggregationInstance",
    "SubsetIndex",
    "VarSetInterner",
    "exact_min_set_cover",
    "expected_plan_cost",
    "fragment_only_plan",
    "greedy_set_cover",
    "greedy_shared_plan",
    "identify_fragments",
    "no_sharing_plan",
    "node_materialization_probability",
    "optimal_plan",
]
