"""Interned bitmask representation of variable sets.

Planning is dominated by variable-set algebra: subset tests ("is this
candidate usable for that query?"), disjointness tests (non-idempotent
aggregates), unions (pair merges), and deterministic ordering
(tie-breaking).  Over ``frozenset`` objects each of these walks hashed
elements; at the "millions of bid phrases" scale the ROADMAP targets
that walk *is* the planner's inner loop.

:class:`VarSetInterner` assigns every variable of an instance a dense
integer id (in ``repr``-sorted order, matching the leaf order of
:class:`repro.plans.dag.Plan`) and represents a variable set as an int
bitmask.  Subset (``a & ~b == 0``), disjointness (``a & b == 0``) and
union (``a | b``) become single machine-word-per-64-variables int ops,
and the deterministic sort key for tie-breaking is a cached tuple of
variable ids instead of a ``repr`` string built in the inner loop.

:class:`SubsetIndex` answers "all known masks that are subsets of this
target" -- the planner's per-query *usable* filter -- by bucketing masks
by popcount so buckets wider than the target are skipped wholesale.

Bitmasks are an **internal** representation: the public planning API
(queries, plan nodes, covers) keeps speaking ``frozenset``; interning
happens once at the boundary.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Tuple,
)

from repro.errors import InvalidPlanError

__all__ = [
    "VarSetInterner",
    "SubsetIndex",
    "iter_bit_ids",
    "is_subset_mask",
    "are_disjoint_masks",
]

Variable = Hashable


def iter_bit_ids(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def is_subset_mask(a: int, b: int) -> bool:
    """Whether mask ``a`` is a subset of mask ``b``."""
    return not (a & ~b)


def are_disjoint_masks(a: int, b: int) -> bool:
    """Whether masks ``a`` and ``b`` share no variable."""
    return not (a & b)


class VarSetInterner:
    """Bijection between an instance's variables and dense bit positions.

    Ids are assigned in ``key``-sorted variable order -- by default
    ``repr``-sorted, the same order :class:`repro.plans.dag.Plan` seeds
    its leaves -- so id order, leaf order, and the planner's
    deterministic tie-breaking all agree and none of them depends on
    ``PYTHONHASHSEED``.  Callers whose exactness argument needs a
    *different* canonical order pass their own ``key``: the shared-sort
    builder interns bid phrases with ``key=str`` so that ascending bit
    ids reproduce ``sorted(phrases)`` exactly and float summations over
    per-phrase rates visit terms in the naive builder's order.

    Args:
        variables: The variables to intern (each hashable, all distinct).
        key: Sort key assigning bit ids; defaults to ``repr``.

    Attributes:
        variables: All interned variables, in id order.
    """

    __slots__ = ("variables", "_id_of", "_sort_keys", "_frozensets")

    def __init__(
        self,
        variables: Iterable[Variable],
        key: Callable[[Variable], object] = repr,
    ) -> None:
        self.variables: Tuple[Variable, ...] = tuple(
            sorted(variables, key=key)
        )
        self._id_of: Dict[Variable, int] = {
            variable: index for index, variable in enumerate(self.variables)
        }
        if len(self._id_of) != len(self.variables):
            raise InvalidPlanError("cannot intern duplicate variables")
        self._sort_keys: Dict[int, Tuple[int, ...]] = {}
        self._frozensets: Dict[int, FrozenSet[Variable]] = {}

    def __len__(self) -> int:
        return len(self.variables)

    def variable_id(self, variable: Variable) -> int:
        """The bit position assigned to ``variable``."""
        try:
            return self._id_of[variable]
        except KeyError:
            raise InvalidPlanError(
                f"variable {variable!r} is not interned"
            ) from None

    def mask_of(self, variables: Iterable[Variable]) -> int:
        """The bitmask of a collection of interned variables."""
        mask = 0
        id_of = self._id_of
        try:
            for variable in variables:
                mask |= 1 << id_of[variable]
        except KeyError:
            raise InvalidPlanError(
                f"variable {variable!r} is not interned"
            ) from None
        return mask

    def members(self, mask: int) -> Tuple[Variable, ...]:
        """The variables of ``mask`` in id (= ``repr``-sorted) order."""
        variables = self.variables
        return tuple(variables[index] for index in iter_bit_ids(mask))

    def frozenset_of(self, mask: int) -> FrozenSet[Variable]:
        """The frozenset for ``mask`` (cached per distinct mask)."""
        cached = self._frozensets.get(mask)
        if cached is None:
            cached = self._frozensets[mask] = frozenset(self.members(mask))
        return cached

    def sort_key(self, mask: int) -> Tuple[int, ...]:
        """Deterministic total-order key: the ascending id tuple.

        Cached per distinct mask, so tie-breaking in hot loops costs a
        dict lookup plus a tuple comparison instead of sorting the set
        and building a ``repr`` string every time.  Distinct masks always
        get distinct keys, which makes every planner ranking a *strict*
        total order -- the naive/lazy identity guarantee rests on that.
        """
        cached = self._sort_keys.get(mask)
        if cached is None:
            cached = self._sort_keys[mask] = tuple(iter_bit_ids(mask))
        return cached


class SubsetIndex:
    """Popcount-bucketed index answering subset queries over masks.

    ``subsets_of(target)`` returns every added mask that is a subset of
    ``target``.  Masks are bucketed by popcount; buckets wider than the
    target's popcount cannot contain subsets and are skipped without
    touching their members.  Within a bucket the test is one int op per
    mask.
    """

    __slots__ = ("_buckets", "_members")

    def __init__(self) -> None:
        self._buckets: Dict[int, List[int]] = {}
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, mask: int) -> bool:
        return mask in self._members

    def add(self, mask: int) -> bool:
        """Index ``mask``; returns whether it was new."""
        if mask in self._members:
            return False
        self._members.add(mask)
        self._buckets.setdefault(mask.bit_count(), []).append(mask)
        return True

    def subsets_of(self, target: int, strict: bool = False) -> List[int]:
        """All indexed masks that are subsets of ``target``.

        Results are grouped by ascending popcount, insertion-ordered
        within a bucket -- deterministic for a deterministic add
        sequence.  With ``strict`` the target itself is excluded.
        """
        limit = target.bit_count()
        out: List[int] = []
        for width in sorted(self._buckets):
            if width > limit:
                break
            for mask in self._buckets[width]:
                if mask & ~target:
                    continue
                if strict and mask == target:
                    continue
                out.append(mask)
        return out
