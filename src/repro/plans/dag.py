"""The shared-aggregation plan DAG.

A plan for a set of ``⊕``-expressions is a DAG in which (Section II-C):

1. every node has in-degree 0 or 2 (edges point operand -> operator);
2. in-degree-0 nodes are labeled with variables;
3. an in-degree-2 node is labeled with the aggregation of its operands;
4. every query expression is A-equivalent to some node's label.

Because the top-k operator is a semilattice (Lemma 1), a node's label is
fully captured by its *variable set*; :class:`PlanNode` therefore stores
the frozenset of variables below it instead of a syntax tree.

The *total cost* of a plan is its number of internal nodes; the *extra
cost* is total cost minus the base cost ``|E|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import InvalidPlanError
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.varsets import VarSetInterner

__all__ = ["PlanNode", "Plan"]

Variable = Hashable
NodeId = int


@dataclass(frozen=True)
class PlanNode:
    """One node of a plan DAG.

    Attributes:
        node_id: Dense integer id within the owning plan.
        varset: The set of variables aggregated below this node -- the
            node's label up to A-equivalence (Lemma 1).
        left: Operand node id, or ``None`` for a leaf.
        right: Operand node id, or ``None`` for a leaf.
    """

    node_id: NodeId
    varset: FrozenSet[Variable]
    left: Optional[NodeId] = None
    right: Optional[NodeId] = None

    @property
    def is_leaf(self) -> bool:
        """Whether the node is an in-degree-0 variable node."""
        return self.left is None

    @property
    def variable(self) -> Variable:
        """The variable labeling a leaf node."""
        if not self.is_leaf:
            raise InvalidPlanError(f"node {self.node_id} is not a leaf")
        (var,) = self.varset
        return var


class Plan:
    """A mutable-under-construction, validated shared-aggregation plan.

    Construction protocol: create with the instance, which seeds one leaf
    per variable; call :meth:`add_internal` to aggregate two existing
    nodes; a node whose varset equals a query's variable set automatically
    *answers* that query.  :meth:`validate` checks the Section II-C rules
    and that every query is answered.

    Attributes:
        instance: The problem instance the plan is for.
        interner: The plan's :class:`VarSetInterner`; every node's varset
            is mirrored as an int bitmask (:meth:`node_mask`) so planners
            can run set algebra on machine words while the public API
            keeps speaking frozensets.
    """

    def __init__(self, instance: SharedAggregationInstance) -> None:
        self.instance = instance
        self.interner = VarSetInterner(instance.variables)
        self._nodes: List[PlanNode] = []
        self._masks: List[int] = []
        self._by_varset: Dict[FrozenSet[Variable], NodeId] = {}
        self._by_mask: Dict[int, NodeId] = {}
        self._leaf_of: Dict[Variable, NodeId] = {}
        self._query_assignment: Dict[str, NodeId] = {}
        self._parent_index: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = None
        # The interner already holds the repr-sorted variable order.
        for index, variable in enumerate(self.interner.variables):
            node = PlanNode(len(self._nodes), frozenset({variable}))
            self._nodes.append(node)
            self._masks.append(1 << index)
            self._by_varset[node.varset] = node.node_id
            self._by_mask[1 << index] = node.node_id
            self._leaf_of[variable] = node.node_id

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_internal(
        self, left: NodeId, right: NodeId, reuse: bool = True
    ) -> NodeId:
        """Aggregate two existing nodes; returns the new node's id.

        When ``reuse`` is true (default) and a node with the resulting
        variable set already exists, that node's id is returned and
        nothing is added -- a good plan never holds two A-equivalent
        internal nodes, since duplicating one could only raise cost.
        Baseline planners pass ``reuse=False`` to model deliberately
        unshared computation (the plan definition permits duplicate
        labels; they are just wasteful).

        Raises:
            InvalidPlanError: If either operand id is unknown or the two
                operands are the same node (``v ⊕ v`` is ``v`` by
                idempotence and never needs a node).
        """
        if left == right:
            raise InvalidPlanError("a node cannot aggregate itself with itself")
        left_node = self.node(left)
        right_node = self.node(right)
        mask = self._masks[left] | self._masks[right]
        if reuse:
            # The mask mirror makes the reuse probe one int hash instead
            # of hashing a freshly-built frozenset.
            existing = self._by_mask.get(mask)
            if existing is not None:
                return existing
        varset = left_node.varset | right_node.varset
        node = PlanNode(len(self._nodes), varset, left, right)
        self._nodes.append(node)
        self._masks.append(mask)
        # First-created node wins the varset index so query lookups are
        # deterministic even when duplicates are forced.
        self._by_varset.setdefault(varset, node.node_id)
        self._by_mask.setdefault(mask, node.node_id)
        self._parent_index = None
        return node.node_id

    def add_chain(self, operands: Iterable[NodeId], reuse: bool = True) -> NodeId:
        """Aggregate several nodes left-to-right; returns the final node.

        With ``reuse`` true, intermediate unions reuse existing nodes when
        their variable sets already exist in the plan.
        """
        ids = list(operands)
        if not ids:
            raise InvalidPlanError("cannot aggregate an empty operand list")
        acc = ids[0]
        for nid in ids[1:]:
            acc = self.add_internal(acc, nid, reuse=reuse)
        return acc

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> PlanNode:
        """Node by id."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise InvalidPlanError(f"unknown node id {node_id}") from None

    def node_for_varset(self, varset: FrozenSet[Variable]) -> Optional[NodeId]:
        """Id of the node labeled with exactly ``varset``, if any."""
        return self._by_varset.get(frozenset(varset))

    def node_mask(self, node_id: NodeId) -> int:
        """The node's varset as an interned bitmask."""
        self.node(node_id)
        return self._masks[node_id]

    def node_for_mask(self, mask: int) -> Optional[NodeId]:
        """Id of the node whose varset interns to exactly ``mask``."""
        return self._by_mask.get(mask)

    def leaf_of(self, variable: Variable) -> NodeId:
        """Id of the leaf for ``variable``."""
        try:
            return self._leaf_of[variable]
        except KeyError:
            raise InvalidPlanError(f"unknown variable {variable!r}") from None

    @property
    def nodes(self) -> Tuple[PlanNode, ...]:
        """All nodes, in creation order (children precede parents)."""
        return tuple(self._nodes)

    def internal_nodes(self) -> List[PlanNode]:
        """All operator (in-degree-2) nodes."""
        return [n for n in self._nodes if not n.is_leaf]

    def assign_query(self, name: str, node_id: NodeId) -> None:
        """Pin a query to a specific node (overriding varset lookup).

        Baseline planners use this when duplicate-label nodes exist and a
        query must be answered by its *own* chain's root rather than an
        earlier node that happens to carry the same label.

        Raises:
            InvalidPlanError: If the node's varset does not equal the
                query's variable set (rule 4 would be violated).
        """
        query = self.instance.query_by_name(name)
        node = self.node(node_id)
        if node.varset != query.variables:
            raise InvalidPlanError(
                f"cannot assign query {name!r} to node {node_id}: varsets "
                "differ"
            )
        self._query_assignment[name] = node_id

    def query_node(self, query: AggregateQuery) -> Optional[NodeId]:
        """The node answering ``query`` (exact varset match), if present."""
        assigned = self._query_assignment.get(query.name)
        if assigned is not None:
            return assigned
        if len(query.variables) == 1:
            (var,) = query.variables
            return self._leaf_of.get(var)
        return self._by_varset.get(query.variables)

    def answered_queries(self) -> List[AggregateQuery]:
        """The instance queries currently answered by some node."""
        return [
            q
            for q in self.instance.queries
            if self.query_node(q) is not None
        ]

    def missing_queries(self) -> List[AggregateQuery]:
        """The instance queries not yet answered by any node."""
        return [q for q in self.instance.queries if self.query_node(q) is None]

    # ------------------------------------------------------------------
    # cost-model support
    # ------------------------------------------------------------------
    def downstream_queries(self) -> Dict[NodeId, Set[str]]:
        """For each node ``v``, the queries ``q`` with ``v ⇝ q``.

        A node is *used for* query ``q`` if there is a directed path from
        the node to ``q``'s query node; the query node itself counts.
        Computed by walking down from each query node through operand
        edges.
        """
        downstream: Dict[NodeId, Set[str]] = {n.node_id: set() for n in self._nodes}
        for query in self.instance.queries + self.instance.trivial_queries:
            root = self.query_node(query)
            if root is None:
                continue
            stack = [root]
            seen: Set[NodeId] = set()
            while stack:
                nid = stack.pop()
                if nid in seen:
                    continue
                seen.add(nid)
                downstream[nid].add(query.name)
                node = self._nodes[nid]
                if not node.is_leaf:
                    assert node.left is not None and node.right is not None
                    stack.append(node.left)
                    stack.append(node.right)
        return downstream

    def parent_index(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        """For each node, the operator nodes that consume it directly.

        The inverse of the operand edges: ``parent_index()[v]`` lists
        every internal node with ``v`` as ``left`` or ``right``, in
        creation order.  Computed once and cached; the cache is dropped
        whenever :meth:`add_internal` grows the plan, so incremental
        consumers (the cross-round executor's dirty-set propagation) can
        hold the plan and the index together safely.
        """
        if self._parent_index is None:
            parents: Dict[NodeId, List[NodeId]] = {
                node.node_id: [] for node in self._nodes
            }
            for node in self._nodes:
                if node.is_leaf:
                    continue
                assert node.left is not None and node.right is not None
                parents[node.left].append(node.node_id)
                if node.right != node.left:
                    parents[node.right].append(node.node_id)
            self._parent_index = {
                node_id: tuple(ids) for node_id, ids in parents.items()
            }
        return self._parent_index

    def ancestors_of(self, node_ids: Iterable[NodeId]) -> Set[NodeId]:
        """Upward closure of ``node_ids`` through operand edges.

        Returns every node from which some seed is reachable by operand
        edges -- *including the seeds themselves*.  Because a node's
        varset is exactly the union of the leaves below it, the closure
        of a set of leaves is precisely the nodes whose varset intersects
        those leaves' variables; the dirty-set property tests assert this
        structural identity, and the cross-round executor uses the
        closure as the invalidation cone for changed leaf scores.
        """
        parents = self.parent_index()
        closure: Set[NodeId] = set()
        stack = list(node_ids)
        while stack:
            node_id = stack.pop()
            if node_id in closure:
                continue
            # Validate the id eagerly so typos fail loudly.
            self.node(node_id)
            closure.add(node_id)
            stack.extend(parents[node_id])
        return closure

    def dirty_closure(self, variables: Iterable[Variable]) -> Set[NodeId]:
        """The invalidation cone of a set of changed variables.

        Maps each variable to its leaf and returns
        :meth:`ancestors_of` of those leaves.  Variables without a leaf
        in this plan are ignored (a score feed may cover advertisers the
        plan no longer aggregates after maintenance dropped them).
        """
        leaves = [
            self._leaf_of[variable]
            for variable in variables
            if variable in self._leaf_of
        ]
        return self.ancestors_of(leaves)

    @property
    def total_cost(self) -> int:
        """Number of internal nodes (the paper's total plan cost)."""
        return sum(1 for n in self._nodes if not n.is_leaf)

    @property
    def extra_cost(self) -> int:
        """Total cost minus the base cost ``|E|``."""
        return self.total_cost - self.instance.base_cost

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, require_complete: bool = True) -> None:
        """Check the structural plan rules of Section II-C.

        Args:
            require_complete: Also require rule 4 -- every query answered.

        Raises:
            InvalidPlanError: On any violation: a leaf labeled with a
                non-singleton set, an internal node whose varset is not
                the union of its operands', an operand edge referencing a
                later node (cycle), or (if ``require_complete``) an
                unanswered query.
        """
        for node in self._nodes:
            if node.is_leaf:
                if len(node.varset) != 1:
                    raise InvalidPlanError(
                        f"leaf {node.node_id} must be labeled with one "
                        f"variable, got {set(node.varset)!r}"
                    )
                if node.right is not None:
                    raise InvalidPlanError(
                        f"node {node.node_id} has in-degree 1; plans allow "
                        "only in-degree 0 or 2"
                    )
                continue
            assert node.left is not None
            if node.right is None:
                raise InvalidPlanError(
                    f"node {node.node_id} has in-degree 1; plans allow only "
                    "in-degree 0 or 2"
                )
            if node.left >= node.node_id or node.right >= node.node_id:
                raise InvalidPlanError(
                    f"node {node.node_id} references a non-earlier node; "
                    "plans must be acyclic"
                )
            expected = (
                self._nodes[node.left].varset | self._nodes[node.right].varset
            )
            if node.varset != expected:
                raise InvalidPlanError(
                    f"node {node.node_id} is labeled {set(node.varset)!r} but "
                    f"its operands union to {set(expected)!r}"
                )
        if require_complete:
            missing = self.missing_queries()
            if missing:
                raise InvalidPlanError(
                    "plan does not answer queries: "
                    + ", ".join(q.name for q in missing)
                )

    def __repr__(self) -> str:
        return (
            f"Plan({len(self._nodes)} nodes, {self.total_cost} internal, "
            f"{len(self.answered_queries())}/{len(self.instance.queries)} "
            "queries answered)"
        )
