"""Incremental maintenance of shared plans as the market drifts.

Plans are computed offline (Section II-B), but the inputs drift:
advertisers add and drop bid phrases, enter and leave the market.  Full
replanning per change is exactly what the latency argument rules out, so
:class:`PlanMaintainer` keeps a plan aligned with the current
phrase-interest map using cheap structural repairs and re-plans only
when enough drift has accumulated:

- *Variable added to a query*: the query node's varset grows; the old
  node no longer answers it.  Repair: aggregate the old query node with
  the new leaf (one extra operator).
- *Variable removed from a query*: subsets cannot be repaired by adding
  operators (the stale node over-aggregates), so the query is rebuilt
  from the greedy cover of the remaining nodes.
- The maintainer tracks *drift* -- repairs since the last full plan --
  and triggers a fresh greedy plan when drift exceeds a threshold,
  because accumulated patches erode sharing quality.

The maintained plan is always exact: after every operation the plan
validates and answers every live query.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Set

from repro.errors import InvalidPlanError, PlanConstructionError
from repro.plans.cost import expected_plan_cost
from repro.plans.dag import Plan
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.set_cover import greedy_set_cover

__all__ = ["PlanMaintainer"]

Variable = Hashable


class PlanMaintainer:
    """Keeps a shared plan consistent with a drifting interest map.

    Args:
        interests: Initial ``{phrase: set of advertiser ids}``.
        search_rates: ``{phrase: sr}`` (missing phrases default to 1.0).
        replan_after: Full greedy replan once this many repairs have
            accumulated (the drift budget).

    Attributes:
        plan: The current valid plan.
        repairs_since_replan: Drift counter.
        replans: Total full replans performed.
    """

    def __init__(
        self,
        interests: Dict[str, Set[Variable]],
        search_rates: Optional[Dict[str, float]] = None,
        replan_after: int = 16,
    ) -> None:
        if replan_after <= 0:
            raise PlanConstructionError("replan_after must be positive")
        self._interests: Dict[str, Set[Variable]] = {
            phrase: set(ids) for phrase, ids in interests.items()
        }
        self._rates: Dict[str, float] = dict(search_rates or {})
        self.replan_after = replan_after
        self.repairs_since_replan = 0
        self.replans = 0
        self._listeners: List[Callable[[Plan], None]] = []
        self.plan = self._full_plan()

    # ------------------------------------------------------------------
    # plan-change notification
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[Plan], None]) -> None:
        """Register a callback invoked with every new plan.

        Called after each repair or full replan, once the fresh plan has
        validated.  The primary consumer is
        :meth:`repro.plans.executor.CrossRoundPlanExecutor.rebind`, which
        carries cached node values whose varsets survived the repair and
        invalidates the touched subtree -- subscribing it keeps
        incremental execution and plan maintenance composed:

            maintainer.subscribe(executor.rebind)

        Listeners fire in subscription order; exceptions propagate to
        the mutation that triggered the change.
        """
        self._listeners.append(listener)

    def _set_plan(self, plan: Plan) -> None:
        self.plan = plan
        for listener in self._listeners:
            listener(plan)

    # ------------------------------------------------------------------
    # change-feed consumption
    # ------------------------------------------------------------------
    def connect(self, feed) -> None:
        """Consume market-churn events from a change feed.

        Args:
            feed: A :class:`repro.engine.changefeed.ChangeFeed`
                (duck-typed).  The maintainer attaches a *push* handler
                for the four churn kinds -- ``advertiser_added`` /
                ``advertiser_removed`` / ``phrase_added`` /
                ``phrase_removed`` -- so the plan is repaired inside the
                publishing call and the very next round already runs
                against the updated structure.  Each repair fires the
                plan-change listeners (:meth:`subscribe`) as usual, so a
                subscribed executor rebinds transitively from one
                published event.
        """
        feed.attach(
            self._apply_event,
            kinds=(
                "advertiser_added",
                "advertiser_removed",
                "phrase_added",
                "phrase_removed",
            ),
        )

    def _apply_event(self, event) -> None:
        """Translate one churn event into interest-map mutations."""
        kind = event.kind
        if kind == "phrase_added":
            self.add_phrase(
                event.phrase, set(event.advertiser_ids), event.search_rate
            )
        elif kind == "phrase_removed":
            self.drop_phrase(event.phrase)
        elif kind == "advertiser_added":
            for phrase in sorted(event.phrases):
                if phrase in self._interests:
                    self.add_interest(phrase, event.advertiser_id)
                else:
                    self.add_phrase(phrase, {event.advertiser_id})
        elif kind == "advertiser_removed":
            member_of = sorted(
                phrase
                for phrase, ids in self._interests.items()
                if event.advertiser_id in ids
            )
            for phrase in member_of:
                if len(self._interests[phrase]) == 1:
                    self.drop_phrase(phrase)
                else:
                    self.remove_interest(phrase, event.advertiser_id)
        else:  # pragma: no cover - the kind filter prevents this
            raise InvalidPlanError(f"unexpected event kind {kind!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def interests(self) -> Dict[str, FrozenSet[Variable]]:
        """The current phrase-interest map (copies)."""
        return {
            phrase: frozenset(ids) for phrase, ids in self._interests.items()
        }

    def expected_cost(self) -> float:
        """Expected per-round cost of the current plan."""
        return expected_plan_cost(self.plan)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_interest(self, phrase: str, advertiser: Variable) -> None:
        """Advertiser starts bidding on ``phrase``."""
        ids = self._interests.get(phrase)
        if ids is None:
            raise InvalidPlanError(f"unknown phrase {phrase!r}")
        if advertiser in ids:
            return
        ids.add(advertiser)
        self._after_change()

    def remove_interest(self, phrase: str, advertiser: Variable) -> None:
        """Advertiser stops bidding on ``phrase``.

        Raises:
            InvalidPlanError: If the phrase would be left with no
                advertisers (drop the phrase instead).
        """
        ids = self._interests.get(phrase)
        if ids is None:
            raise InvalidPlanError(f"unknown phrase {phrase!r}")
        if advertiser not in ids:
            return
        if len(ids) == 1:
            raise InvalidPlanError(
                f"removing the last advertiser of {phrase!r}; use drop_phrase"
            )
        ids.remove(advertiser)
        self._after_change()

    def add_phrase(
        self,
        phrase: str,
        advertisers: Set[Variable],
        search_rate: float = 1.0,
    ) -> None:
        """Register a brand-new phrase."""
        if phrase in self._interests:
            raise InvalidPlanError(f"phrase {phrase!r} already exists")
        if not advertisers:
            raise InvalidPlanError("a phrase needs at least one advertiser")
        self._interests[phrase] = set(advertisers)
        self._rates[phrase] = search_rate
        self._after_change()

    def drop_phrase(self, phrase: str) -> None:
        """Remove a phrase entirely."""
        if phrase not in self._interests:
            raise InvalidPlanError(f"unknown phrase {phrase!r}")
        del self._interests[phrase]
        self._rates.pop(phrase, None)
        self._after_change()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _instance(self) -> SharedAggregationInstance:
        return SharedAggregationInstance(
            AggregateQuery(
                phrase, ids, float(self._rates.get(phrase, 1.0))
            )
            for phrase, ids in self._interests.items()
        )

    def _full_plan(self) -> Plan:
        instance = self._instance()
        strategy = "cover" if len(instance.variables) > 64 else "full"
        return greedy_shared_plan(instance, pair_strategy=strategy)

    def _after_change(self) -> None:
        self.repairs_since_replan += 1
        if self.repairs_since_replan >= self.replan_after:
            self._set_plan(self._full_plan())
            self.repairs_since_replan = 0
            self.replans += 1
            return
        self._repair()

    def _repair(self) -> None:
        """Rebuild against the new instance, reusing old structure.

        The fresh instance seeds a new plan; every internal node of the
        old plan whose operands still exist is replayed (cheap -- varset
        dedup keeps it linear in old plan size), then missing queries are
        completed from greedy covers over the carried-over nodes.  This
        preserves the old plan's sharing where it is still useful and
        adds only the minimal patching operators.
        """
        instance = self._instance()
        fresh = Plan(instance)
        carried: Dict[int, int] = {}
        live_variables = instance.variables
        for node in self.plan.nodes:
            if node.is_leaf:
                if node.variable in live_variables:
                    carried[node.node_id] = fresh.leaf_of(node.variable)
                continue
            assert node.left is not None and node.right is not None
            left = carried.get(node.left)
            right = carried.get(node.right)
            if left is None or right is None or left == right:
                continue
            carried[node.node_id] = fresh.add_internal(left, right)
        for query in fresh.missing_queries():
            candidates = list(
                dict.fromkeys(n.varset for n in fresh.nodes)
            )
            usable = [c for c in candidates if c <= query.variables]
            cover = greedy_set_cover(query.variables, usable)
            node_ids = [fresh.node_for_varset(c) for c in cover]
            fresh.add_chain([n for n in node_ids if n is not None])
        fresh.validate()
        self._set_plan(fresh)
