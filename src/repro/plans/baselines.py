"""Baseline planners used as comparison points in the evaluation.

- :func:`no_sharing_plan` -- each query is computed from scratch by its
  own chain of aggregations, ``|X_q| - 1`` operator nodes per query, none
  shared.  Its expected cost is exactly
  ``sum_q sr_q * (|X_q| - 1)`` -- the unshared curve of Fig. 4.
- :func:`fragment_only_plan` -- stage 1 of the heuristic alone: aggregate
  within fragments, then combine each query's fragments with per-query
  (unshared) chains.  Isolates how much of the heuristic's win comes from
  fragments versus the greedy cross-fragment sharing.
- :func:`cse_plan` -- sharing by *syntactic* common subexpressions only,
  the best possible without exploiting associativity/commutativity
  (the paper's "rather limited manner" of sharing): queries are built as
  right-deep chains over name-sorted variables and every chain prefix
  with an identical variable *sequence* is reused.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.plans.dag import Plan
from repro.plans.fragments import identify_fragments
from repro.plans.instance import SharedAggregationInstance

__all__ = ["no_sharing_plan", "fragment_only_plan", "cse_plan"]

Variable = Hashable


def no_sharing_plan(instance: SharedAggregationInstance) -> Plan:
    """One independent aggregation chain per query; nothing shared.

    Duplicate-label nodes are deliberately created (``reuse=False``) so
    the plan faithfully models a system resolving every auction
    separately.
    """
    plan = Plan(instance)
    interner = plan.interner
    for query in instance.queries:
        # interner.members returns repr-sorted order from the cached
        # bitmask -- the same order the repr sort produced, without
        # re-sorting per query.
        ordered = interner.members(interner.mask_of(query.variables))
        leaves = [plan.leaf_of(v) for v in ordered]
        acc = leaves[0]
        for leaf in leaves[1:]:
            acc = plan.add_internal(acc, leaf, reuse=False)
        plan.assign_query(query.name, acc)
    plan.validate()
    return plan


def fragment_only_plan(instance: SharedAggregationInstance) -> Plan:
    """Aggregate within fragments, then chain fragments per query.

    Fragment-internal aggregation is shared (each fragment computed
    once); the cross-fragment combination is per-query and unshared,
    matching the "some basic multiquery optimization" the paper credits
    to stage 1 alone.
    """
    plan = Plan(instance)
    interner = plan.interner
    fragments = identify_fragments(instance)
    fragment_root: Dict[Tuple[bool, ...], int] = {}
    for fragment in fragments:
        ordered = interner.members(interner.mask_of(fragment.variables))
        leaves = [plan.leaf_of(v) for v in ordered]
        acc = leaves[0]
        for leaf in leaves[1:]:
            acc = plan.add_internal(acc, leaf)
        fragment_root[fragment.signature] = acc

    for index, query in enumerate(instance.queries):
        roots = [
            fragment_root[f.signature]
            for f in fragments
            if f.signature[index]
        ]
        if len(roots) == 1:
            plan.assign_query(query.name, roots[0])
            continue
        acc = roots[0]
        for root in roots[1:]:
            acc = plan.add_internal(acc, root, reuse=False)
        plan.assign_query(query.name, acc)
    plan.validate()
    return plan


def cse_plan(instance: SharedAggregationInstance) -> Plan:
    """Common-subexpression sharing only (no algebraic rewriting).

    Each query is the right-deep chain over its name-sorted variables;
    two chains share exactly their common *suffix* sub-chains (identical
    subexpressions).  This is what a conventional multi-query optimizer
    achieves without knowing ``⊕`` is associative/commutative, and it is
    the optimal PTIME strategy for the non-associative rows of Fig. 5.
    """
    plan = Plan(instance)
    interner = plan.interner
    suffix_node: Dict[Tuple[Variable, ...], int] = {}
    for query in instance.queries:
        ordered = interner.members(interner.mask_of(query.variables))
        # Build from the right so shared suffixes are created once.
        acc = plan.leaf_of(ordered[-1])
        suffix: Tuple[Variable, ...] = (ordered[-1],)
        for variable in reversed(ordered[:-1]):
            suffix = (variable, *suffix)
            cached = suffix_node.get(suffix)
            if cached is None:
                acc = plan.add_internal(plan.leaf_of(variable), acc, reuse=False)
                suffix_node[suffix] = acc
            else:
                acc = cached
        plan.assign_query(query.name, acc)
    plan.validate()
    return plan
