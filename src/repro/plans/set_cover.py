"""Greedy and exact set cover.

The paper uses set cover in two roles: the Theorem 2/3 hardness
reductions, and the greedy covering subroutine inside the planning
heuristic (Section II-D.2).  Following the paper, "cover" here means an
*exact* cover by union: a subcollection whose union **equals** the target
set (not a superset) -- so only candidate sets that are subsets of the
target are usable.

The greedy algorithm repeatedly picks the feasible set covering the most
as-yet-uncovered elements; it is a ``(1 + ln n)``-approximation (Johnson
1973).  :func:`exact_min_set_cover` is a branch-and-bound exact solver
for the small instances used in tests and the Fig. 5 benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PlanConstructionError

__all__ = [
    "greedy_set_cover",
    "exact_min_set_cover",
    "is_exact_cover",
    "greedy_cover_masks",
    "greedy_partition_masks",
]

Element = Hashable


def is_exact_cover(
    target: FrozenSet[Element], chosen: Iterable[FrozenSet[Element]]
) -> bool:
    """Whether ``chosen`` are all subsets of ``target`` with union equal to it."""
    union: set[Element] = set()
    for subset in chosen:
        if not subset <= target:
            return False
        union |= subset
    return union == set(target)


def greedy_set_cover(
    target: FrozenSet[Element],
    candidates: Sequence[FrozenSet[Element]],
) -> List[FrozenSet[Element]]:
    """Greedy exact cover of ``target`` from ``candidates``.

    Only candidates that are subsets of ``target`` are feasible.  At each
    step the feasible set covering the most uncovered elements is chosen;
    ties are broken by preferring the smaller set and then the
    lexicographically least ``repr`` so results are deterministic.

    Returns:
        The chosen subsets in pick order.

    Raises:
        PlanConstructionError: If the feasible candidates cannot cover
            ``target`` (their union misses some element).
    """
    feasible = [c for c in candidates if c and c <= target]
    uncovered = set(target)
    chosen: List[FrozenSet[Element]] = []
    # Deduplicate identical candidate sets; duplicates add nothing.
    feasible = list(dict.fromkeys(feasible))
    while uncovered:
        best: Optional[FrozenSet[Element]] = None
        best_key: Tuple[int, int, str] | None = None
        for candidate in feasible:
            gain = len(candidate & uncovered)
            if gain == 0:
                continue
            key = (-gain, len(candidate), repr(sorted(candidate, key=repr)))
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        if best is None:
            raise PlanConstructionError(
                f"candidates cannot cover {set(uncovered)!r}"
            )
        chosen.append(best)
        uncovered -= best
    return chosen


def greedy_set_partition(
    target: FrozenSet[Element],
    candidates: Sequence[FrozenSet[Element]],
) -> List[FrozenSet[Element]]:
    """Greedy *partition* of ``target``: chosen sets must be disjoint.

    Non-idempotent aggregates (sum, count, product) cannot tolerate an
    element contributing twice, so their covers must be partitions.  At
    each step the largest candidate lying entirely inside the uncovered
    remainder is chosen; with singleton candidates available (plan
    leaves), a partition always exists.

    Raises:
        PlanConstructionError: If no candidate fits the remainder at
            some step (can only happen without singleton candidates).
    """
    feasible = [c for c in dict.fromkeys(candidates) if c and c <= target]
    uncovered = set(target)
    chosen: List[FrozenSet[Element]] = []
    while uncovered:
        best: Optional[FrozenSet[Element]] = None
        best_key: Tuple[int, str] | None = None
        for candidate in feasible:
            if not candidate <= uncovered:
                continue
            key = (-len(candidate), repr(sorted(candidate, key=repr)))
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        if best is None:
            raise PlanConstructionError(
                f"no disjoint candidate covers {set(uncovered)!r}"
            )
        chosen.append(best)
        uncovered -= best
    return chosen


def greedy_cover_masks(
    target: int,
    candidates: Sequence[int],
    sort_key,
) -> List[int]:
    """Greedy exact cover over interned bitmasks (planner hot path).

    The bitmask twin of :func:`greedy_set_cover`: candidates and target
    are int masks from one :class:`repro.plans.varsets.VarSetInterner`,
    so feasibility, gain, and remainder updates are single int ops.
    Ranking is ``(-gain, popcount, sort_key(candidate))`` with
    ``sort_key`` the interner's cached id-tuple key -- a *strict* total
    order over distinct masks, so the pick is unique and deterministic.

    The selection is a pure function of ``(target, set(candidates))``:
    candidate *order* cannot affect the result, which is what lets the
    lazy planner memoize covers and still match the naive full rescan
    byte for byte.

    Raises:
        PlanConstructionError: If the feasible candidates cannot cover
            ``target``.
    """
    feasible = list(dict.fromkeys(
        c for c in candidates if c and not (c & ~target)
    ))
    uncovered = target
    chosen: List[int] = []
    while uncovered:
        best = -1
        best_key: Optional[Tuple[int, int, Tuple[int, ...]]] = None
        for candidate in feasible:
            gain = (candidate & uncovered).bit_count()
            if gain == 0:
                continue
            key = (-gain, candidate.bit_count(), sort_key(candidate))
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        if best < 0:
            raise PlanConstructionError(
                f"candidates cannot cover mask {uncovered:#x}"
            )
        chosen.append(best)
        uncovered &= ~best
    return chosen


def greedy_partition_masks(
    target: int,
    candidates: Sequence[int],
    sort_key,
) -> List[int]:
    """Greedy exact *partition* over interned bitmasks.

    The bitmask twin of :func:`greedy_set_partition`: chosen masks must
    be disjoint, so feasibility at each step is ``candidate & ~uncovered
    == 0``.  Ranking is ``(-popcount, sort_key(candidate))``; like
    :func:`greedy_cover_masks` the pick is order-independent and
    deterministic.

    Raises:
        PlanConstructionError: If no candidate fits the remainder at
            some step (can only happen without singleton candidates).
    """
    feasible = list(dict.fromkeys(
        c for c in candidates if c and not (c & ~target)
    ))
    uncovered = target
    chosen: List[int] = []
    while uncovered:
        best = -1
        best_key: Optional[Tuple[int, Tuple[int, ...]]] = None
        for candidate in feasible:
            if candidate & ~uncovered:
                continue
            key = (-candidate.bit_count(), sort_key(candidate))
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        if best < 0:
            raise PlanConstructionError(
                f"no disjoint candidate covers mask {uncovered:#x}"
            )
        chosen.append(best)
        uncovered &= ~best
    return chosen


def exact_min_set_cover(
    target: FrozenSet[Element],
    candidates: Sequence[FrozenSet[Element]],
) -> List[FrozenSet[Element]]:
    """Minimum-cardinality exact cover by branch and bound.

    Exponential in the worst case; intended for the small instances of
    the test suite and the Fig. 5 / heuristic-quality benchmarks.

    Raises:
        PlanConstructionError: If no exact cover exists.
    """
    feasible = [c for c in dict.fromkeys(candidates) if c and c <= target]
    all_coverable: set[Element] = set()
    for candidate in feasible:
        all_coverable |= candidate
    if all_coverable != set(target):
        raise PlanConstructionError(f"candidates cannot cover {set(target)!r}")

    # Order elements by rarity so branching is effective.
    containing: Dict[Element, List[FrozenSet[Element]]] = {e: [] for e in target}
    for candidate in feasible:
        for element in candidate:
            containing[element].append(candidate)

    greedy = greedy_set_cover(target, feasible)
    best: List[FrozenSet[Element]] = greedy
    best_size = len(greedy)

    def search(uncovered: FrozenSet[Element], chosen: List[FrozenSet[Element]]) -> None:
        nonlocal best, best_size
        if not uncovered:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + 1 >= best_size:
            # Even one more set cannot beat the incumbent unless it
            # finishes the cover; handled by the branch below.
            pass
        # Lower bound: ceil(|uncovered| / max candidate size).
        max_size = max(len(c) for c in feasible)
        lower = (len(uncovered) + max_size - 1) // max_size
        if len(chosen) + lower >= best_size:
            return
        # Branch on the rarest uncovered element.
        element = min(uncovered, key=lambda e: (len(containing[e]), repr(e)))
        for candidate in containing[element]:
            chosen.append(candidate)
            search(uncovered - candidate, chosen)
            chosen.pop()

    search(frozenset(target), [])
    return best
