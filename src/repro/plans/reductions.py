"""Executable versions of the Theorem 2 and Theorem 3 reductions.

Theorem 2 reduces set cover to min-cost planning: given a set-cover
instance ``(U, S)``, create one variable per element of ``U``, one query
per set in ``S``, and one extra query for ``U`` itself.  A min-cost plan
must build the ``U`` query by aggregating nodes that form a set cover of
``U`` drawn from (nodes equivalent to) the ``S`` queries -- so decoding
the plan yields a minimum set cover.

Theorem 3 strengthens this to inapproximability by *closing the query
set off under subexpressions* first (for our canonical right-deep
expressions: all suffix sets of each sorted set), so the only *extra*
nodes any plan needs are those assembling the universal query; the extra
cost then equals ``|cover| - 1``.

These constructions double as an executable proof artifact: tests verify
that for small instances, ``extra cost of optimal plan + 1`` equals the
size of the minimum set cover.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.errors import PlanConstructionError
from repro.plans.dag import Plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance

__all__ = [
    "set_cover_to_instance",
    "set_cover_to_instance_closed",
    "decode_cover_from_plan",
    "universal_query_name",
]

Element = Hashable

UNIVERSAL = "__universal__"


def universal_query_name() -> str:
    """Name of the universal-set query added by the reduction."""
    return UNIVERSAL


def set_cover_to_instance(
    universe: Iterable[Element],
    collection: Sequence[Iterable[Element]],
) -> SharedAggregationInstance:
    """The Theorem 2 construction.

    Args:
        universe: The universal set ``U``.
        collection: The collection ``S`` of subsets of ``U`` whose union
            must be ``U``.

    Returns:
        The planning instance ``E = {e_U} ∪ {e_S : S ∈ S}`` with all
        search rates 1 (the hardness already holds in the certain case).

    Raises:
        PlanConstructionError: If the collection does not cover ``U`` or
            contains a set not included in ``U``.
    """
    u = frozenset(universe)
    sets = [frozenset(s) for s in collection]
    union: Set[Element] = set()
    for s in sets:
        if not s <= u:
            raise PlanConstructionError(f"set {set(s)!r} is not a subset of U")
        union |= s
    if union != set(u):
        raise PlanConstructionError("collection does not cover the universe")
    queries: List[AggregateQuery] = [AggregateQuery(UNIVERSAL, u, 1.0)]
    for index, s in enumerate(sets):
        queries.append(AggregateQuery(f"S{index}", s, 1.0))
    return SharedAggregationInstance(queries)


def _suffix_closure(variables: FrozenSet[Element]) -> List[FrozenSet[Element]]:
    """Subexpression variable sets of the canonical right-deep ``e_S``.

    With ``e_S = x_1 ⊕ (x_2 ⊕ (... ⊕ x_k))`` over sorted variables, the
    proper subexpressions with more than one variable are the suffix sets
    ``{x_j, ..., x_k}`` for ``j = 2 .. k-1``.
    """
    ordered = sorted(variables, key=repr)
    return [frozenset(ordered[j:]) for j in range(1, len(ordered) - 1)]


def set_cover_to_instance_closed(
    universe: Iterable[Element],
    collection: Sequence[Iterable[Element]],
) -> SharedAggregationInstance:
    """The Theorem 3 construction: close queries off under subexpressions.

    Every suffix subexpression of each ``e_S`` becomes a query of its
    own (base cost), so a plan's *extra* nodes can only be the ones
    assembling ``e_U`` from covered pieces; minimizing extra cost is then
    exactly minimum set cover, transferring its ``log n``
    inapproximability.
    """
    u = frozenset(universe)
    sets = [frozenset(s) for s in collection]
    seen: Dict[FrozenSet[Element], str] = {}
    queries: List[AggregateQuery] = []

    def add(varset: FrozenSet[Element], name: str) -> None:
        if len(varset) < 2 or varset in seen:
            return
        seen[varset] = name
        queries.append(AggregateQuery(name, varset, 1.0))

    for index, s in enumerate(sets):
        add(s, f"S{index}")
        for depth, suffix in enumerate(_suffix_closure(s)):
            add(suffix, f"S{index}.sub{depth}")
    if u in seen:
        # The universe coincides with some S; minimum cover is 1 and the
        # reduction degenerates -- still a valid instance.
        return SharedAggregationInstance(queries)
    add(u, UNIVERSAL)
    union: Set[Element] = set()
    for s in sets:
        union |= s
    if union != set(u):
        raise PlanConstructionError("collection does not cover the universe")
    return SharedAggregationInstance(queries)


def decode_cover_from_plan(
    plan: Plan,
    universe: Iterable[Element],
    collection: Sequence[Iterable[Element]],
) -> List[FrozenSet[Element]]:
    """Extract a set cover of ``U`` from a plan for the reduction instance.

    Following the proof of Theorem 2: take the arborescence computing the
    universal query node and cut it at the maximal nodes whose variable
    sets are available "for free" -- i.e., equal to some ``S`` in the
    collection or to a single element.  Single-element cut nodes are
    absorbed into any containing collection set (the proof's cover uses
    only collection sets; an optimal plan never needs leaf cuts unless an
    element appears in no other useful aggregate, in which case any set
    containing it works).

    Returns:
        Collection sets forming a cover of ``U``.
    """
    u = frozenset(universe)
    sets = [frozenset(s) for s in collection]
    set_lookup = set(sets)
    universal_query = None
    for query in plan.instance.queries:
        if query.variables == u:
            universal_query = query
            break
    if universal_query is None:
        raise PlanConstructionError("plan's instance has no universal query")
    root = plan.query_node(universal_query)
    if root is None:
        raise PlanConstructionError("plan does not answer the universal query")

    cover: List[FrozenSet[Element]] = []
    leftovers: Set[Element] = set()

    def walk(node_id: int) -> None:
        node = plan.node(node_id)
        if node.varset in set_lookup:
            cover.append(node.varset)
            return
        if node.is_leaf:
            leftovers.add(node.variable)
            return
        assert node.left is not None and node.right is not None
        walk(node.left)
        walk(node.right)

    node = plan.node(root)
    if node.varset in set_lookup:
        cover.append(node.varset)
    elif node.is_leaf:
        leftovers.add(node.variable)
    else:
        assert node.left is not None and node.right is not None
        walk(node.left)
        walk(node.right)

    for element in leftovers:
        if any(element in s for s in cover):
            continue
        for s in sets:
            if element in s:
                cover.append(s)
                break
        else:
            raise PlanConstructionError(
                f"element {element!r} appears in no collection set"
            )
    # Deduplicate while preserving order.
    deduped = list(dict.fromkeys(cover))
    covered: Set[Element] = set()
    for s in deduped:
        covered |= s
    if covered != set(u):
        raise PlanConstructionError("decoded sets do not cover the universe")
    return deduped
