"""Executing a shared plan on live bids, round by round.

The planners fix the plan *offline*; each round, bids have changed and a
subset of the bid phrases occurs.  The executor materializes -- lazily
and memoized within the round -- exactly the nodes needed for the queries
that occurred, mirroring the paper's cost model: a node is materialized
iff it is used to compute some occurring query.

The executor counts materialized operator nodes so tests can check the
closed-form expected cost against the empirical average over random
rounds, and benchmarks can report actual work saved by sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.core.topk import ScoredAdvertiser, TopKList, top_k_merge
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names
from repro.plans.dag import Plan

__all__ = ["PlanExecutor", "ExecutionResult"]

Variable = Hashable


@dataclass
class ExecutionResult:
    """Outcome of executing a plan for one round.

    Attributes:
        answers: Per occurring query, the top-k list of its advertisers.
        nodes_materialized: Operator nodes evaluated this round (the
            paper's per-round cost).
        merges_performed: Same as ``nodes_materialized`` -- one merge per
            operator node -- kept separate in case subclasses batch.
        advertisers_scanned: Leaf values read this round (used by the
            scan-count comparisons, e.g. the shoe-store example E2).
        cache_hits: Node requests served by the round memo -- a node
            shared by several occurring queries is materialized once and
            hit here thereafter.
        cache_misses: First materializations within the round (leaves
            included), the complement of ``cache_hits``.
    """

    answers: Dict[str, TopKList] = field(default_factory=dict)
    nodes_materialized: int = 0
    merges_performed: int = 0
    advertisers_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


class PlanExecutor:
    """Evaluates a plan's queries for rounds of live scores.

    Args:
        plan: A validated complete plan.
        k: The top-k capacity (number of ad slots).
        collector: Receives ``plan.*`` counters each round (see
            :mod:`repro.instrument.names`).  The default no-op collector
            keeps the executor's own ``ExecutionResult`` counters as the
            only bookkeeping.
    """

    def __init__(self, plan: Plan, k: int, collector: Collector = NULL) -> None:
        plan.validate()
        if k <= 0:
            raise InvalidPlanError(f"k must be positive, got {k}")
        self.plan = plan
        self.k = k
        self.collector = collector

    def run_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]] = None,
    ) -> ExecutionResult:
        """Execute one round.

        Args:
            scores: Current ``b_i * c_i`` score per variable (advertiser).
                Every leaf of an occurring query must have a score.
            occurring: Names of the queries occurring this round; defaults
                to all of the instance's queries.

        Returns:
            The per-query top-k answers and work counters.
        """
        plan = self.plan
        instance = plan.instance
        if occurring is None:
            names = [q.name for q in instance.queries] + [
                q.name for q in instance.trivial_queries
            ]
        else:
            names = list(occurring)
        result = ExecutionResult()
        cache: Dict[int, TopKList] = {}
        collector = self.collector
        keyed = collector.enabled

        def materialize(node_id: int) -> TopKList:
            """Evaluate a node, memoized for the round.

            ``advertisers_scanned`` counts *reads of leaf values by
            operator nodes* (plus direct leaf answers to trivial
            queries): a leaf feeding two distinct operator nodes is
            scanned twice, which is what makes the unshared baseline's
            scan count additive per query while shared plans read each
            fragment's advertisers once -- matching the paper's 470 vs
            270 bookkeeping in the shoe-store example.
            """
            cached = cache.get(node_id)
            if cached is not None:
                result.cache_hits += 1
                return cached
            result.cache_misses += 1
            node = plan.node(node_id)
            if node.is_leaf:
                variable = node.variable
                try:
                    score = scores[variable]
                except KeyError:
                    raise InvalidPlanError(
                        f"no score provided for advertiser {variable!r}"
                    ) from None
                value = TopKList(self.k, [(float(score), _as_int(variable))])
            else:
                assert node.left is not None and node.right is not None
                for child in (node.left, node.right):
                    if plan.node(child).is_leaf:
                        result.advertisers_scanned += 1
                value = top_k_merge(
                    materialize(node.left), materialize(node.right)
                )
                result.nodes_materialized += 1
                result.merges_performed += 1
                if keyed:
                    collector.incr_keyed(metric_names.PLAN_NODE_MERGES, node_id)
            cache[node_id] = value
            return value

        for name in names:
            query = instance.query_by_name(name)
            node_id = plan.query_node(query)
            if node_id is None:
                raise InvalidPlanError(f"plan does not answer query {name!r}")
            if plan.node(node_id).is_leaf:
                result.advertisers_scanned += 1
            result.answers[name] = materialize(node_id)

        # Flush the round's tallies once; with the null collector these
        # five calls are the executor's entire instrumentation overhead.
        collector.incr(metric_names.PLAN_NODES, result.nodes_materialized)
        collector.incr(metric_names.PLAN_MERGES, result.merges_performed)
        collector.incr(metric_names.PLAN_LEAF_SCANS, result.advertisers_scanned)
        collector.incr(metric_names.PLAN_CACHE_HITS, result.cache_hits)
        collector.incr(metric_names.PLAN_CACHE_MISSES, result.cache_misses)
        if keyed:
            collector.event(
                "plan.round",
                queries=len(names),
                nodes=result.nodes_materialized,
                cache_hits=result.cache_hits,
                leaf_scans=result.advertisers_scanned,
            )
        return result

    def average_cost(
        self,
        scores: Mapping[Variable, float],
        rounds: int,
        rng,
    ) -> float:
        """Empirical mean materialized-node count over simulated rounds.

        Each round, every query occurs independently with its search
        rate; the returned average estimates the plan's expected cost and
        is compared against the closed form in property tests.

        Args:
            scores: Scores used for every round (values do not affect the
                cost, only the answers).
            rounds: Number of simulated rounds.
            rng: A ``random.Random``-like source with a ``random()``
                method.
        """
        instance = self.plan.instance
        total = 0
        for _ in range(rounds):
            occurring = [
                q.name
                for q in instance.queries
                if rng.random() < q.search_rate
            ]
            total += self.run_round(scores, occurring).nodes_materialized
        return total / rounds if rounds else 0.0


def _as_int(variable: Variable) -> int:
    """Map a variable to the integer advertiser id TopKList expects.

    Integer variables pass through; other hashables get a stable hash-
    derived id (collisions are acceptable for cost-counting runs, and
    auction runs always use integer advertiser ids).
    """
    if isinstance(variable, int):
        return variable
    return abs(hash(variable)) % (2**31)
