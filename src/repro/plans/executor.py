"""Executing a shared plan on live bids, round by round.

The planners fix the plan *offline*; each round, bids have changed and a
subset of the bid phrases occurs.  :class:`PlanExecutor` materializes --
lazily and memoized within the round -- exactly the nodes needed for the
queries that occurred, mirroring the paper's cost model: a node is
materialized iff it is used to compute some occurring query.

:class:`CrossRoundPlanExecutor` extends that model *across* rounds.
Between consecutive rounds only a small dirty set of advertisers
actually changes score (a click settles, a budget depletes, a throttle
flips), so rebuilding every needed node from scratch wastes the work the
previous round already paid for.  The incremental executor versions
every leaf with a monotone epoch, keeps materialized :class:`TopKList`
values alive in a bounded :class:`CrossRoundCache` keyed by plan-node
id, and on each round invalidates only the ancestor cone of the dirty
leaves (computed through :meth:`repro.plans.dag.Plan.dirty_closure`).
Everything outside the cone is served unchanged from the cache; the
saved work is observable through the ``plan.nodes_reused`` /
``plan.nodes_invalidated`` counters and the ``plan.cache_resident``
gauge.

Work-accounting contract: the base executor performs exactly one binary
merge per materialized operator node, and :meth:`PlanExecutor.run_round`
*enforces* ``merges_performed == nodes_materialized`` after every round.
The incremental executor legitimately diverges the two: a stale node
whose operand values turn out identical to its last computation is
*revalidated* without a merge, so there the invariant weakens to
``merges_performed + nodes_revalidated == nodes_materialized``.

The executor counts materialized operator nodes so tests can check the
closed-form expected cost against the empirical average over random
rounds, and benchmarks can report actual work saved by sharing and by
cross-round reuse.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.topk import ScoredAdvertiser, TopKList, top_k_merge
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names
from repro.plans.dag import Plan

__all__ = [
    "PlanExecutor",
    "CrossRoundPlanExecutor",
    "CrossRoundCache",
    "ExecutionResult",
]

Variable = Hashable
NodeId = int


@dataclass
class ExecutionResult:
    """Outcome of executing a plan for one round.

    Attributes:
        answers: Per occurring query, the top-k list of its advertisers.
        nodes_materialized: Operator nodes whose value was established
            this round (the paper's per-round cost): fresh merges plus,
            in cross-round mode, merge-free revalidations.
        merges_performed: Binary top-k merges actually executed.  The
            base executor performs exactly one merge per materialized
            operator node and :meth:`PlanExecutor.run_round` *checks*
            ``merges_performed == nodes_materialized`` after every round;
            the cross-round executor batches work by revalidating
            unchanged nodes without merging, so there the enforced
            invariant is ``merges_performed + nodes_revalidated ==
            nodes_materialized`` and the two counters legitimately
            diverge.
        advertisers_scanned: Leaf values read this round (used by the
            scan-count comparisons, e.g. the shoe-store example E2).  In
            cross-round mode a reused or revalidated node reads no
            leaves, so this counts only the reads performed by actual
            merges and rebuilt trivial-query leaves.
        cache_hits: Node requests served by the round memo -- a node
            shared by several occurring queries is materialized once and
            hit here thereafter.
        cache_misses: First materializations within the round (leaves
            included), the complement of ``cache_hits``.  In cross-round
            mode, first touches served *unchanged* from the cross-round
            cache are counted as ``nodes_reused`` instead -- nothing was
            missed.
        nodes_reused: Cross-round mode only: needed operator nodes
            served unchanged from the cross-round cache (no merge, no
            leaf read).
        nodes_invalidated: Cross-round mode only: resident cache entries
            invalidated by this round's dirty leaves (the ancestor cone
            of changed scores, leaves included).
        nodes_revalidated: Cross-round mode only: stale nodes proven
            unchanged without a merge because both operand values were
            identical to the node's last computation.
        cache_evictions: Cross-round mode only: entries evicted from the
            bounded cache during this round (LRU order).
        bypassed: Cross-round mode only: the autotuner judged the
            observed dirty fraction too high for caching to pay and the
            round ran fresh (scores were still absorbed, so the cache
            stays sound for later rounds).
    """

    answers: Dict[str, TopKList] = field(default_factory=dict)
    nodes_materialized: int = 0
    merges_performed: int = 0
    advertisers_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    nodes_reused: int = 0
    nodes_invalidated: int = 0
    nodes_revalidated: int = 0
    cache_evictions: int = 0
    bypassed: bool = False


@dataclass
class _CacheEntry:
    """One cross-round cache slot.

    Attributes:
        value: The node's materialized top-k list.
        left_value: The left operand's value object at the time of the
            last merge, or ``None`` for leaves (and for entries carried
            across a plan rebind, whose operand structure may have
            changed).  Compared *by identity* to detect that a stale
            node's inputs did not actually change.
        right_value: Same for the right operand.
    """

    value: TopKList
    left_value: Optional[TopKList] = None
    right_value: Optional[TopKList] = None


class CrossRoundCache:
    """Bounded LRU store of materialized node values, keyed by node id.

    The cache also tracks which resident entries are *stale* -- ancestors
    of leaves whose score changed since the entry was computed.  A stale
    entry is never served; it is either recomputed (and refreshed) on
    demand or evicted.  Invariant maintained jointly with the executor:
    if a node is stale, every ancestor of it is stale or absent, so
    serving a non-stale entry can never leak an outdated value upward.

    Args:
        capacity: Maximum resident entries; ``None`` means unbounded.
            Eviction is LRU over lookups and stores.

    Attributes:
        capacity: The configured bound.
        evictions: Lifetime count of capacity evictions.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise InvalidPlanError(
                f"cache capacity must be positive or None, got {capacity}"
            )
        self.capacity = capacity
        self.evictions = 0
        self._entries: "OrderedDict[NodeId, _CacheEntry]" = OrderedDict()
        self._stale: Set[NodeId] = set()

    @property
    def resident(self) -> int:
        """Number of entries currently resident."""
        return len(self._entries)

    def lookup(self, node_id: NodeId) -> Optional[_CacheEntry]:
        """The entry for ``node_id`` (refreshing its LRU position)."""
        entry = self._entries.get(node_id)
        if entry is not None:
            self._entries.move_to_end(node_id)
        return entry

    def is_stale(self, node_id: NodeId) -> bool:
        """Whether the resident entry for ``node_id`` is invalidated."""
        return node_id in self._stale

    def mark_stale(self, node_id: NodeId) -> bool:
        """Invalidate ``node_id``'s entry; True if a resident entry was
        newly invalidated (absent or already-stale entries return False).
        """
        if node_id in self._entries and node_id not in self._stale:
            self._stale.add(node_id)
            return True
        return False

    def store(self, node_id: NodeId, entry: _CacheEntry) -> None:
        """Insert or refresh an entry, clearing staleness and evicting
        least-recently-used entries beyond the capacity bound."""
        self._entries[node_id] = entry
        self._entries.move_to_end(node_id)
        self._stale.discard(node_id)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                evicted_id, _ = self._entries.popitem(last=False)
                self._stale.discard(evicted_id)
                self.evictions += 1

    def resize(self, capacity: Optional[int]) -> None:
        """Change the capacity bound, evicting LRU entries if shrinking.

        Used by :class:`repro.engine.autotune.CacheAutotuner` to track
        the observed working set; evictions forced by the new bound
        count on :attr:`evictions` like any other.
        """
        if capacity is not None and capacity <= 0:
            raise InvalidPlanError(
                f"cache capacity must be positive or None, got {capacity}"
            )
        self.capacity = capacity
        if capacity is not None:
            while len(self._entries) > capacity:
                evicted_id, _ = self._entries.popitem(last=False)
                self._stale.discard(evicted_id)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and staleness mark."""
        self._entries.clear()
        self._stale.clear()


class PlanExecutor:
    """Evaluates a plan's queries for rounds of live scores.

    Args:
        plan: A validated complete plan.
        k: The top-k capacity (number of ad slots).
        collector: Receives ``plan.*`` counters each round (see
            :mod:`repro.instrument.names`).  The default no-op collector
            keeps the executor's own ``ExecutionResult`` counters as the
            only bookkeeping.
    """

    def __init__(self, plan: Plan, k: int, collector: Collector = NULL) -> None:
        plan.validate()
        if k <= 0:
            raise InvalidPlanError(f"k must be positive, got {k}")
        self.plan = plan
        self.k = k
        self.collector = collector

    def run_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]] = None,
    ) -> ExecutionResult:
        """Execute one round.

        Args:
            scores: Current ``b_i * c_i`` score per variable (advertiser).
                Every leaf of an occurring query must have a score.
            occurring: Names of the queries occurring this round; defaults
                to all of the instance's queries.

        Returns:
            The per-query top-k answers and work counters.

        Raises:
            InvalidPlanError: On unknown queries, missing scores, or a
                violated work-accounting invariant (see
                :meth:`_check_round_invariants`).
        """
        plan = self.plan
        instance = plan.instance
        names = self._occurring_names(occurring)
        result = ExecutionResult()
        cache: Dict[int, TopKList] = {}
        collector = self.collector
        keyed = collector.enabled

        def materialize(node_id: int) -> TopKList:
            """Evaluate a node, memoized for the round.

            ``advertisers_scanned`` counts *reads of leaf values by
            operator nodes* (plus direct leaf answers to trivial
            queries): a leaf feeding two distinct operator nodes is
            scanned twice, which is what makes the unshared baseline's
            scan count additive per query while shared plans read each
            fragment's advertisers once -- matching the paper's 470 vs
            270 bookkeeping in the shoe-store example.
            """
            cached = cache.get(node_id)
            if cached is not None:
                result.cache_hits += 1
                return cached
            result.cache_misses += 1
            node = plan.node(node_id)
            if node.is_leaf:
                variable = node.variable
                try:
                    score = scores[variable]
                except KeyError:
                    raise InvalidPlanError(
                        f"no score provided for advertiser {variable!r}"
                    ) from None
                value = TopKList.singleton(self.k, score, _as_int(variable))
            else:
                assert node.left is not None and node.right is not None
                for child in (node.left, node.right):
                    if plan.node(child).is_leaf:
                        result.advertisers_scanned += 1
                value = top_k_merge(
                    materialize(node.left), materialize(node.right)
                )
                result.nodes_materialized += 1
                result.merges_performed += 1
                if keyed:
                    collector.incr_keyed(metric_names.PLAN_NODE_MERGES, node_id)
            cache[node_id] = value
            return value

        for name in names:
            query = instance.query_by_name(name)
            node_id = plan.query_node(query)
            if node_id is None:
                raise InvalidPlanError(f"plan does not answer query {name!r}")
            if plan.node(node_id).is_leaf:
                result.advertisers_scanned += 1
            result.answers[name] = materialize(node_id)

        self._check_round_invariants(result)
        self._flush_round(result, len(names))
        return result

    def _occurring_names(self, occurring: Optional[Iterable[str]]) -> List[str]:
        """Resolve the occurring-query names for one round."""
        if occurring is None:
            instance = self.plan.instance
            return [q.name for q in instance.queries] + [
                q.name for q in instance.trivial_queries
            ]
        return list(occurring)

    def _check_round_invariants(self, result: ExecutionResult) -> None:
        """Enforce the base executor's work-accounting invariants.

        One binary merge per materialized operator node, and no
        cross-round bookkeeping: the base executor starts every round
        from scratch.  Subclasses that batch or reuse work override this
        with their own (weaker) invariant rather than silently breaking
        the accounting -- see
        :meth:`CrossRoundPlanExecutor._check_round_invariants`.

        Raises:
            InvalidPlanError: If the counters disagree.
        """
        if result.merges_performed != result.nodes_materialized:
            raise InvalidPlanError(
                "work-accounting invariant violated: "
                f"{result.merges_performed} merges vs "
                f"{result.nodes_materialized} materialized nodes (the base "
                "executor performs exactly one merge per operator node)"
            )
        if (
            result.nodes_reused
            or result.nodes_invalidated
            or result.nodes_revalidated
            or result.cache_evictions
        ):
            raise InvalidPlanError(
                "work-accounting invariant violated: the base executor must "
                "not report cross-round counters"
            )

    def _flush_round(self, result: ExecutionResult, num_queries: int) -> None:
        """Flush the round's tallies to the collector once.

        With the null collector these five calls are the executor's
        entire instrumentation overhead.
        """
        collector = self.collector
        collector.incr(metric_names.PLAN_NODES, result.nodes_materialized)
        collector.incr(metric_names.PLAN_MERGES, result.merges_performed)
        collector.incr(metric_names.PLAN_LEAF_SCANS, result.advertisers_scanned)
        collector.incr(metric_names.PLAN_CACHE_HITS, result.cache_hits)
        collector.incr(metric_names.PLAN_CACHE_MISSES, result.cache_misses)
        if collector.enabled:
            collector.event(
                "plan.round",
                queries=num_queries,
                nodes=result.nodes_materialized,
                cache_hits=result.cache_hits,
                leaf_scans=result.advertisers_scanned,
            )

    def average_cost(
        self,
        scores: Mapping[Variable, float],
        rounds: int,
        rng,
    ) -> float:
        """Empirical mean materialized-node count over simulated rounds.

        Each round, every query occurs independently with its search
        rate; the returned average estimates the plan's expected cost and
        is compared against the closed form in property tests.

        Args:
            scores: Scores used for every round (values do not affect the
                cost, only the answers).
            rounds: Number of simulated rounds.
            rng: A ``random.Random``-like source with a ``random()``
                method.
        """
        instance = self.plan.instance
        total = 0
        for _ in range(rounds):
            occurring = [
                q.name
                for q in instance.queries
                if rng.random() < q.search_rate
            ]
            total += self.run_round(scores, occurring).nodes_materialized
        return total / rounds if rounds else 0.0


class CrossRoundPlanExecutor(PlanExecutor):
    """Incremental plan executor with dirty-set invalidation.

    Keeps every materialized node value alive in a
    :class:`CrossRoundCache` between rounds.  Each round, the executor
    diffs the incoming scores against the last scores it saw; every leaf
    whose score changed gets its epoch bumped and its ancestor cone
    (via :meth:`repro.plans.dag.Plan.dirty_closure`) invalidated.
    Materialization then recomputes exactly the stale part of the needed
    cone and serves everything else unchanged from the cache.

    Determinism contract: for identical ``(plan, k, scores-sequence,
    occurring-sequence)`` inputs the answers are bit-identical to a
    fresh :class:`PlanExecutor` evaluating every round from scratch --
    caching changes the *work*, never the *values*.  The differential
    and stateful suites assert exactly this.

    Args:
        plan: A validated complete plan.
        k: The top-k capacity.
        collector: Receives the ``plan.*`` counters plus the
            cross-round ``plan.nodes_reused`` / ``plan.nodes_invalidated``
            / ``plan.revalidations`` / ``plan.cache_evictions`` counters
            and the ``plan.cache_resident`` gauge.
        cache: An existing cache to adopt (e.g. to persist across
            executors); mutually exclusive with ``capacity``.
        capacity: Bound for a newly created cache; ``None`` (default)
            keeps every node value resident.
        verify: Keep the exact score diff as a soundness cross-check on
            declared dirty sets (whether declared by argument or via a
            connected change feed): a score that changed without being
            declared raises.  ``False`` trusts declarations and skips
            comparing undeclared scores -- the production posture once
            the bus is trusted; the differential suites run with the
            default ``True``.
        autotuner: Optional
            :class:`repro.engine.autotune.CacheAutotuner` (duck-typed).
            When present, each round first asks ``should_bypass()`` --
            a fresh, cache-free execution when the windowed dirty
            fraction makes caching a net loss -- and afterwards reports
            ``observe_round(...)`` and applies ``maybe_resize(cache)``.
    """

    def __init__(
        self,
        plan: Plan,
        k: int,
        collector: Collector = NULL,
        cache: Optional[CrossRoundCache] = None,
        capacity: Optional[int] = None,
        verify: bool = True,
        autotuner=None,
    ) -> None:
        super().__init__(plan, k, collector)
        if cache is not None and capacity is not None:
            raise InvalidPlanError(
                "pass either an existing cache or a capacity, not both"
            )
        self.cache = cache if cache is not None else CrossRoundCache(capacity)
        self.verify = verify
        self.autotuner = autotuner
        self.rebinds = 0
        self._last_scores: Dict[Variable, float] = {}
        self._leaf_epochs: Dict[Variable, int] = {}
        self._subscription = None
        self._pending_dirty: Set[Variable] = set()

    # ------------------------------------------------------------------
    # change-feed consumption
    # ------------------------------------------------------------------
    def connect(self, feed) -> None:
        """Subscribe to a change feed; dirty sets then arrive as events.

        Args:
            feed: A :class:`repro.engine.changefeed.ChangeFeed`
                (duck-typed -- anything whose ``subscribe`` returns a
                drainable queue of events carrying
                ``dirty_advertisers``).

        Once connected, :meth:`run_round` drains the subscription at the
        top of every round and unions the events' dirty advertisers into
        a pending set; advertisers scored by the round are absorbed,
        events for everyone else survive until they next occur.  Passing
        ``dirty=`` explicitly is then an error -- the bus is the single
        source of dirty truth.
        """
        if self._subscription is not None:
            raise InvalidPlanError("executor is already connected to a feed")
        self._subscription = feed.subscribe(
            name="plan-exec-cache",
            kinds=(
                "bid_changed",
                "budget_changed",
                "advertiser_added",
                "advertiser_removed",
            ),
        )

    @property
    def pending_dirty(self) -> frozenset:
        """Advertisers declared dirty by drained events and not yet
        absorbed by a round that scored them.

        Under per-query serving the executor drains its subscription
        once per query, so an advertiser touched by an asynchronous
        click settlement sits here until its phrase next occurs -- the
        serving tests observe exactly that hand-off.
        """
        return frozenset(self._pending_dirty)

    # ------------------------------------------------------------------
    # leaf versioning
    # ------------------------------------------------------------------
    def leaf_epoch(self, variable: Variable) -> int:
        """The monotone epoch of a leaf score (0 if never seen).

        Bumped exactly when a round's score for ``variable`` differs
        from the last score the executor absorbed for it.
        """
        return self._leaf_epochs.get(variable, 0)

    def _absorb_scores(
        self,
        scores: Mapping[Variable, float],
        dirty: Optional[Iterable[Variable]],
    ) -> Tuple[int, int]:
        """Diff scores against the previous round and invalidate the cone.

        Args:
            scores: This round's scores.
            dirty: Optional *declared* dirty set -- drained from the
                change feed, or passed by a caller driving the executor
                directly.  The declaration may be a superset of the real
                changes (over-reporting costs nothing because epochs
                bump only on actual score changes), but under
                ``verify=True`` it must be *sound*: a score that changed
                without being declared raises, which is what keeps
                event-driven dirty tracking honest under test.  Under
                ``verify=False`` undeclared scores are trusted unchanged
                and not even compared -- their last-seen snapshot is
                kept, so a later covering event still repairs the cache.
                ``None`` auto-diffs every score with no soundness check.

        Returns:
            ``(changed, invalidated)``: leaves whose score actually
            changed, and resident cache entries newly invalidated.
        """
        declared: Optional[Set[Variable]] = (
            None if dirty is None else set(dirty)
        )
        changed: List[Variable] = []
        for variable, score in scores.items():
            last = self._last_scores.get(variable)
            if last is None:
                pass  # first sight: always dirty, declared or not
            elif declared is not None and variable not in declared:
                if not self.verify:
                    continue  # trusted unchanged, not compared
                if last == float(score):
                    continue
                raise InvalidPlanError(
                    f"unsound dirty set: score of {variable!r} changed "
                    f"({last} -> {float(score)}) but the variable was not "
                    "declared dirty"
                )
            elif last == float(score):
                continue
            value = float(score)
            self._last_scores[variable] = value
            self._leaf_epochs[variable] = self._leaf_epochs.get(variable, 0) + 1
            changed.append(variable)
        if not changed:
            return 0, 0
        newly = 0
        for node_id in self.plan.dirty_closure(changed):
            newly += self.cache.mark_stale(node_id)
        return len(changed), newly

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def run_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]] = None,
        dirty: Optional[Iterable[Variable]] = None,
    ) -> ExecutionResult:
        """Execute one round, reusing unchanged work from prior rounds.

        Args:
            scores: Current score per variable.  Only *changed* scores
                cost anything beyond a dict compare.
            occurring: Names of the queries occurring this round;
                defaults to all queries.
            dirty: Optional declared dirty variables (see
                :meth:`_absorb_scores`); ``None`` auto-diffs.  Illegal
                once :meth:`connect` has wired the executor to a change
                feed -- the bus then supplies the declarations.

        Returns:
            The answers plus base and cross-round work counters.
        """
        if self._subscription is not None:
            if dirty is not None:
                raise InvalidPlanError(
                    "dirty sets arrive via the change feed once connected; "
                    "do not also declare them by argument"
                )
            for event in self._subscription.drain():
                self._pending_dirty |= event.dirty_advertisers
            dirty = set(self._pending_dirty)
        autotuner = self.autotuner
        changed, invalidated = self._absorb_scores(scores, dirty)
        if autotuner is not None and autotuner.should_bypass():
            # Fresh, cache-free execution: the scores were still
            # absorbed above, so epochs and staleness marks keep the
            # resident entries sound for whenever caching resumes.
            result = PlanExecutor.run_round(self, scores, occurring)
            result.nodes_invalidated = invalidated
            result.bypassed = True
            autotuner.record_bypass()
            self.collector.incr(
                metric_names.PLAN_NODES_INVALIDATED, invalidated
            )
            working_set = result.cache_misses
        else:
            result, working_set = self._run_cached_round(
                scores, occurring, invalidated
            )
        if self._subscription is not None:
            # Scored advertisers are absorbed; events for everyone else
            # survive until they next occur.
            self._pending_dirty.difference_update(scores)
        if autotuner is not None:
            autotuner.observe_round(changed, len(scores), working_set)
            autotuner.maybe_resize(self.cache)
        return result

    def _run_cached_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]],
        invalidated: int,
    ) -> Tuple[ExecutionResult, int]:
        """The cache-backed round body (scores already absorbed).

        Returns the result plus the round's working set -- the count of
        distinct nodes touched, which is what an LRU bound must cover.
        """
        plan = self.plan
        instance = plan.instance
        names = self._occurring_names(occurring)
        result = ExecutionResult()
        collector = self.collector
        keyed = collector.enabled
        cache = self.cache
        evictions_before = cache.evictions

        result.nodes_invalidated = invalidated

        round_memo: Dict[NodeId, TopKList] = {}
        rebuilt_leaves: Set[NodeId] = set()

        def materialize(node_id: NodeId) -> TopKList:
            memoized = round_memo.get(node_id)
            if memoized is not None:
                result.cache_hits += 1
                return memoized
            node = plan.node(node_id)
            entry = cache.lookup(node_id)
            if entry is not None and not cache.is_stale(node_id):
                if not node.is_leaf:
                    result.nodes_reused += 1
                round_memo[node_id] = entry.value
                return entry.value
            result.cache_misses += 1
            if node.is_leaf:
                variable = node.variable
                try:
                    score = scores[variable]
                except KeyError:
                    raise InvalidPlanError(
                        f"no score provided for advertiser {variable!r}"
                    ) from None
                value = TopKList.singleton(self.k, score, _as_int(variable))
                rebuilt_leaves.add(node_id)
                cache.store(node_id, _CacheEntry(value))
            else:
                assert node.left is not None and node.right is not None
                left_value = materialize(node.left)
                right_value = materialize(node.right)
                if (
                    entry is not None
                    and entry.left_value is left_value
                    and entry.right_value is right_value
                ):
                    # Both operands are the very objects of the last
                    # computation: the value cannot have changed.  A
                    # merge-free revalidation -- this is where
                    # merges_performed diverges from nodes_materialized.
                    value = entry.value
                    result.nodes_materialized += 1
                    result.nodes_revalidated += 1
                else:
                    for child in (node.left, node.right):
                        if plan.node(child).is_leaf:
                            result.advertisers_scanned += 1
                    value = top_k_merge(left_value, right_value)
                    result.nodes_materialized += 1
                    result.merges_performed += 1
                    if keyed:
                        collector.incr_keyed(
                            metric_names.PLAN_NODE_MERGES, node_id
                        )
                    if entry is not None and value == entry.value:
                        # Equal recompute: keep the old object so stale
                        # ancestors can revalidate by identity.
                        value = entry.value
                cache.store(node_id, _CacheEntry(value, left_value, right_value))
            round_memo[node_id] = value
            return value

        for name in names:
            query = instance.query_by_name(name)
            node_id = plan.query_node(query)
            if node_id is None:
                raise InvalidPlanError(f"plan does not answer query {name!r}")
            value = materialize(node_id)
            if plan.node(node_id).is_leaf and node_id in rebuilt_leaves:
                result.advertisers_scanned += 1
            result.answers[name] = value

        result.cache_evictions = cache.evictions - evictions_before
        self._check_round_invariants(result)
        self._flush_round(result, len(names))
        return result, len(round_memo)

    def _check_round_invariants(self, result: ExecutionResult) -> None:
        """The incremental executor's weakened accounting invariant.

        Every materialized node is either a fresh merge or a merge-free
        revalidation, never both, and reuse never exceeds what a cache
        can hold.

        Raises:
            InvalidPlanError: If the counters disagree.
        """
        if (
            result.merges_performed + result.nodes_revalidated
            != result.nodes_materialized
        ):
            raise InvalidPlanError(
                "work-accounting invariant violated: "
                f"{result.merges_performed} merges + "
                f"{result.nodes_revalidated} revalidations != "
                f"{result.nodes_materialized} materialized nodes"
            )

    def _flush_round(self, result: ExecutionResult, num_queries: int) -> None:
        super()._flush_round(result, num_queries)
        collector = self.collector
        collector.incr(metric_names.PLAN_NODES_REUSED, result.nodes_reused)
        collector.incr(
            metric_names.PLAN_NODES_INVALIDATED, result.nodes_invalidated
        )
        collector.incr(metric_names.PLAN_REVALIDATIONS, result.nodes_revalidated)
        collector.incr(metric_names.PLAN_CACHE_EVICTIONS, result.cache_evictions)
        collector.gauge(metric_names.PLAN_CACHE_RESIDENT, self.cache.resident)

    # ------------------------------------------------------------------
    # plan maintenance
    # ------------------------------------------------------------------
    def rebind(self, plan: Plan) -> None:
        """Adopt a repaired or replanned plan, keeping still-valid work.

        A node's value depends only on its variable set and the leaf
        scores, so cache entries survive a rebind exactly when the new
        plan has a node with the same varset: the repaired subtree's
        varsets are new, which invalidates (drops) precisely the touched
        entries, while untouched structure keeps its values -- this is
        how :class:`repro.plans.maintenance.PlanMaintainer` repairs and
        caching compose.  Operand snapshots are discarded (the operand
        *structure* may have changed even where varsets survive), so
        revalidation resumes only after a node's first recompute under
        the new plan.  Staleness marks and leaf epochs carry over.

        Dropped entries are reported on the ``plan.nodes_invalidated``
        counter immediately (rebinds happen between rounds, outside any
        :class:`ExecutionResult`).
        """
        plan.validate()
        old_plan = self.plan
        cache = self.cache
        entries: "OrderedDict[NodeId, _CacheEntry]" = OrderedDict()
        stale: Set[NodeId] = set()
        dropped = 0
        for node_id, entry in cache._entries.items():
            varset = old_plan.node(node_id).varset
            new_id = plan.node_for_varset(varset)
            if new_id is None:
                dropped += 1
                continue
            entries[new_id] = _CacheEntry(entry.value)
            if node_id in cache._stale:
                stale.add(new_id)
        cache._entries = entries
        cache._stale = stale
        self.plan = plan
        self.rebinds += 1
        self.collector.incr(metric_names.PLAN_NODES_INVALIDATED, dropped)
        self.collector.gauge(metric_names.PLAN_CACHE_RESIDENT, cache.resident)


def _as_int(variable: Variable) -> int:
    """Map a variable to the integer advertiser id TopKList expects.

    Integer variables pass through; other hashables get a stable hash-
    derived id (collisions are acceptable for cost-counting runs, and
    auction runs always use integer advertiser ids).
    """
    if isinstance(variable, int):
        return variable
    return abs(hash(variable)) % (2**31)
