"""Shared-aggregation problem instances.

An instance is a set of :class:`AggregateQuery` objects over a common
variable universe.  In the sponsored-search application a variable is an
advertiser id and a query is a bid phrase: the query's variable set is
``I_q``, the advertisers interested in the phrase, and its search rate
``sr_q`` is the probability the phrase occurs in a round (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from repro.errors import InvalidPlanError

__all__ = ["AggregateQuery", "SharedAggregationInstance"]

Variable = Hashable
"""A plan variable; advertiser ids in the auction application."""


@dataclass(frozen=True)
class AggregateQuery:
    """One aggregate query: a bid phrase's advertiser set and search rate.

    Attributes:
        name: Query identifier (the bid-phrase text).
        variables: The set ``X_q`` of variables the query aggregates.
        search_rate: ``sr_q`` -- probability the query occurs in a round.
    """

    name: str
    variables: FrozenSet[Variable]
    search_rate: float = 1.0

    def __init__(
        self,
        name: str,
        variables: Iterable[Variable],
        search_rate: float = 1.0,
    ) -> None:
        varset = frozenset(variables)
        if not varset:
            raise InvalidPlanError(f"query {name!r} must mention some variable")
        if not 0.0 <= search_rate <= 1.0:
            raise InvalidPlanError(
                f"search rate of query {name!r} must be in [0, 1], "
                f"got {search_rate!r}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "variables", varset)
        object.__setattr__(self, "search_rate", float(search_rate))

    def __len__(self) -> int:
        return len(self.variables)


class SharedAggregationInstance:
    """A deduplicated collection of aggregate queries.

    Following Section II-C, queries whose variable sets coincide are
    A-equivalent and are merged upfront (keeping the maximum of their
    search rates would be wrong -- the phrase-occurs events are distinct
    Bernoulli trials, so occurrence probabilities combine as
    ``1 - (1-sr)(1-sr')``); single-variable queries are dropped from the
    planning problem because a leaf already computes them (the paper
    removes expressions equivalent to a variable).

    Attributes:
        queries: The planning queries, name-sorted, each with at least two
            variables.
        trivial_queries: Queries equivalent to a single variable, answered
            directly from leaves (kept for executor bookkeeping).
    """

    def __init__(self, queries: Iterable[AggregateQuery]) -> None:
        by_varset: Dict[FrozenSet[Variable], AggregateQuery] = {}
        names: set[str] = set()
        for query in queries:
            if query.name in names:
                raise InvalidPlanError(f"duplicate query name {query.name!r}")
            names.add(query.name)
            existing = by_varset.get(query.variables)
            if existing is None:
                by_varset[query.variables] = query
            else:
                # Same variable set => A-equivalent: merge, combining the
                # independent occurrence probabilities.
                combined_rate = 1.0 - (1.0 - existing.search_rate) * (
                    1.0 - query.search_rate
                )
                by_varset[query.variables] = AggregateQuery(
                    existing.name, existing.variables, combined_rate
                )
        deduped = sorted(by_varset.values(), key=lambda q: q.name)
        self.queries: Tuple[AggregateQuery, ...] = tuple(
            q for q in deduped if len(q.variables) > 1
        )
        self.trivial_queries: Tuple[AggregateQuery, ...] = tuple(
            q for q in deduped if len(q.variables) == 1
        )
        if not self.queries and not self.trivial_queries:
            raise InvalidPlanError("an instance needs at least one query")

    @property
    def variables(self) -> FrozenSet[Variable]:
        """The union of all query variable sets (the leaf universe)."""
        out: set[Variable] = set()
        for query in self.queries:
            out |= query.variables
        for query in self.trivial_queries:
            out |= query.variables
        return frozenset(out)

    @property
    def base_cost(self) -> int:
        """``|E|`` -- every plan has at least this many internal nodes."""
        return len(self.queries)

    def query_by_name(self, name: str) -> AggregateQuery:
        """Look up a (non-trivial or trivial) query by name."""
        for query in self.queries + self.trivial_queries:
            if query.name == name:
                return query
        raise InvalidPlanError(f"no query named {name!r}")

    def search_rates(self) -> Mapping[str, float]:
        """Mapping from query name to search rate."""
        rates = {q.name: q.search_rate for q in self.queries}
        rates.update({q.name: q.search_rate for q in self.trivial_queries})
        return rates

    def membership_signature(self, variable: Variable) -> Tuple[bool, ...]:
        """The bit string of Section II-D.1 for one variable.

        Bit ``i`` says whether the variable occurs in the ``i``-th
        (name-sorted, non-trivial) query.
        """
        return tuple(variable in q.variables for q in self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __repr__(self) -> str:
        return (
            f"SharedAggregationInstance({len(self.queries)} queries, "
            f"{len(self.variables)} variables)"
        )

    @classmethod
    def from_sets(
        cls,
        sets: Mapping[str, Iterable[Variable]],
        search_rates: Mapping[str, float] | float = 1.0,
    ) -> "SharedAggregationInstance":
        """Build an instance from ``{name: variables}`` plus search rates.

        ``search_rates`` may be a single float applied to all queries or a
        per-name mapping (missing names default to 1.0).
        """
        queries: List[AggregateQuery] = []
        for name, variables in sets.items():
            if isinstance(search_rates, Mapping):
                rate = float(search_rates.get(name, 1.0))
            else:
                rate = float(search_rates)
            queries.append(AggregateQuery(name, variables, rate))
        return cls(queries)
