"""The paper's two-stage greedy planning heuristic (Section II-D).

Stage 1 groups variables into fragments and aggregates within each
fragment (no sharing boundary ever splits a fragment).  Stage 2 completes
the plan greedily: at each step it aggregates the pair of existing nodes
with the greatest *expected greedy coverage gain* -- the decrease in
``sum_q sr_q * |C_q|``, where ``C_q`` is the cover of query ``q``'s
variable set prescribed by the greedy set-cover algorithm over the
current nodes -- preferring pairs whose union *is* a missing query
(their extra cost is zero, since a query node counts toward base cost).

Termination: steps that complete a query node happen at most ``|E|``
times; other steps are only taken when they strictly decrease the total
expected greedy coverage.  If no pair yields a positive gain, the
remaining queries are completed directly by aggregating their greedy
covers pairwise (the "no further sharing" completion the paper uses to
motivate the gain measure), which always terminates.

Two interchangeable stage-2 engines share one state machine
(:class:`_PlannerState`) built on interned bitmask varsets
(:mod:`repro.plans.varsets`):

- ``planner="naive"`` -- the paper's formulation taken literally: every
  step re-enumerates every admissible union and re-scores each one from
  scratch.  Kept as the oracle.
- ``planner="lazy"`` (default) -- CELF-style completion: admissible
  unions live in a max-heap keyed by their last known score; after a
  node is added, only the unions overlapping a query whose greedy cover
  changed (plus the unions newly created by the added node) are
  re-scored, and base covers are memoized per (query, candidate
  generation).  Because a union's score depends only on the covers of
  the queries it is contained in, the dirty set is exact -- every other
  cached score is still the true current score -- so the heap top is
  the same argmax the naive rescan finds and the two engines produce
  byte-identical plans.  (Textbook CELF additionally trusts
  submodularity to skip re-scoring stale entries until popped; greedy
  covers do not provably give monotone gains, so this implementation
  re-scores the exact dirty set instead of trusting stale bounds --
  same asymptotic savings, identity guaranteed.)
"""

from __future__ import annotations

import heapq
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanConstructionError
from repro.instrument import NULL, Collector, names
from repro.plans.dag import Plan
from repro.plans.fragments import identify_fragments
from repro.plans.instance import SharedAggregationInstance
from repro.plans.set_cover import greedy_cover_masks, greedy_partition_masks
from repro.plans.varsets import SubsetIndex

__all__ = ["greedy_shared_plan", "GreedyPlannerStats"]

Variable = Hashable
VarSet = FrozenSet[Variable]


class GreedyPlannerStats:
    """Counters describing one planner run (for ablations and tests).

    Attributes:
        fragment_nodes: Internal nodes created by stage 1.
        completion_steps: Stage-2 iterations that created a node.
        query_completions: Steps whose new node answered a missing query.
        direct_completions: Queries finished by the no-further-sharing
            fallback.
        pairs_evaluated: Candidate pair unions whose gain was computed
            (every union every step under ``planner="naive"``; equal to
            :attr:`pairs_scored` under ``planner="lazy"``).
        pairs_scored: Union scorings actually performed.
        pairs_skipped_lazy: Union scorings the lazy engine reused from
            its heap instead of recomputing (the naive engine would have
            recomputed each of them).
        covers_computed: Greedy set-cover/partition runs performed.
        covers_memo_hits: Cover requests served from the lazy engine's
            per-(query, candidate-generation) memo.
    """

    def __init__(self) -> None:
        self.fragment_nodes = 0
        self.completion_steps = 0
        self.query_completions = 0
        self.direct_completions = 0
        self.pairs_evaluated = 0
        self.pairs_scored = 0
        self.pairs_skipped_lazy = 0
        self.covers_computed = 0
        self.covers_memo_hits = 0

    def __repr__(self) -> str:
        return (
            f"GreedyPlannerStats(fragment_nodes={self.fragment_nodes}, "
            f"completion_steps={self.completion_steps}, "
            f"query_completions={self.query_completions}, "
            f"direct_completions={self.direct_completions}, "
            f"pairs_evaluated={self.pairs_evaluated}, "
            f"pairs_scored={self.pairs_scored}, "
            f"pairs_skipped_lazy={self.pairs_skipped_lazy}, "
            f"covers_computed={self.covers_computed}, "
            f"covers_memo_hits={self.covers_memo_hits})"
        )


def _aggregate_balanced(plan: Plan, node_ids: Sequence[int]) -> int:
    """Aggregate nodes as a balanced binary tree; returns the root id."""
    level = list(node_ids)
    if not level:
        raise PlanConstructionError("cannot aggregate an empty node list")
    while len(level) > 1:
        nxt: List[int] = []
        for index in range(0, len(level) - 1, 2):
            nxt.append(plan.add_internal(level[index], level[index + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


class _PlannerState:
    """Shared stage-2 state: candidates, usable lists, covers, scoring.

    Everything is interned: queries and node varsets are int bitmasks
    from the plan's :class:`repro.plans.varsets.VarSetInterner`.  Both
    stage-2 engines drive this one state machine, so a naive run and a
    lazy run over the same instance walk bit-identical candidate sets,
    usable lists, and gain arithmetic -- the differential tests assert
    the resulting plans serialize identically.

    Incremental bookkeeping (the two recompute-per-iteration fixes):

    - *missing queries* are maintained as a list in instance order and
      shrunk when an added node's mask equals a query mask -- the only
      way stage 2 can answer a query;
    - *search rates* are read once from the instance into the missing
      tuples (``(name, mask, rate)``) instead of rebuilding the rate
      mapping every iteration.
    """

    def __init__(
        self,
        plan: Plan,
        pair_strategy: str,
        require_disjoint: bool,
        stats: GreedyPlannerStats,
        lazy: bool,
    ) -> None:
        self.plan = plan
        self.interner = plan.interner
        self.sort_key = self.interner.sort_key
        self.pair_strategy = pair_strategy
        self.require_disjoint = require_disjoint
        self.stats = stats
        self.lazy = lazy
        self.cover_fn = (
            greedy_partition_masks if require_disjoint else greedy_cover_masks
        )

        # Missing queries in instance (name-sorted) order, search rates
        # hoisted once per run.
        self.missing: List[Tuple[str, int, float]] = []
        for query in plan.instance.queries:
            qmask = self.interner.mask_of(query.variables)
            if plan.node_for_mask(qmask) is None:
                self.missing.append((query.name, qmask, query.search_rate))
        self.missing_masks: Set[int] = {m for _, m, _ in self.missing}

        # Distinct node varsets (leaves included), plus the subset index
        # answering "all candidates usable for this query".
        self.index = SubsetIndex()
        for node in plan.nodes:
            self.index.add(plan.node_mask(node.node_id))
        self.usable: Dict[str, List[int]] = {
            name: self.index.subsets_of(qmask)
            for name, qmask, _ in self.missing
        }
        # Candidate generation per query: bumped whenever a usable
        # candidate is added; keys the base-cover memo.
        self.generation: Dict[str, int] = {
            name: 0 for name, _, _ in self.missing
        }
        self._cover_memo: Dict[str, Tuple[int, List[int]]] = {}

        # Lazy-engine state: admissible unions with their last (exact)
        # score, a per-union version counter invalidating superseded heap
        # entries, and -- for the "cover" strategy -- which queries
        # currently contribute each union (refcounted).  Versions live in
        # their own dict and only ever increase: a union that is dropped
        # from the frontier and later re-activated must NOT restart at
        # version 0, or a stale heap entry from its first life would
        # match again and pop in its stale key position.
        self._active: Dict[int, Tuple[float, bool, int]] = {}
        self._versions: Dict[int, int] = {}
        self._heap: List[Tuple[Tuple[int, float, Tuple[int, ...]], int, int]] = []
        self._contrib: Dict[str, Set[int]] = {}
        self._refcount: Dict[int, int] = {}
        # Per-(union, query) gain terms keyed by candidate generation;
        # see score_union.  Only the lazy engine reads or writes it.
        self._term_cache: Dict[int, Dict[str, Tuple[int, float]]] = {}
        if lazy:
            self._build_initial_frontier()

    # -- covers --------------------------------------------------------
    def reset_cover_memo(self) -> None:
        """Drop memoized covers (the naive engine calls this per step)."""
        self._cover_memo.clear()

    def base_cover(self, name: str, qmask: int) -> List[int]:
        """The greedy cover of query ``name`` from the current usable set.

        Memoized per (query, candidate generation); within a naive step
        this reproduces the old per-step ``covers`` dict, across lazy
        steps it only recomputes after the usable set actually grew.
        """
        generation = self.generation[name]
        memo = self._cover_memo.get(name)
        if memo is not None and memo[0] == generation:
            if self.lazy:
                self.stats.covers_memo_hits += 1
            return memo[1]
        cover = self.cover_fn(qmask, self.usable[name], self.sort_key)
        self.stats.covers_computed += 1
        self._cover_memo[name] = (generation, cover)
        return cover

    # -- scoring -------------------------------------------------------
    def relevant_queries(self, union: int) -> List[Tuple[str, int, float]]:
        """The missing queries whose variable set contains ``union``."""
        return [q for q in self.missing if not (union & ~q[1])]

    def score_union(self, union: int) -> Tuple[float, bool]:
        """Exact expected greedy coverage gain of creating ``union``.

        Shared by both engines so the floating-point gain of a union is
        bit-identical regardless of when it is computed: the per-query
        term is always ``rate * base_len - rate * len(hypothetical)`` and
        the terms are summed in missing-query order.

        The lazy engine additionally caches each (query, union) term
        keyed by the query's candidate generation: re-scoring a union
        after a step then only runs hypothetical covers for the queries
        whose usable set actually grew, while the re-summation of cached
        terms (same values, same order) reproduces the naive float sum
        bit for bit.  The naive engine never reads the cache -- its
        oracle cost stays the paper's full rescan.
        """
        stats = self.stats
        stats.pairs_evaluated += 1
        stats.pairs_scored += 1
        cache = self._term_cache.setdefault(union, {}) if self.lazy else None
        gain = 0.0
        for name, qmask, rate in self.missing:
            if union & ~qmask:
                continue
            generation = self.generation[name]
            if cache is not None:
                hit = cache.get(name)
                if hit is not None and hit[0] == generation:
                    gain += hit[1]
                    continue
            base_len = len(self.base_cover(name, qmask))
            hypothetical = self.cover_fn(
                qmask, self.usable[name] + [union], self.sort_key
            )
            stats.covers_computed += 1
            term = rate * base_len - rate * len(hypothetical)
            if cache is not None:
                cache[name] = (generation, term)
            gain += term
        return gain, union in self.missing_masks

    def selection_key(
        self, union: int, gain: float, completes: bool
    ) -> Tuple[int, float, Tuple[int, ...]]:
        """Rank: query-completing first, then gain, then id-tuple order.

        The id tuple is the interner's cached sort key -- distinct for
        distinct unions, so the ranking is a strict total order and the
        argmax is unique.
        """
        return (0 if completes else 1, -gain, self.sort_key(union))

    # -- pair enumeration ----------------------------------------------
    def _pair_unions(self, pool: Sequence[int], out: Dict[int, None]) -> None:
        """Admissible unions of candidate pairs from one query pool."""
        require_disjoint = self.require_disjoint
        index = self.index
        for left, right in combinations(pool, 2):
            meet = left & right
            if meet == left or meet == right:
                continue  # nested pairs never reduce any cover
            if require_disjoint and meet:
                continue
            union = left | right
            if union in index or union in out:
                continue
            out[union] = None

    def enumerate_unions(self) -> Dict[int, None]:
        """All admissible pair unions under the current pools."""
        unions: Dict[int, None] = {}
        if self.pair_strategy == "full":
            for name, _qmask, _rate in self.missing:
                self._pair_unions(self.usable[name], unions)
        else:
            for name, qmask, _rate in self.missing:
                self._pair_unions(self.base_cover(name, qmask), unions)
        return unions

    def representative_pair(self, union: int) -> Tuple[int, int]:
        """The canonical operand nodes realizing ``union``.

        Both engines materialize the winning union through the pair of
        existing nodes minimizing ``(left id, right id)`` -- a property
        of the current plan alone, so the engines cannot diverge on plan
        *structure* even when a union has many realizations.
        """
        plan = self.plan
        parts = self.index.subsets_of(union, strict=True)
        best: Optional[Tuple[int, int]] = None
        for left_mask in parts:
            rest = union & ~left_mask
            for right_mask in parts:
                if right_mask == left_mask:
                    continue
                if self.require_disjoint:
                    if right_mask != rest:
                        continue
                elif (left_mask | right_mask) != union:
                    continue
                left_id = plan.node_for_mask(left_mask)
                right_id = plan.node_for_mask(right_mask)
                assert left_id is not None and right_id is not None
                pair = (left_id, right_id)
                if best is None or pair < best:
                    best = pair
        if best is None:
            raise PlanConstructionError(
                f"no candidate pair realizes union mask {union:#x}"
            )
        return best

    # -- plan growth ---------------------------------------------------
    def note_new_node(self, mask: int, final: bool = False) -> None:
        """Absorb a node the plan just grew.

        Updates candidates, per-query usable lists and generations, and
        the missing set; with the lazy engine (and ``final`` false) also
        performs the CELF bookkeeping -- retiring the union if it was
        active, diffing cover contributions, spawning the new pairs the
        node creates, and re-scoring exactly the dirty unions.
        """
        if not self.index.add(mask):
            return  # varset already existed (reused node): nothing moved
        dirty_queries: List[Tuple[str, int, float]] = []
        answered: List[Tuple[str, int, float]] = []
        for entry in self.missing:
            name, qmask, _rate = entry
            if mask & ~qmask:
                continue
            if mask == qmask:
                answered.append(entry)
            else:
                self.usable[name].append(mask)
                self.generation[name] += 1
                dirty_queries.append(entry)
        if answered:
            self.missing = [q for q in self.missing if q[1] != mask]
            self.missing_masks.discard(mask)
        if final or not self.lazy:
            return
        self._retire(mask)
        if not self.missing:
            return  # planning is over; skip frontier maintenance
        scored: Set[int] = set()
        if self.pair_strategy == "full":
            self._spawn_full_pairs(mask, dirty_queries, scored)
        else:
            self._diff_cover_contributions(answered, dirty_queries, scored)
        self._rescore_dirty(mask, answered, dirty_queries, scored)
        self.stats.pairs_skipped_lazy += len(self._active) - len(scored)

    # -- lazy engine ---------------------------------------------------
    def _push(self, union: int, gain: float, completes: bool) -> None:
        version = self._versions.get(union, -1) + 1
        self._versions[union] = version
        self._active[union] = (gain, completes, version)
        heapq.heappush(
            self._heap,
            (self.selection_key(union, gain, completes), version, union),
        )

    def _retire(self, union: int) -> None:
        """Drop a union from the frontier (its node now exists)."""
        self._active.pop(union, None)
        self._refcount.pop(union, None)
        self._term_cache.pop(union, None)
        for contributions in self._contrib.values():
            contributions.discard(union)

    def _score_and_activate(self, union: int, scored: Set[int]) -> None:
        """(Re-)score one union, deactivating it if no query contains it.

        The relevance probe is mask tests only -- a union that lost its
        last containing query is dropped *without* counting a scoring,
        because the naive engine would not have enumerated it either.
        """
        if not self.relevant_queries(union):
            self._active.pop(union, None)
            return
        gain, completes = self.score_union(union)
        scored.add(union)
        self._push(union, gain, completes)

    def _build_initial_frontier(self) -> None:
        scored: Set[int] = set()
        if self.pair_strategy == "cover":
            for name, qmask, _rate in self.missing:
                pool = self.base_cover(name, qmask)
                contributions: Dict[int, None] = {}
                self._pair_unions(pool, contributions)
                self._contrib[name] = set(contributions)
                for union in contributions:
                    self._refcount[union] = self._refcount.get(union, 0) + 1
        for union in self.enumerate_unions():
            self._score_and_activate(union, scored)

    def _spawn_full_pairs(
        self,
        mask: int,
        dirty_queries: List[Tuple[str, int, float]],
        scored: Set[int],
    ) -> None:
        """New admissible unions pairing the new node with old candidates.

        Pairs between two *old* candidates cannot become admissible
        later (candidates only grow, missing queries only shrink), so
        the new node is the only source of frontier growth.
        """
        require_disjoint = self.require_disjoint
        for name, _qmask, _rate in dirty_queries:
            for other in self.usable[name]:
                if other == mask:
                    continue
                meet = mask & other
                if meet == mask or meet == other:
                    continue
                if require_disjoint and meet:
                    continue
                union = mask | other
                if union in self.index or union in self._active:
                    continue
                self._score_and_activate(union, scored)

    def _diff_cover_contributions(
        self,
        answered: List[Tuple[str, int, float]],
        dirty_queries: List[Tuple[str, int, float]],
        scored: Set[int],
    ) -> None:
        """Re-derive the pair pools of queries whose cover changed.

        Under the "cover" strategy a union is admissible only while some
        missing query's greedy cover proposes it; contributions are
        refcounted so a union stays active exactly as long as one cover
        still contains the pair.
        """
        for name, _qmask, _rate in answered:
            for union in self._contrib.pop(name, set()):
                self._drop_contribution(union)
        for name, qmask, _rate in dirty_queries:
            old = self._contrib.get(name, set())
            fresh: Dict[int, None] = {}
            self._pair_unions(self.base_cover(name, qmask), fresh)
            new = set(fresh)
            for union in old - new:
                self._drop_contribution(union)
            for union in new - old:
                self._refcount[union] = self._refcount.get(union, 0) + 1
                if union not in self._active:
                    self._score_and_activate(union, scored)
            self._contrib[name] = new

    def _drop_contribution(self, union: int) -> None:
        remaining = self._refcount.get(union, 0) - 1
        if remaining > 0:
            self._refcount[union] = remaining
        else:
            self._refcount.pop(union, None)
            self._active.pop(union, None)

    def _rescore_dirty(
        self,
        mask: int,
        answered: List[Tuple[str, int, float]],
        dirty_queries: List[Tuple[str, int, float]],
        scored: Set[int],
    ) -> None:
        """Re-score exactly the unions whose cached gain may have moved.

        A union's gain reads only the covers of queries containing it,
        so the dirty set is every active union contained in a query
        whose usable list grew -- or in a query that just left the
        missing set (its gain term disappears).  Everything else keeps
        a provably-current cached score; that is the lazy engine's whole
        saving.
        """
        dirty_masks = [qmask for _, qmask, _ in dirty_queries]
        dirty_masks.extend(qmask for _, qmask, _ in answered)
        if not dirty_masks:
            return
        for union in list(self._active):
            if union in scored:
                continue
            for qmask in dirty_masks:
                if not (union & ~qmask):
                    self._score_and_activate(union, scored)
                    break

    def lazy_best(self) -> Optional[Tuple[int, float, bool]]:
        """Pop the frontier's exact argmax (discarding superseded entries)."""
        heap = self._heap
        active = self._active
        while heap:
            key, version, union = heapq.heappop(heap)
            entry = active.get(union)
            if entry is None or entry[2] != version:
                continue  # superseded or retired heap entry
            gain, completes, _version = entry
            return union, gain, completes
        return None

    # -- naive engine --------------------------------------------------
    def naive_best(self) -> Optional[Tuple[int, float, bool]]:
        """Full rescan: enumerate and score every admissible union."""
        self.reset_cover_memo()
        unions = self.enumerate_unions()
        if not unions:
            return None
        best: Optional[Tuple[int, float, bool]] = None
        best_key: Optional[Tuple[int, float, Tuple[int, ...]]] = None
        for union in unions:
            gain, completes = self.score_union(union)
            key = self.selection_key(union, gain, completes)
            if best_key is None or key < best_key:
                best_key = key
                best = (union, gain, completes)
        return best


def greedy_shared_plan(
    instance: SharedAggregationInstance,
    pair_strategy: str = "full",
    stats: Optional[GreedyPlannerStats] = None,
    require_disjoint: bool = False,
    planner: str = "lazy",
    collector: Collector = NULL,
) -> Plan:
    """Build a shared plan with the paper's greedy heuristic.

    Args:
        instance: The shared-aggregation problem.
        pair_strategy: ``"full"`` evaluates every pair of nodes that are
            both subsets of a common missing query (the paper's
            formulation); ``"cover"`` restricts to pairs drawn from the
            current greedy covers (a much cheaper variant for large
            instances -- the pairs outside the covers rarely win since
            they don't reduce any ``|C_q|`` directly).
        stats: Optional stats collector.
        require_disjoint: Build a plan in which every internal node's
            operands are disjoint, as required by non-idempotent
            aggregates (sum, count, product) -- covers become partitions
            and overlapping pair merges are never proposed.  Top-k and
            other idempotent operators do not need this.
        planner: ``"lazy"`` (default) completes the plan with the
            CELF-style incremental engine; ``"naive"`` re-enumerates and
            re-scores every candidate pair each step (the oracle the
            differential tests compare against).  Both produce identical
            plans; only the work differs.
        collector: Optional :class:`repro.instrument.Collector`; planner
            work counters (``plan.pairs_scored``,
            ``plan.pairs_skipped_lazy``, ``plan.covers_computed``,
            ``plan.covers_memo_hits``) are flushed once per run.

    Returns:
        A validated complete plan.
    """
    if pair_strategy not in ("full", "cover"):
        raise PlanConstructionError(
            f"unknown pair strategy {pair_strategy!r}; use 'full' or 'cover'"
        )
    if planner not in ("naive", "lazy"):
        raise PlanConstructionError(
            f"unknown planner {planner!r}; use 'naive' or 'lazy'"
        )
    collected = stats if stats is not None else GreedyPlannerStats()
    plan = Plan(instance)

    # ------------------------------------------------------------------
    # Stage 1: aggregate within fragments.
    # ------------------------------------------------------------------
    before = plan.total_cost
    for fragment in identify_fragments(instance):
        interner = plan.interner
        ordered = interner.members(interner.mask_of(fragment.variables))
        leaves = [plan.leaf_of(v) for v in ordered]
        if len(leaves) > 1:
            _aggregate_balanced(plan, leaves)
    collected.fragment_nodes = plan.total_cost - before

    # ------------------------------------------------------------------
    # Stage 2: greedy completion by expected greedy coverage gain.
    # ------------------------------------------------------------------
    state = _PlannerState(
        plan, pair_strategy, require_disjoint, collected, lazy=planner == "lazy"
    )
    guard = 0
    max_steps = 4 * sum(len(q.variables) for q in instance.queries) + 16
    while True:
        if not state.missing:
            break
        guard += 1
        if guard > max_steps:
            # Degenerate gain landscape: finish without further sharing.
            _complete_directly(state, collected)
            break
        best = state.lazy_best() if state.lazy else state.naive_best()
        if best is None:
            _complete_directly(state, collected)
            break
        union, gain, completes = best
        if not completes and gain <= 0.0:
            _complete_directly(state, collected)
            break
        left_id, right_id = state.representative_pair(union)
        plan.add_internal(left_id, right_id)
        state.note_new_node(union)
        collected.completion_steps += 1
        if completes:
            collected.query_completions += 1

    plan.validate()
    if collector.enabled:
        collector.incr(names.PLAN_PAIRS_SCORED, collected.pairs_scored)
        collector.incr(
            names.PLAN_PAIRS_SKIPPED_LAZY, collected.pairs_skipped_lazy
        )
        collector.incr(names.PLAN_COVERS_COMPUTED, collected.covers_computed)
        collector.incr(names.PLAN_COVERS_MEMO_HITS, collected.covers_memo_hits)
    return plan


def _complete_directly(
    state: _PlannerState, stats: GreedyPlannerStats
) -> None:
    """Finish every missing query by aggregating its greedy cover.

    This is the "complete the plan without any further sharing" step:
    for each missing query, find the greedy cover of its variable set
    from the existing nodes and aggregate the cover left-to-right
    (``|C_q| - 1`` new nodes, some possibly reused across queries via the
    plan's varset dedup).  Chain nodes created for one query join the
    candidate pool of the next, exactly as the frozenset implementation
    recomputed its candidate list per query.
    """
    plan = state.plan
    for name, qmask, _rate in list(state.missing):
        if plan.node_for_mask(qmask) is not None:
            # An earlier chain produced this varset; the query is done.
            continue
        cover = state.cover_fn(
            qmask, state.index.subsets_of(qmask), state.sort_key
        )
        stats.covers_computed += 1
        if len(cover) == 1:
            continue
        acc_id = plan.node_for_mask(cover[0])
        acc_mask = cover[0]
        assert acc_id is not None
        for part in cover[1:]:
            part_id = plan.node_for_mask(part)
            if part_id is None:
                raise PlanConstructionError(
                    f"internal error: cover set without a node for {name!r}"
                )
            union = acc_mask | part
            acc_id = plan.add_internal(acc_id, part_id)
            state.note_new_node(union, final=True)
            acc_mask = union
        stats.direct_completions += 1
