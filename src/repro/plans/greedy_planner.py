"""The paper's two-stage greedy planning heuristic (Section II-D).

Stage 1 groups variables into fragments and aggregates within each
fragment (no sharing boundary ever splits a fragment).  Stage 2 completes
the plan greedily: at each step it aggregates the pair of existing nodes
with the greatest *expected greedy coverage gain* -- the decrease in
``sum_q sr_q * |C_q|``, where ``C_q`` is the cover of query ``q``'s
variable set prescribed by the greedy set-cover algorithm over the
current nodes -- preferring pairs whose union *is* a missing query
(their extra cost is zero, since a query node counts toward base cost).

Termination: steps that complete a query node happen at most ``|E|``
times; other steps are only taken when they strictly decrease the total
expected greedy coverage.  If no pair yields a positive gain, the
remaining queries are completed directly by aggregating their greedy
covers pairwise (the "no further sharing" completion the paper uses to
motivate the gain measure), which always terminates.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.errors import PlanConstructionError
from repro.plans.dag import Plan
from repro.plans.fragments import identify_fragments
from repro.plans.instance import SharedAggregationInstance
from repro.plans.set_cover import greedy_set_cover, greedy_set_partition

__all__ = ["greedy_shared_plan", "GreedyPlannerStats"]

Variable = Hashable
VarSet = FrozenSet[Variable]


class GreedyPlannerStats:
    """Counters describing one planner run (for ablations and tests).

    Attributes:
        fragment_nodes: Internal nodes created by stage 1.
        completion_steps: Stage-2 iterations that created a node.
        query_completions: Steps whose new node answered a missing query.
        direct_completions: Queries finished by the no-further-sharing
            fallback.
        pairs_evaluated: Candidate pairs whose gain was computed.
    """

    def __init__(self) -> None:
        self.fragment_nodes = 0
        self.completion_steps = 0
        self.query_completions = 0
        self.direct_completions = 0
        self.pairs_evaluated = 0

    def __repr__(self) -> str:
        return (
            f"GreedyPlannerStats(fragment_nodes={self.fragment_nodes}, "
            f"completion_steps={self.completion_steps}, "
            f"query_completions={self.query_completions}, "
            f"direct_completions={self.direct_completions}, "
            f"pairs_evaluated={self.pairs_evaluated})"
        )


def _aggregate_balanced(plan: Plan, node_ids: Sequence[int]) -> int:
    """Aggregate nodes as a balanced binary tree; returns the root id."""
    level = list(node_ids)
    if not level:
        raise PlanConstructionError("cannot aggregate an empty node list")
    while len(level) > 1:
        nxt: List[int] = []
        for index in range(0, len(level) - 1, 2):
            nxt.append(plan.add_internal(level[index], level[index + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def greedy_shared_plan(
    instance: SharedAggregationInstance,
    pair_strategy: str = "full",
    stats: Optional[GreedyPlannerStats] = None,
    require_disjoint: bool = False,
) -> Plan:
    """Build a shared plan with the paper's greedy heuristic.

    Args:
        instance: The shared-aggregation problem.
        pair_strategy: ``"full"`` evaluates every pair of nodes that are
            both subsets of a common missing query (the paper's
            formulation); ``"cover"`` restricts to pairs drawn from the
            current greedy covers (a much cheaper variant for large
            instances -- the pairs outside the covers rarely win since
            they don't reduce any ``|C_q|`` directly).
        stats: Optional stats collector.
        require_disjoint: Build a plan in which every internal node's
            operands are disjoint, as required by non-idempotent
            aggregates (sum, count, product) -- covers become partitions
            and overlapping pair merges are never proposed.  Top-k and
            other idempotent operators do not need this.

    Returns:
        A validated complete plan.
    """
    if pair_strategy not in ("full", "cover"):
        raise PlanConstructionError(
            f"unknown pair strategy {pair_strategy!r}; use 'full' or 'cover'"
        )
    collected = stats if stats is not None else GreedyPlannerStats()
    plan = Plan(instance)

    # ------------------------------------------------------------------
    # Stage 1: aggregate within fragments.
    # ------------------------------------------------------------------
    before = plan.total_cost
    for fragment in identify_fragments(instance):
        leaves = [plan.leaf_of(v) for v in sorted(fragment.variables, key=repr)]
        if len(leaves) > 1:
            _aggregate_balanced(plan, leaves)
    collected.fragment_nodes = plan.total_cost - before

    # ------------------------------------------------------------------
    # Stage 2: greedy completion by expected greedy coverage gain.
    # ------------------------------------------------------------------
    guard = 0
    max_steps = 4 * sum(len(q.variables) for q in instance.queries) + 16
    while True:
        missing = plan.missing_queries()
        if not missing:
            break
        guard += 1
        if guard > max_steps:
            # Degenerate gain landscape: finish without further sharing.
            _complete_directly(plan, collected, require_disjoint)
            break

        cover_fn = greedy_set_partition if require_disjoint else greedy_set_cover
        candidate_sets = _candidate_varsets(plan)
        covers: Dict[str, List[VarSet]] = {}
        for query in missing:
            usable = [c for c in candidate_sets if c <= query.variables]
            covers[query.name] = cover_fn(query.variables, usable)

        best = _best_pair(
            plan, missing, candidate_sets, covers, pair_strategy, collected,
            require_disjoint=require_disjoint,
        )
        if best is None:
            _complete_directly(plan, collected, require_disjoint)
            break
        union, left_id, right_id, completes_query, gain = best
        if not completes_query and gain <= 0.0:
            _complete_directly(plan, collected, require_disjoint)
            break
        plan.add_internal(left_id, right_id)
        collected.completion_steps += 1
        if completes_query:
            collected.query_completions += 1

    plan.validate()
    return plan


def _candidate_varsets(plan: Plan) -> List[VarSet]:
    """Varsets of all current nodes, deduplicated, leaves included."""
    return list(dict.fromkeys(node.varset for node in plan.nodes))


def _best_pair(
    plan: Plan,
    missing,
    candidate_sets: List[VarSet],
    covers: Dict[str, List[VarSet]],
    pair_strategy: str,
    stats: GreedyPlannerStats,
    require_disjoint: bool = False,
) -> Optional[Tuple[VarSet, int, int, bool, float]]:
    """Find the pair of nodes with maximum expected greedy coverage gain.

    Returns ``(union_varset, left_id, right_id, completes_query, gain)``
    or ``None`` when no admissible pair exists.  Pairs whose union equals
    a missing query's variable set are preferred unconditionally (zero
    extra cost), ranked among themselves by gain.
    """
    search_rates = plan.instance.search_rates()
    missing_varsets = {q.variables for q in missing}
    base_total: Dict[str, float] = {
        q.name: search_rates[q.name] * len(covers[q.name]) for q in missing
    }

    # Enumerate candidate pair unions, remembering one representative
    # (left, right) node-id pair for each distinct union.
    union_sources: Dict[VarSet, Tuple[int, int]] = {}
    existing = set(candidate_sets)
    if pair_strategy == "full":
        pools: List[List[VarSet]] = []
        for query in missing:
            pools.append([c for c in candidate_sets if c <= query.variables])
    else:
        pools = [list(covers[q.name]) for q in missing]

    for pool in pools:
        for left_set, right_set in combinations(pool, 2):
            if left_set <= right_set or right_set <= left_set:
                continue
            if require_disjoint and left_set & right_set:
                continue
            union = left_set | right_set
            if union in existing or union in union_sources:
                continue
            left_id = plan.node_for_varset(left_set)
            right_id = plan.node_for_varset(right_set)
            if left_id is None or right_id is None:
                continue
            union_sources[union] = (left_id, right_id)

    if not union_sources:
        return None

    best: Optional[Tuple[VarSet, int, int, bool, float]] = None
    best_key: Optional[Tuple[int, float, str]] = None
    cover_fn = greedy_set_partition if require_disjoint else greedy_set_cover
    for union, (left_id, right_id) in union_sources.items():
        stats.pairs_evaluated += 1
        gain = 0.0
        for query in missing:
            if not union <= query.variables:
                continue
            usable = [c for c in candidate_sets if c <= query.variables]
            usable.append(union)
            new_cover = cover_fn(query.variables, usable)
            gain += base_total[query.name] - search_rates[query.name] * len(
                new_cover
            )
        completes = union in missing_varsets
        # Rank: query-completing pairs first, then gain, then determinism.
        key = (0 if completes else 1, -gain, repr(sorted(union, key=repr)))
        if best_key is None or key < best_key:
            best_key = key
            best = (union, left_id, right_id, completes, gain)
    return best


def _complete_directly(
    plan: Plan, stats: GreedyPlannerStats, require_disjoint: bool = False
) -> None:
    """Finish every missing query by aggregating its greedy cover.

    This is the "complete the plan without any further sharing" step:
    for each missing query, find the greedy cover of its variable set
    from the existing nodes and aggregate the cover left-to-right
    (``|C_q| - 1`` new nodes, some possibly reused across queries via the
    plan's varset dedup).
    """
    cover_fn = greedy_set_partition if require_disjoint else greedy_set_cover
    for query in plan.missing_queries():
        candidate_sets = _candidate_varsets(plan)
        usable = [c for c in candidate_sets if c <= query.variables]
        cover = cover_fn(query.variables, usable)
        node_ids = [plan.node_for_varset(c) for c in cover]
        resolved = [nid for nid in node_ids if nid is not None]
        if len(resolved) != len(cover):
            raise PlanConstructionError(
                f"internal error: cover set without a node for {query.name!r}"
            )
        if len(resolved) == 1:
            # The query equals an existing node's varset; nothing to add.
            continue
        plan.add_chain(resolved)
        stats.direct_completions += 1
