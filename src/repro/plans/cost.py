"""The expected-materialization cost model (Section II-B).

A node is *materialized* in a round if it is used to compute the result
of some bid phrase that occurs in that round.  With phrase occurrences
independent Bernoulli trials of probability ``sr_q``, the probability a
node ``v`` is materialized is ``1 - prod_{q : v ⇝ q} (1 - sr_q)``, and by
linearity of expectation the expected cost of a plan per round is the sum
of that over the plan's internal (operator) nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set

from repro.plans.dag import Plan

__all__ = [
    "node_materialization_probability",
    "expected_plan_cost",
    "per_node_expected_cost",
    "expected_cost_upper_bound_no_sharing",
]


def node_materialization_probability(
    downstream_query_names: Iterable[str], search_rates: Mapping[str, float]
) -> float:
    """``1 - prod (1 - sr_q)`` over the queries a node feeds."""
    survival = 1.0
    for name in downstream_query_names:
        survival *= 1.0 - search_rates[name]
    return 1.0 - survival


def per_node_expected_cost(plan: Plan) -> Dict[int, float]:
    """Expected materialization probability of each internal node.

    Leaves are excluded: the cost model counts aggregation operators
    (nodes with in-degree 2) only.
    """
    search_rates = plan.instance.search_rates()
    downstream = plan.downstream_queries()
    costs: Dict[int, float] = {}
    for node in plan.internal_nodes():
        costs[node.node_id] = node_materialization_probability(
            downstream[node.node_id], search_rates
        )
    return costs


def expected_plan_cost(plan: Plan) -> float:
    """Expected number of internal nodes materialized per round.

    This is the objective the planners minimize:
    ``sum_v (1 - prod_{q : v ⇝ q} (1 - sr_q))`` over operator nodes ``v``.
    Internal nodes that feed no query contribute nothing (they are never
    materialized), though well-formed planner output contains none.
    """
    return sum(per_node_expected_cost(plan).values())


def expected_cost_upper_bound_no_sharing(
    query_sizes: Mapping[str, int], search_rates: Mapping[str, float]
) -> float:
    """Closed-form expected cost of the no-sharing baseline.

    Computing query ``q`` alone takes ``|X_q| - 1`` binary aggregations,
    each used only by ``q``, so the expected cost is
    ``sum_q sr_q * (|X_q| - 1)``.  Useful as a quick upper bound without
    building the baseline plan.
    """
    return sum(
        search_rates[name] * (size - 1) for name, size in query_sizes.items()
    )
