"""``⊕``-expressions and equivalence under axiom profiles.

An ``⊕``-expression is built from variables by closing under the binary
operator (Section II-C).  Two expressions are *A-equivalent* when their
equality is provable from the assumed axioms.  This module decides
A-equivalence for every profile over {A1, A3, A4} by computing canonical
forms:

==========================  =============================================
profile                     canonical form
==========================  =============================================
(none)                      the syntax tree itself
A4                          tree with the two children of every node in
                            sorted order (free commutative groupoid)
A3                          tree rewritten with ``x ⊕ x -> x`` innermost
                            (free idempotent groupoid; the rewriting
                            system is convergent)
A3 + A4                     both of the above
A1                          the flattened leaf *sequence* (free semigroup)
A1 + A4                     the leaf *multiset* (free commutative
                            semigroup)
A1 + A3                     the free-band canonical form (content, first
                            new letter, last-to-vanish letter, and
                            recursive prefix/suffix forms)
A1 + A3 + A4                the leaf *set* -- the paper's Lemma 1
==========================  =============================================

A2 (identity) does not change equivalence of variable-only expressions:
as the paper notes, variables may or may not hold the identity at any
round, so the identity element cannot be exploited.  A5 (divisibility)
also adds no equations between ``⊕``-only terms: in the free group (or
free quasigroup) on X, products of generators are equal iff they are
equal as words, so A5's presence never merges plan nodes.  Both facts are
covered by tests against finite witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import FrozenSet, Hashable, Iterable, List, Sequence, Tuple, Union

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.errors import AlgebraError

__all__ = [
    "Expr",
    "Var",
    "Op",
    "variables_of",
    "leaf_sequence",
    "canonical_key",
    "equivalent",
    "expression_from_variables",
    "right_deep",
    "balanced",
]


@dataclass(frozen=True)
class Var:
    """A variable leaf -- one advertiser's bid in the paper's setting."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Op:
    """An internal ``⊕`` node combining two sub-expressions."""

    left: "Expr"
    right: "Expr"

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


Expr = Union[Var, Op]
"""Type alias for ``⊕``-expressions."""


def variables_of(expr: Expr) -> FrozenSet[str]:
    """The set of variable names appearing in an expression."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    stack: List[Expr] = [expr]
    names: set[str] = set()
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            names.add(node.name)
        else:
            stack.append(node.left)
            stack.append(node.right)
    return frozenset(names)


def leaf_sequence(expr: Expr) -> Tuple[str, ...]:
    """The in-order sequence of variable names (the flattened word)."""
    out: List[str] = []
    stack: List[Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            out.append(node.name)
        else:
            stack.append(node.right)
            stack.append(node.left)
    return tuple(out)


def _free_band_canonical(word: Sequence[str]) -> Hashable:
    """Canonical form of a word in the free band (A1 + A3, no A4).

    Two words are equal in the free band iff they have the same content
    (set of letters) and, recursively, the same decomposition
    ``(prefix-form, a, b, suffix-form)`` where

    - ``a`` is the letter whose *first* occurrence comes last; the prefix
      is the part of the word before that first occurrence;
    - ``b`` is the letter whose *last* occurrence comes first; the suffix
      is the part of the word after that last occurrence.

    This is the classical solution of the free-band word problem
    (Green & Rees 1952).
    """
    content = sorted(set(word))
    if len(content) == 1:
        return content[0]
    first_pos: dict[str, int] = {}
    last_pos: dict[str, int] = {}
    for index, letter in enumerate(word):
        if letter not in first_pos:
            first_pos[letter] = index
        last_pos[letter] = index
    a = max(first_pos, key=lambda x: first_pos[x])
    b = min(last_pos, key=lambda x: last_pos[x])
    prefix = word[: first_pos[a]]
    suffix = word[last_pos[b] + 1 :]
    return (
        tuple(content),
        a,
        b,
        _free_band_canonical(prefix),
        _free_band_canonical(suffix),
    )


def _canonical_tree(expr: Expr, idempotent: bool, commutative: bool) -> Hashable:
    """Canonical form for the non-associative profiles.

    Children are canonicalized recursively; with A4 the pair is sorted by
    its repr-comparable encoding, and with A3 a node whose children
    canonicalize identically collapses to the child.
    """
    if isinstance(expr, Var):
        return ("v", expr.name)
    left = _canonical_tree(expr.left, idempotent, commutative)
    right = _canonical_tree(expr.right, idempotent, commutative)
    if idempotent and left == right:
        return left
    if commutative and _encode(right) < _encode(left):
        left, right = right, left
    return ("op", left, right)


def _encode(key: Hashable) -> str:
    """Stable total order on canonical keys (tuples of strings, nested)."""
    return repr(key)


def canonical_key(expr: Expr, profile: AxiomProfile) -> Hashable:
    """A hashable canonical form deciding A-equivalence for ``profile``.

    Two expressions are A-equivalent iff their canonical keys are equal.
    Only A1, A3, and A4 influence the key; A2 and A5 are equivalence-
    neutral for variable-only expressions (see the module docstring).
    """
    a1 = profile.associative
    a3 = profile.idempotent
    a4 = profile.commutative
    if not a1:
        return _canonical_tree(expr, idempotent=a3, commutative=a4)
    word = leaf_sequence(expr)
    if a3 and a4:
        return frozenset(word)
    if a4:
        return tuple(sorted(word))
    if a3:
        return _free_band_canonical(word)
    return word


def equivalent(e1: Expr, e2: Expr, profile: AxiomProfile) -> bool:
    """Decide whether two expressions are A-equivalent under ``profile``.

    For the top-k profile (a semilattice), this reduces to the paper's
    Lemma 1: equivalence iff equal variable sets.
    """
    return canonical_key(e1, profile) == canonical_key(e2, profile)


def expression_from_variables(names: Iterable[str]) -> Expr:
    """The canonical right-deep ``⊕``-expression over sorted variables.

    This is the paper's ``e_S`` construction (proof of Theorem 2): fix an
    arbitrary strict order on variables -- we use lexicographic order --
    and aggregate them right-associatively.
    """
    ordered = sorted(set(names))
    if not ordered:
        raise AlgebraError("an expression needs at least one variable")
    return right_deep([Var(name) for name in ordered])


def right_deep(parts: Sequence[Expr]) -> Expr:
    """Combine sub-expressions right-associatively: ``x1 ⊕ (x2 ⊕ ...)``."""
    if not parts:
        raise AlgebraError("cannot combine an empty sequence of expressions")
    return reduce(lambda acc, part: Op(part, acc), reversed(parts[:-1]), parts[-1])


def balanced(parts: Sequence[Expr]) -> Expr:
    """Combine sub-expressions as a balanced binary tree.

    Used by planners when the aggregation shape does not matter
    semantically (associativity) but a logarithmic depth is preferred for
    latency.
    """
    if not parts:
        raise AlgebraError("cannot combine an empty sequence of expressions")
    level: List[Expr] = list(parts)
    while len(level) > 1:
        nxt: List[Expr] = []
        for index in range(0, len(level) - 1, 2):
            nxt.append(Op(level[index], level[index + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
