"""Finite magmas with exact axiom checking.

A finite magma is a set ``{0, ..., n-1}`` with a Cayley table for ``⊕``.
These are the concrete witnesses the library uses to cross-check the
abstract axiom machinery: :func:`satisfied_axioms` decides, by brute
force, exactly which of A1-A5 hold, and the constructors below build the
standard examples (min/max semilattices, modular-addition groups, the
left-zero band, small quasigroups).

The top-k merge operator of :mod:`repro.core.topk` lives on an infinite
carrier; tests quotient it onto small finite carriers (lists drawn from a
bounded id/score universe) to check its axioms exhaustively too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.errors import AlgebraError

__all__ = [
    "FiniteMagma",
    "satisfied_axioms",
    "min_semilattice",
    "max_semilattice",
    "cyclic_group",
    "left_zero_band",
    "boolean_or_monoid",
    "subtraction_quasigroup",
]


@dataclass(frozen=True)
class FiniteMagma:
    """A finite magma defined by its Cayley table.

    Attributes:
        table: ``table[a][b]`` is ``a ⊕ b``; entries must be in
            ``range(n)`` where ``n = len(table)``.
        name: Optional human-readable label used in test output.
    """

    table: Tuple[Tuple[int, ...], ...]
    name: str = "magma"

    def __init__(self, table: Sequence[Sequence[int]], name: str = "magma") -> None:
        rows = tuple(tuple(int(x) for x in row) for row in table)
        n = len(rows)
        if n == 0:
            raise AlgebraError("a magma needs a non-empty carrier")
        for row in rows:
            if len(row) != n:
                raise AlgebraError("Cayley table must be square")
            if any(not 0 <= x < n for x in row):
                raise AlgebraError(
                    f"Cayley table entries must be in range({n}): {row!r}"
                )
        object.__setattr__(self, "table", rows)
        object.__setattr__(self, "name", name)

    @property
    def order(self) -> int:
        """Number of elements in the carrier."""
        return len(self.table)

    def op(self, a: int, b: int) -> int:
        """Apply ``a ⊕ b``."""
        return self.table[a][b]

    def identity_element(self) -> Optional[int]:
        """The two-sided identity, or ``None`` if there is none."""
        n = self.order
        for e in range(n):
            if all(self.op(a, e) == a and self.op(e, a) == a for a in range(n)):
                return e
        return None

    def is_associative(self) -> bool:
        """Exhaustively check A1 (``O(n^3)``)."""
        n = self.order
        return all(
            self.op(a, self.op(b, c)) == self.op(self.op(a, b), c)
            for a in range(n)
            for b in range(n)
            for c in range(n)
        )

    def is_commutative(self) -> bool:
        """Exhaustively check A4."""
        n = self.order
        return all(self.op(a, b) == self.op(b, a) for a in range(n) for b in range(n))

    def is_idempotent(self) -> bool:
        """Exhaustively check A3."""
        return all(self.op(a, a) == a for a in range(self.order))

    def is_divisible(self) -> bool:
        """Exhaustively check A5: unique left and right division.

        For every ``a, b`` there must be exactly one ``c`` with
        ``a ⊕ c = b`` and exactly one ``d`` with ``d ⊕ a = b`` --
        equivalently, the Cayley table is a Latin square.
        """
        n = self.order
        for a in range(n):
            row = self.table[a]
            if len(set(row)) != n:
                return False
            column = [self.table[d][a] for d in range(n)]
            if len(set(column)) != n:
                return False
        return True


def satisfied_axioms(magma: FiniteMagma) -> AxiomProfile:
    """Decide exactly which of A1-A5 a finite magma satisfies."""
    axioms = set()
    if magma.is_associative():
        axioms.add(Axiom.A1)
    if magma.identity_element() is not None:
        axioms.add(Axiom.A2)
    if magma.is_idempotent():
        axioms.add(Axiom.A3)
    if magma.is_commutative():
        axioms.add(Axiom.A4)
    if magma.is_divisible():
        axioms.add(Axiom.A5)
    return AxiomProfile(axioms)


def min_semilattice(n: int) -> FiniteMagma:
    """``min`` on ``{0..n-1}`` -- a semilattice with identity ``n-1``."""
    table = [[min(a, b) for b in range(n)] for a in range(n)]
    return FiniteMagma(table, name=f"min({n})")


def max_semilattice(n: int) -> FiniteMagma:
    """``max`` on ``{0..n-1}`` -- a semilattice with identity ``0``."""
    table = [[max(a, b) for b in range(n)] for a in range(n)]
    return FiniteMagma(table, name=f"max({n})")


def cyclic_group(n: int) -> FiniteMagma:
    """Addition mod ``n`` -- an Abelian group: {A1, A2, A4, A5}."""
    table = [[(a + b) % n for b in range(n)] for a in range(n)]
    return FiniteMagma(table, name=f"Z/{n}")


def left_zero_band(n: int) -> FiniteMagma:
    """``a ⊕ b = a`` -- an idempotent, associative, non-commutative band."""
    if n < 2:
        raise AlgebraError("left-zero band needs order >= 2 to be non-commutative")
    table = [[a for _b in range(n)] for a in range(n)]
    return FiniteMagma(table, name=f"left-zero({n})")


def boolean_or_monoid() -> FiniteMagma:
    """Logical OR on {0, 1} -- semilattice with identity 0 ({A1,A2,A3,A4})."""
    return FiniteMagma([[0, 1], [1, 1]], name="or")


def subtraction_quasigroup(n: int) -> FiniteMagma:
    """``a ⊕ b = (a - b) mod n`` -- a quasigroup that is not associative.

    For ``n >= 3`` this satisfies A5 but neither A1 nor A4, exercising the
    pure-quasigroup rows of Fig. 5.
    """
    if n < 3:
        raise AlgebraError("subtraction quasigroup needs order >= 3")
    table = [[(a - b) % n for b in range(n)] for a in range(n)]
    return FiniteMagma(table, name=f"sub({n})")
