"""Abstract aggregation-operator algebra (Sections II-C and VII).

The paper abstracts the binary top-k merge into an operator ``⊕`` on a set
of values -- a *magma* -- and studies how the algebraic axioms the
operator satisfies affect the complexity of optimal shared aggregation:

- ``A1`` associativity, ``A2`` identity, ``A3`` idempotence,
  ``A4`` commutativity, ``A5`` divisibility.

This package provides:

- :mod:`repro.algebra.axioms` -- the axiom enumeration, axiom profiles,
  and the named algebraic structures they characterize (semigroup, monoid,
  group, Abelian group, band, semilattice, quasigroup, loop).
- :mod:`repro.algebra.magmas` -- finite magmas given by Cayley tables,
  with exact axiom checking; used to property-test the abstraction against
  concrete operators (min, max, top-k quotients, Bloom-filter unions...).
- :mod:`repro.algebra.expressions` -- ``⊕``-expressions over variables,
  canonical forms, and equivalence under any axiom profile (Lemma 1 is the
  semilattice special case; the free-band word problem handles A1+A3).
- :mod:`repro.algebra.complexity` -- the Fig. 5 complexity table: the
  complexity of finding a min-cost shared plan as a function of the axiom
  profile.
"""

from repro.algebra.axioms import (
    ASSOCIATIVITY,
    COMMUTATIVITY,
    DIVISIBILITY,
    IDENTITY,
    IDEMPOTENCE,
    Axiom,
    AxiomProfile,
    SEMILATTICE_WITH_IDENTITY,
    structure_names,
)
from repro.algebra.complexity import Complexity, complexity_of, fig5_rows
from repro.algebra.expressions import Expr, Op, Var, equivalent, variables_of
from repro.algebra.magmas import FiniteMagma, satisfied_axioms

__all__ = [
    "ASSOCIATIVITY",
    "Axiom",
    "AxiomProfile",
    "COMMUTATIVITY",
    "Complexity",
    "DIVISIBILITY",
    "Expr",
    "FiniteMagma",
    "IDEMPOTENCE",
    "IDENTITY",
    "Op",
    "SEMILATTICE_WITH_IDENTITY",
    "Var",
    "complexity_of",
    "equivalent",
    "fig5_rows",
    "satisfied_axioms",
    "structure_names",
    "variables_of",
]
