"""The Fig. 5 complexity table for optimal shared aggregation.

Section VII of the paper tabulates the complexity of finding a min-cost
shared plan as a function of the operator's axiom profile.  Each row is a
pattern over (A1, A2, A3, A4, A5) where an axiom is required to hold
(``Y``), required to fail (``N``), or unconstrained (``*``):

======  ======  ======  ======  ======  =============
A1      A2      A3      A4      A5      Complexity
======  ======  ======  ======  ======  =============
N       \\*      \\*      \\*      N       PTIME
N       N       N       \\*      Y       PTIME
N       Y       N       \\*      Y       PTIME
N       N       Y       \\*      Y       PTIME
N       Y       Y       \\*      Y       O(1)
Y       \\*      N       Y       N       NP-complete
Y       \\*      N       Y       Y       NP-complete
Y       \\*      Y       Y       N       NP-complete
Y       \\*      Y       \\*      Y       O(1)
======  ======  ======  ======  ======  =============

The table is a *partial* characterization -- the paper notes rows with
A1=Y, A4=N are open -- so :func:`complexity_of` returns
:attr:`Complexity.UNKNOWN` for profiles no row matches.

Intuition captured by the rows (and exercised by
``benchmarks/test_bench_fig5.py``):

- Without associativity, only syntactic subexpression reuse is possible
  (after commutative/idempotent normalization), so optimal sharing is
  common-subexpression elimination -- polynomial.
- With associativity and commutativity, plan optimization embeds set
  cover (Theorems 2 and 3) -- NP-complete, even inapproximable.
- Idempotence plus divisibility collapses the structure: ``a ⊕ a = a``
  and unique division force ``a ⊕ b = a ⊕ c => b = c``; combined with
  associativity every element is the identity of its own subgroup, and
  expressions collapse so completely that plans cost O(1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.algebra.axioms import Axiom, AxiomProfile

__all__ = ["Complexity", "Fig5Row", "fig5_rows", "complexity_of"]


class Complexity(enum.Enum):
    """Complexity classes appearing in Fig. 5, plus UNKNOWN for open rows."""

    PTIME = "PTIME"
    NP_COMPLETE = "NP-complete"
    CONSTANT = "O(1)"
    UNKNOWN = "open"


_Y, _N, _STAR = "Y", "N", "*"


@dataclass(frozen=True)
class Fig5Row:
    """One row of the Fig. 5 table.

    Attributes:
        pattern: Five entries for (A1, A2, A3, A4, A5), each one of
            ``"Y"``, ``"N"``, ``"*"``.
        complexity: The complexity class for profiles matching the row.
    """

    pattern: Tuple[str, str, str, str, str]
    complexity: Complexity

    def matches(self, profile: AxiomProfile) -> bool:
        """Whether an exact axiom profile matches this row's pattern."""
        axioms = (Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4, Axiom.A5)
        for required, axiom in zip(self.pattern, axioms):
            holds = axiom in profile
            if required == _Y and not holds:
                return False
            if required == _N and holds:
                return False
        return True


_FIG5: List[Fig5Row] = [
    Fig5Row((_N, _STAR, _STAR, _STAR, _N), Complexity.PTIME),
    Fig5Row((_N, _N, _N, _STAR, _Y), Complexity.PTIME),
    Fig5Row((_N, _Y, _N, _STAR, _Y), Complexity.PTIME),
    Fig5Row((_N, _N, _Y, _STAR, _Y), Complexity.PTIME),
    Fig5Row((_N, _Y, _Y, _STAR, _Y), Complexity.CONSTANT),
    Fig5Row((_Y, _STAR, _N, _Y, _N), Complexity.NP_COMPLETE),
    Fig5Row((_Y, _STAR, _N, _Y, _Y), Complexity.NP_COMPLETE),
    Fig5Row((_Y, _STAR, _Y, _Y, _N), Complexity.NP_COMPLETE),
    Fig5Row((_Y, _STAR, _Y, _STAR, _Y), Complexity.CONSTANT),
]


def fig5_rows() -> List[Fig5Row]:
    """The nine rows of the paper's Fig. 5, in publication order."""
    return list(_FIG5)


def complexity_of(profile: AxiomProfile) -> Complexity:
    """Complexity of optimal shared aggregation for an exact profile.

    ``profile`` is interpreted as the *exact* set of axioms that hold (an
    axiom absent from the profile is assumed to fail, matching the
    table's ``N`` entries).  Profiles matched by no row -- the paper's
    open cases, A1=Y with A4=N (rows "6 through 8 with A4=N") -- return
    :attr:`Complexity.UNKNOWN`.

    Note the row order matters for the overlapping patterns: the O(1) row
    ``(Y, *, Y, *, Y)`` takes precedence over the NP-complete row
    ``(Y, *, Y, Y, N)`` only through its A5 entry, so the rows are in
    fact mutually exclusive and order-independent; we still scan in
    publication order for fidelity.
    """
    for row in _FIG5:
        if row.matches(profile):
            return row.complexity
    return Complexity.UNKNOWN


def complexity_table() -> List[Tuple[Tuple[str, str, str, str, str], str]]:
    """The table in a printable form, used by the Fig. 5 benchmark."""
    return [(row.pattern, row.complexity.value) for row in _FIG5]


def row_for(profile: AxiomProfile) -> Optional[Fig5Row]:
    """The first Fig. 5 row matching an exact profile, or ``None``."""
    for row in _FIG5:
        if row.matches(profile):
            return row
    return None
