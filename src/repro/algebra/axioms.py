"""The axioms A1-A5 and the algebraic structures they characterize.

Section VII of the paper lists five axioms of a binary operator ``⊕``:

- A1 associativity: ``a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c``
- A2 identity: ``∃e. a ⊕ e = e ⊕ a = a``
- A3 idempotence: ``a ⊕ a = a``
- A4 commutativity: ``a ⊕ b = b ⊕ a``
- A5 divisibility: ``∀a,b ∃!c ∃!d. a ⊕ c = d ⊕ a = b``

Subsets of these characterize the classical structures the paper names:
semigroups {A1}, monoids {A1,A2}, groups {A1,A2,A5}, Abelian groups
{A1,A2,A4,A5}, bands {A1,A3}, semilattices {A1,A3,A4}, quasigroups {A5},
and loops {A2,A5}.  The top-k merge operator satisfies {A1,A2,A3,A4} -- a
semilattice with identity -- which drives the NP-hardness results of
Section II-C.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, List

__all__ = [
    "Axiom",
    "AxiomProfile",
    "ASSOCIATIVITY",
    "IDENTITY",
    "IDEMPOTENCE",
    "COMMUTATIVITY",
    "DIVISIBILITY",
    "SEMILATTICE_WITH_IDENTITY",
    "structure_names",
]


class Axiom(enum.Enum):
    """One of the paper's five operator axioms."""

    A1 = "associativity"
    A2 = "identity"
    A3 = "idempotence"
    A4 = "commutativity"
    A5 = "divisibility"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Axiom.{self.name}"


ASSOCIATIVITY = Axiom.A1
IDENTITY = Axiom.A2
IDEMPOTENCE = Axiom.A3
COMMUTATIVITY = Axiom.A4
DIVISIBILITY = Axiom.A5


class AxiomProfile(FrozenSet[Axiom]):
    """An immutable set of axioms assumed to hold for ``⊕``.

    Behaves as a frozenset of :class:`Axiom` with convenience predicates.
    The empty profile means a bare magma (no equations assumed); the
    profile {A1, A2, A3, A4} is the paper's abstraction of top-k merge.
    """

    def __new__(cls, axioms: Iterable[Axiom] = ()) -> "AxiomProfile":
        return super().__new__(cls, axioms)  # type: ignore[arg-type]

    @property
    def associative(self) -> bool:
        """Whether A1 is assumed."""
        return Axiom.A1 in self

    @property
    def has_identity(self) -> bool:
        """Whether A2 is assumed."""
        return Axiom.A2 in self

    @property
    def idempotent(self) -> bool:
        """Whether A3 is assumed."""
        return Axiom.A3 in self

    @property
    def commutative(self) -> bool:
        """Whether A4 is assumed."""
        return Axiom.A4 in self

    @property
    def divisible(self) -> bool:
        """Whether A5 is assumed."""
        return Axiom.A5 in self

    def __repr__(self) -> str:
        names = "+".join(sorted(a.name for a in self)) or "magma"
        return f"AxiomProfile({names})"


SEMILATTICE_WITH_IDENTITY = AxiomProfile(
    {Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}
)
"""The profile of the top-k merge operator (Section II-C)."""


_STRUCTURES: List[tuple[str, FrozenSet[Axiom]]] = [
    ("semigroup", frozenset({Axiom.A1})),
    ("monoid", frozenset({Axiom.A1, Axiom.A2})),
    ("group", frozenset({Axiom.A1, Axiom.A2, Axiom.A5})),
    ("Abelian group", frozenset({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5})),
    ("band", frozenset({Axiom.A1, Axiom.A3})),
    ("semilattice", frozenset({Axiom.A1, Axiom.A3, Axiom.A4})),
    ("quasigroup", frozenset({Axiom.A5})),
    ("loop", frozenset({Axiom.A2, Axiom.A5})),
]


def structure_names(profile: AxiomProfile) -> List[str]:
    """Names of the classical structures a profile guarantees.

    Returns every named structure whose defining axioms are a subset of
    ``profile``, most specific (largest requirement) first.  For example,
    the top-k profile {A1,A2,A3,A4} is a semilattice, a band, a monoid,
    and a semigroup.
    """
    matches = [
        (name, axioms) for name, axioms in _STRUCTURES if axioms <= profile
    ]
    matches.sort(key=lambda pair: (-len(pair[1]), pair[0]))
    return [name for name, _ in matches]
