"""Shared merge-sort plans and the greedy bottom-up builder.

Section III-C: start from one leaf per advertiser and successively merge
the pair of nodes with the largest expected savings, where nodes ``u``
and ``v`` may merge into ``w`` only if

- ``Q_u ∩ Q_v ≠ ∅`` -- some phrase benefits from the merged run,
- ``I_u ∩ I_v = ∅`` -- merge-sort runs must be disjoint, and
- ``|I_u| = |I_v|`` -- the merge-sort tree stays balanced,

with ``Q_w = Q_u ∩ Q_v`` and ``I_w = I_u ∪ I_v``.  The expected savings
of creating ``w`` is ``|I_w| * E[occurring phrases of Q_w beyond the
first]`` (:func:`repro.sharedsort.cost.expected_savings_of_merge`).

One refinement makes the DAG semantics precise: a node may acquire
several parents (it is a shareable stream), but for any single phrase
``q`` the maximal nodes carrying ``q`` must partition ``I_q`` -- so each
merge *consumes* the shared phrases from its operands.  We track each
node's *available* phrase set (its ``Q`` minus phrases claimed by earlier
parents) and intersect availabilities when merging.

Greedy merging stops when no pair offers positive savings; what remains
per phrase -- merging that phrase's maximal nodes into a single sorted
stream -- is per-phrase assembly work performed by
:meth:`SharedSortPlan.instantiate`, counted in the cost model with that
phrase's rate alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidPlanError, PlanConstructionError
from repro.instrument import NULL, Collector
from repro.sharedsort.cost import (
    expected_full_sort_cost,
    expected_savings_of_merge,
)
from repro.sharedsort.operators import LeafSource, MergeOperator, SortStream

__all__ = ["SortPlanNode", "SharedSortPlan", "build_shared_sort_plan", "LiveSharedSort"]


@dataclass(frozen=True)
class SortPlanNode:
    """A node of the shared merge-sort plan.

    Attributes:
        node_id: Dense id within the plan.
        advertisers: ``I_v`` -- advertiser ids below the node.
        phrases: ``Q_v`` -- phrases whose merge-sort tree the node is part
            of (for internal nodes this is the intersection assigned at
            creation; for leaves, all phrases mentioning the advertiser).
        left: Child node id, or ``None`` for a leaf.
        right: Child node id, or ``None`` for a leaf.
    """

    node_id: int
    advertisers: FrozenSet[int]
    phrases: FrozenSet[str]
    left: Optional[int] = None
    right: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a single-advertiser leaf."""
        return self.left is None


class SharedSortPlan:
    """A built shared merge-sort plan over a set of bid phrases.

    Attributes:
        phrase_advertisers: ``{phrase: I_q}``.
        search_rates: ``{phrase: sr_q}``.
        nodes: All plan nodes, children before parents.
        phrase_roots: For each phrase, the ids of its maximal nodes (the
            runs that per-phrase assembly merges), largest first.
    """

    def __init__(
        self,
        phrase_advertisers: Mapping[str, FrozenSet[int]],
        search_rates: Mapping[str, float],
        nodes: Sequence[SortPlanNode],
        phrase_roots: Mapping[str, Sequence[int]],
    ) -> None:
        self.phrase_advertisers = dict(phrase_advertisers)
        self.search_rates = dict(search_rates)
        self.nodes = tuple(nodes)
        self.phrase_roots = {k: tuple(v) for k, v in phrase_roots.items()}
        self._validate()

    def _validate(self) -> None:
        for phrase, roots in self.phrase_roots.items():
            covered: set[int] = set()
            for node_id in roots:
                node = self.nodes[node_id]
                if phrase not in node.phrases:
                    raise InvalidPlanError(
                        f"node {node_id} is a root of {phrase!r} but does "
                        "not carry that phrase"
                    )
                if covered & node.advertisers:
                    raise InvalidPlanError(
                        f"roots of phrase {phrase!r} overlap on advertisers"
                    )
                covered |= node.advertisers
            if covered != set(self.phrase_advertisers[phrase]):
                raise InvalidPlanError(
                    f"roots of phrase {phrase!r} do not partition I_q"
                )

    def internal_nodes(self) -> List[SortPlanNode]:
        """The shared merge operators (non-leaf nodes)."""
        return [n for n in self.nodes if not n.is_leaf]

    def shared_expected_cost(self) -> float:
        """Expected full-sort cost of the shared operators only."""
        return expected_full_sort_cost(
            (
                len(node.advertisers),
                [self.search_rates[q] for q in node.phrases],
            )
            for node in self.internal_nodes()
        )

    def assembly_expected_cost(self) -> float:
        """Expected full-sort cost of the per-phrase assembly operators.

        The runs for phrase ``q`` are merged Huffman-style (two smallest
        first), which minimizes the sum of intermediate merge sizes; each
        assembly operator serves only ``q``.
        """
        total = 0.0
        for phrase, roots in self.phrase_roots.items():
            if len(roots) <= 1:
                continue
            sizes = [len(self.nodes[node_id].advertisers) for node_id in roots]
            rate = self.search_rates[phrase]
            total += rate * _huffman_merge_cost(sizes)
        return total

    def expected_cost(self) -> float:
        """Total expected full-sort cost: shared plus assembly."""
        return self.shared_expected_cost() + self.assembly_expected_cost()

    def instantiate(
        self, bids: Mapping[int, float], collector: Collector = NULL
    ) -> "LiveSharedSort":
        """Create the live operator network for one round's bids.

        Args:
            bids: ``{advertiser_id: b_i}`` covering every leaf.
            collector: Threaded into every operator; ``sort.node_pulls``
                is keyed by plan node id (assembly operators by
                ``("assembly", phrase, depth)``).
        """
        return LiveSharedSort(self, bids, collector)


class LiveSharedSort:
    """A shared-sort plan instantiated with concrete bids.

    Construct via :meth:`SharedSortPlan.instantiate`.  Streams are built
    lazily per phrase; shared operators are created once and reused by
    every phrase that touches them, so their caches carry work across
    phrases exactly as Section III-B describes.
    """

    def __init__(
        self,
        plan: SharedSortPlan,
        bids: Mapping[int, float],
        collector: Collector = NULL,
    ) -> None:
        self.plan = plan
        self._bids = dict(bids)
        self.collector = collector
        self._streams: Dict[int, SortStream] = {}
        self._phrase_streams: Dict[str, SortStream] = {}

    def _stream_for_node(self, node_id: int) -> SortStream:
        stream = self._streams.get(node_id)
        if stream is not None:
            return stream
        node = self.plan.nodes[node_id]
        if node.is_leaf:
            (advertiser_id,) = node.advertisers
            try:
                bid = self._bids[advertiser_id]
            except KeyError:
                raise InvalidPlanError(
                    f"no bid provided for advertiser {advertiser_id}"
                ) from None
            stream = LeafSource(
                bid, advertiser_id, self.collector, label=node_id
            )
        else:
            assert node.left is not None and node.right is not None
            stream = MergeOperator(
                self._stream_for_node(node.left),
                self._stream_for_node(node.right),
                self.collector,
                label=node_id,
            )
        self._streams[node_id] = stream
        return stream

    def stream_for_phrase(self, phrase: str) -> SortStream:
        """The descending-bid stream over ``I_q`` for one phrase."""
        cached = self._phrase_streams.get(phrase)
        if cached is not None:
            return cached
        try:
            roots = self.plan.phrase_roots[phrase]
        except KeyError:
            raise InvalidPlanError(f"unknown phrase {phrase!r}") from None
        # Huffman-style assembly: repeatedly merge the two smallest runs,
        # matching the cost model in assembly_expected_cost.
        runs = [self._stream_for_node(node_id) for node_id in roots]
        runs.sort(key=lambda s: len(getattr(s, "advertiser_ids", ())))
        depth = 0
        while len(runs) > 1:
            runs.sort(key=lambda s: len(getattr(s, "advertiser_ids", ())))
            merged = MergeOperator(
                runs[0],
                runs[1],
                self.collector,
                label=("assembly", phrase, depth),
            )
            depth += 1
            runs = [merged] + runs[2:]
        stream = runs[0]
        self._phrase_streams[phrase] = stream
        return stream

    def _all_streams(self) -> List[SortStream]:
        """Every distinct stream touched so far (plan nodes + assembly)."""
        seen: Dict[int, SortStream] = {}
        for stream in self._streams.values():
            seen[id(stream)] = stream
        stack = list(self._phrase_streams.values())
        while stack:
            stream = stack.pop()
            if id(stream) in seen:
                continue
            seen[id(stream)] = stream
            if isinstance(stream, MergeOperator):
                stack.extend([stream.left, stream.right])
        return list(seen.values())

    def total_pulls(self) -> int:
        """Items produced by merge *operators* so far.

        This is the quantity the full-sort cost model bounds: one unit
        per item an operator emits, shared operators counted once (their
        caches serve every phrase).  Leaf reads are reported separately
        by :meth:`leaf_reads` -- they are sequential accesses to the bid
        store, not merge work.
        """
        return sum(
            s.pulls
            for s in self._all_streams()
            if isinstance(s, MergeOperator)
        )

    def leaf_reads(self) -> int:
        """Distinct advertiser bids read from the store so far."""
        return sum(
            s.pulls for s in self._all_streams() if isinstance(s, LeafSource)
        )


def _huffman_merge_cost(sizes: Sequence[int]) -> int:
    """Sum of intermediate merge sizes when merging runs Huffman-style."""
    import heapq

    heap = list(sizes)
    heapq.heapify(heap)
    total = 0
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        total += a + b
        heapq.heappush(heap, a + b)
    return total


def build_shared_sort_plan(
    phrase_advertisers: Mapping[str, Sequence[int]],
    search_rates: Mapping[str, float] | float = 1.0,
) -> SharedSortPlan:
    """Greedy bottom-up construction of a shared merge-sort plan.

    Args:
        phrase_advertisers: ``{phrase: I_q}``.
        search_rates: Per-phrase rates, or one rate for all phrases.

    Returns:
        The built plan with per-phrase root lists.
    """
    if not phrase_advertisers:
        raise PlanConstructionError("need at least one phrase")
    interest: Dict[str, FrozenSet[int]] = {
        phrase: frozenset(int(a) for a in ads)
        for phrase, ads in phrase_advertisers.items()
    }
    for phrase, ads in interest.items():
        if not ads:
            raise PlanConstructionError(f"phrase {phrase!r} has no advertisers")
    if isinstance(search_rates, Mapping):
        rates = {phrase: float(search_rates.get(phrase, 1.0)) for phrase in interest}
    else:
        rates = {phrase: float(search_rates) for phrase in interest}

    nodes: List[SortPlanNode] = []
    available: Dict[int, FrozenSet[str]] = {}
    all_advertisers = sorted({a for ads in interest.values() for a in ads})
    for advertiser_id in all_advertisers:
        phrases = frozenset(
            phrase for phrase, ads in interest.items() if advertiser_id in ads
        )
        node = SortPlanNode(
            len(nodes), frozenset({advertiser_id}), phrases
        )
        nodes.append(node)
        available[node.node_id] = phrases

    while True:
        best: Optional[Tuple[float, int, int, FrozenSet[str]]] = None
        active = [nid for nid, avail in available.items() if avail]
        by_size: Dict[int, List[int]] = {}
        for nid in active:
            by_size.setdefault(len(nodes[nid].advertisers), []).append(nid)
        for size, group in by_size.items():
            group.sort()
            for index, u in enumerate(group):
                for v in group[index + 1 :]:
                    shared = available[u] & available[v]
                    if not shared:
                        continue
                    if nodes[u].advertisers & nodes[v].advertisers:
                        continue
                    saving = expected_savings_of_merge(
                        2 * size, [rates[q] for q in sorted(shared)]
                    )
                    key = (saving, -u, -v)
                    if best is None or key > (best[0], -best[1], -best[2]):
                        best = (saving, u, v, shared)
        if best is None or best[0] <= 0.0:
            break
        _, u, v, shared = best
        node = SortPlanNode(
            len(nodes),
            nodes[u].advertisers | nodes[v].advertisers,
            shared,
            left=u,
            right=v,
        )
        nodes.append(node)
        available[node.node_id] = shared
        available[u] = available[u] - shared
        available[v] = available[v] - shared

    # Per-phrase roots: maximal nodes carrying the phrase.  A node carries
    # phrase q for assembly purposes iff q was in its availability at some
    # point and was not consumed by a parent -- i.e. q remains in
    # `available[node]` now.
    phrase_roots: Dict[str, List[int]] = {phrase: [] for phrase in interest}
    for node_id, avail in available.items():
        for phrase in avail:
            phrase_roots[phrase].append(node_id)
    for phrase in phrase_roots:
        phrase_roots[phrase].sort(
            key=lambda nid: (-len(nodes[nid].advertisers), nid)
        )

    # Node.phrases for internal nodes is the consumed intersection; for
    # root listing we used availability, which together cover Q_v.
    return SharedSortPlan(interest, rates, nodes, phrase_roots)
