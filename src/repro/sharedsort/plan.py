"""Shared merge-sort plans and the greedy bottom-up builder.

Section III-C: start from one leaf per advertiser and successively merge
the pair of nodes with the largest expected savings, where nodes ``u``
and ``v`` may merge into ``w`` only if

- ``Q_u ∩ Q_v ≠ ∅`` -- some phrase benefits from the merged run,
- ``I_u ∩ I_v = ∅`` -- merge-sort runs must be disjoint, and
- ``|I_u| = |I_v|`` -- the merge-sort tree stays balanced,

with ``Q_w = Q_u ∩ Q_v`` and ``I_w = I_u ∪ I_v``.  The expected savings
of creating ``w`` is ``|I_w| * E[occurring phrases of Q_w beyond the
first]`` (:func:`repro.sharedsort.cost.expected_savings_of_merge`).

One refinement makes the DAG semantics precise: a node may acquire
several parents (it is a shareable stream), but for any single phrase
``q`` the maximal nodes carrying ``q`` must partition ``I_q`` -- so each
merge *consumes* the shared phrases from its operands.  We track each
node's *available* phrase set (its ``Q`` minus phrases claimed by earlier
parents) and intersect availabilities when merging.

Greedy merging stops when no pair offers positive savings; what remains
per phrase -- merging that phrase's maximal nodes into a single sorted
stream -- is per-phrase assembly work performed by
:meth:`SharedSortPlan.instantiate`, counted in the cost model with that
phrase's rate alone.

Two interchangeable engines drive the merge loop.  ``planner="naive"``
is the paper's literal procedure: every round, rescan every same-size
node pair and recompute its expected savings -- O(rounds * n^2) savings
evaluations.  ``planner="lazy"`` (the default) keeps a versioned
max-heap of candidate pairs over interned phrase bitmasks
(:class:`repro.plans.varsets.VarSetInterner`): a pair's savings can only
*shrink* (merges consume availability, and ``E[max(0, N-1)]`` is
monotone in the phrase set), so a heap entry is always an upper bound on
the pair's current savings, and only entries whose operands changed
since they were pushed are rescored -- exactly, with the same
``(saving, -u, -v)`` tie-break, so both engines build **byte-identical**
plans and only the work counters differ.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidPlanError, PlanConstructionError
from repro.instrument import NULL, Collector, names as metric_names
from repro.plans.varsets import VarSetInterner, iter_bit_ids
from repro.sharedsort.cost import (
    expected_full_sort_cost,
    expected_savings_of_merge,
)
from repro.sharedsort.operators import LeafSource, MergeOperator, SortStream

__all__ = [
    "SortPlanNode",
    "SharedSortPlan",
    "SortBuilderStats",
    "build_shared_sort_plan",
    "LiveSharedSort",
]


@dataclass(frozen=True)
class SortPlanNode:
    """A node of the shared merge-sort plan.

    Attributes:
        node_id: Dense id within the plan.
        advertisers: ``I_v`` -- advertiser ids below the node.
        phrases: ``Q_v`` -- phrases whose merge-sort tree the node is part
            of (for internal nodes this is the intersection assigned at
            creation; for leaves, all phrases mentioning the advertiser).
        left: Child node id, or ``None`` for a leaf.
        right: Child node id, or ``None`` for a leaf.
    """

    node_id: int
    advertisers: FrozenSet[int]
    phrases: FrozenSet[str]
    left: Optional[int] = None
    right: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a single-advertiser leaf."""
        return self.left is None


class SharedSortPlan:
    """A built shared merge-sort plan over a set of bid phrases.

    Attributes:
        phrase_advertisers: ``{phrase: I_q}``.
        search_rates: ``{phrase: sr_q}``.
        nodes: All plan nodes, children before parents.
        phrase_roots: For each phrase, the ids of its maximal nodes (the
            runs that per-phrase assembly merges), largest first.
    """

    def __init__(
        self,
        phrase_advertisers: Mapping[str, FrozenSet[int]],
        search_rates: Mapping[str, float],
        nodes: Sequence[SortPlanNode],
        phrase_roots: Mapping[str, Sequence[int]],
    ) -> None:
        self.phrase_advertisers = dict(phrase_advertisers)
        self.search_rates = dict(search_rates)
        self.nodes = tuple(nodes)
        self.phrase_roots = {k: tuple(v) for k, v in phrase_roots.items()}
        self._validate()

    def _validate(self) -> None:
        for phrase, roots in self.phrase_roots.items():
            covered: set[int] = set()
            for node_id in roots:
                node = self.nodes[node_id]
                if phrase not in node.phrases:
                    raise InvalidPlanError(
                        f"node {node_id} is a root of {phrase!r} but does "
                        "not carry that phrase"
                    )
                if covered & node.advertisers:
                    raise InvalidPlanError(
                        f"roots of phrase {phrase!r} overlap on advertisers"
                    )
                covered |= node.advertisers
            if covered != set(self.phrase_advertisers[phrase]):
                raise InvalidPlanError(
                    f"roots of phrase {phrase!r} do not partition I_q"
                )

    def internal_nodes(self) -> List[SortPlanNode]:
        """The shared merge operators (non-leaf nodes)."""
        return [n for n in self.nodes if not n.is_leaf]

    def node_for_advertisers(self, advertisers: FrozenSet[int]) -> Optional[int]:
        """The id of a node over exactly ``advertisers``, or ``None``.

        A sort stream's output is fully determined by the bids of the
        advertisers below it, so after a structural rebind a stream from
        an old plan remains valid for any new node with the same
        advertiser set -- this lookup is how
        :meth:`repro.sharedsort.cache.CrossRoundSortCache.rebind`
        carries streams across plans.  When several nodes share an
        advertiser set (duplicated structure), any of them is a correct
        answer; the last in plan order wins.
        """
        index = self.__dict__.get("_by_advertisers")
        if index is None:
            index = {node.advertisers: node.node_id for node in self.nodes}
            self._by_advertisers = index
        return index.get(frozenset(advertisers))

    def shared_expected_cost(self) -> float:
        """Expected full-sort cost of the shared operators only."""
        return expected_full_sort_cost(
            (
                len(node.advertisers),
                [self.search_rates[q] for q in node.phrases],
            )
            for node in self.internal_nodes()
        )

    def assembly_expected_cost(self) -> float:
        """Expected full-sort cost of the per-phrase assembly operators.

        The runs for phrase ``q`` are merged Huffman-style (two smallest
        first), which minimizes the sum of intermediate merge sizes; each
        assembly operator serves only ``q``.
        """
        total = 0.0
        for phrase, roots in self.phrase_roots.items():
            if len(roots) <= 1:
                continue
            sizes = [len(self.nodes[node_id].advertisers) for node_id in roots]
            rate = self.search_rates[phrase]
            total += rate * _huffman_merge_cost(sizes)
        return total

    def expected_cost(self) -> float:
        """Total expected full-sort cost: shared plus assembly."""
        return self.shared_expected_cost() + self.assembly_expected_cost()

    def instantiate(
        self, bids: Mapping[int, float], collector: Collector = NULL
    ) -> "LiveSharedSort":
        """Create the live operator network for one round's bids.

        Args:
            bids: ``{advertiser_id: b_i}`` covering every leaf.
            collector: Threaded into every operator; ``sort.node_pulls``
                is keyed by plan node id (assembly operators by
                ``("assembly", phrase, depth)``).
        """
        return LiveSharedSort(self, bids, collector)


class LiveSharedSort:
    """A shared-sort plan instantiated with concrete bids.

    Construct via :meth:`SharedSortPlan.instantiate`.  Streams are built
    lazily per phrase; shared operators are created once and reused by
    every phrase that touches them, so their caches carry work across
    phrases exactly as Section III-B describes.
    """

    def __init__(
        self,
        plan: SharedSortPlan,
        bids: Mapping[int, float],
        collector: Collector = NULL,
    ) -> None:
        self.plan = plan
        self._bids = dict(bids)
        self.collector = collector
        self._streams: Dict[int, SortStream] = {}
        self._phrase_streams: Dict[str, SortStream] = {}
        # Pull/read totals carried by streams adopted from a previous
        # round (cross-round reuse); ``round_pulls`` subtracts them so
        # per-round work stays comparable with a fresh instantiation.
        self._base_pulls = 0
        self._base_leaf_reads = 0

    def _stream_for_node(self, node_id: int) -> SortStream:
        stream = self._streams.get(node_id)
        if stream is not None:
            return stream
        node = self.plan.nodes[node_id]
        if node.is_leaf:
            (advertiser_id,) = node.advertisers
            try:
                bid = self._bids[advertiser_id]
            except KeyError:
                raise InvalidPlanError(
                    f"no bid provided for advertiser {advertiser_id}"
                ) from None
            stream = LeafSource(
                bid, advertiser_id, self.collector, label=node_id
            )
        else:
            assert node.left is not None and node.right is not None
            stream = MergeOperator(
                self._stream_for_node(node.left),
                self._stream_for_node(node.right),
                self.collector,
                label=node_id,
            )
        self._streams[node_id] = stream
        return stream

    def stream_for_phrase(self, phrase: str) -> SortStream:
        """The descending-bid stream over ``I_q`` for one phrase."""
        cached = self._phrase_streams.get(phrase)
        if cached is not None:
            return cached
        try:
            roots = self.plan.phrase_roots[phrase]
        except KeyError:
            raise InvalidPlanError(f"unknown phrase {phrase!r}") from None
        # Huffman-style assembly: repeatedly merge the two smallest runs,
        # matching the cost model in assembly_expected_cost.  The sort
        # *must* run at the top of every iteration (a merged run can be
        # smaller than a remaining one, so the order is re-established
        # each step); sorting once more before the loop would be pure
        # waste -- the first iteration re-sorts on entry.
        runs = [self._stream_for_node(node_id) for node_id in roots]
        depth = 0
        while len(runs) > 1:
            runs.sort(key=lambda s: len(getattr(s, "advertiser_ids", ())))
            merged = MergeOperator(
                runs[0],
                runs[1],
                self.collector,
                label=("assembly", phrase, depth),
            )
            depth += 1
            runs = [merged] + runs[2:]
        stream = runs[0]
        self._phrase_streams[phrase] = stream
        return stream

    def _all_streams(self) -> List[SortStream]:
        """Every distinct stream touched so far (plan nodes + assembly)."""
        seen: Dict[int, SortStream] = {}
        for stream in self._streams.values():
            seen[id(stream)] = stream
        stack = list(self._phrase_streams.values())
        while stack:
            stream = stack.pop()
            if id(stream) in seen:
                continue
            seen[id(stream)] = stream
            if isinstance(stream, MergeOperator):
                stack.extend([stream.left, stream.right])
        return list(seen.values())

    def total_pulls(self) -> int:
        """Items produced by merge *operators* so far.

        This is the quantity the full-sort cost model bounds: one unit
        per item an operator emits, shared operators counted once (their
        caches serve every phrase).  Leaf reads are reported separately
        by :meth:`leaf_reads` -- they are sequential accesses to the bid
        store, not merge work.
        """
        return sum(
            s.pulls
            for s in self._all_streams()
            if isinstance(s, MergeOperator)
        )

    def leaf_reads(self) -> int:
        """Distinct advertiser bids read from the store so far."""
        return sum(
            s.pulls for s in self._all_streams() if isinstance(s, LeafSource)
        )

    def round_pulls(self) -> int:
        """Operator pulls performed *through this live instance*.

        Equal to :meth:`total_pulls` for a fresh instantiation; under
        cross-round reuse the pulls adopted streams performed in earlier
        rounds are subtracted, so the engine's per-round merge counter
        stays a per-round quantity.
        """
        return self.total_pulls() - self._base_pulls

    def round_leaf_reads(self) -> int:
        """Leaf reads performed through this live instance (see
        :meth:`round_pulls`)."""
        return self.leaf_reads() - self._base_leaf_reads

    def _adopt(
        self,
        streams: Mapping[int, SortStream],
        phrase_streams: Mapping[str, SortStream],
    ) -> None:
        """Seed this instance with streams reused from a previous round.

        Called by :class:`repro.sharedsort.cache.CrossRoundSortCache`
        before the round runs.  The adopted streams' lifetime pulls are
        recorded as a baseline so the ``round_*`` accessors report only
        work performed from this round on.
        """
        self._streams.update(streams)
        self._phrase_streams.update(phrase_streams)
        base_pulls = 0
        base_leaf_reads = 0
        for stream in self._all_streams():
            if isinstance(stream, MergeOperator):
                base_pulls += stream.pulls
            elif isinstance(stream, LeafSource):
                base_leaf_reads += stream.pulls
        self._base_pulls = base_pulls
        self._base_leaf_reads = base_leaf_reads


def _huffman_merge_cost(sizes: Sequence[int]) -> int:
    """Sum of intermediate merge sizes when merging runs Huffman-style."""
    import heapq

    heap = list(sizes)
    heapq.heapify(heap)
    total = 0
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        total += a + b
        heapq.heappush(heap, a + b)
    return total


class SortBuilderStats:
    """Counters describing one shared-sort-plan build (for tests/benches).

    Attributes:
        merges: Shared merge nodes created.
        pairs_enumerated: Candidate pairs visited (before validity
            filtering) -- every same-size pair every merge round under
            ``planner="naive"``, only touched pairs under ``"lazy"``.
        savings_evaluated: :func:`expected_savings_of_merge` computations
            actually performed.  The naive engine recomputes every valid
            pair every round; the lazy engine evaluates only pushed or
            rescored pairs, so the ratio of the two is the tentpole's
            work reduction.
        savings_memo_hits: Lazy only: savings requests served from the
            per-``(size, phrase-mask)`` memo instead of recomputing.
        heap_pushes: Lazy only: entries pushed onto the pair heap.
        stale_rescored: Lazy only: popped entries whose operands had
            changed since the push (exact rescore, then re-push or drop).
    """

    def __init__(self) -> None:
        self.merges = 0
        self.pairs_enumerated = 0
        self.savings_evaluated = 0
        self.savings_memo_hits = 0
        self.heap_pushes = 0
        self.stale_rescored = 0

    def __repr__(self) -> str:
        return (
            f"SortBuilderStats(merges={self.merges}, "
            f"pairs_enumerated={self.pairs_enumerated}, "
            f"savings_evaluated={self.savings_evaluated}, "
            f"savings_memo_hits={self.savings_memo_hits}, "
            f"heap_pushes={self.heap_pushes}, "
            f"stale_rescored={self.stale_rescored})"
        )


def build_shared_sort_plan(
    phrase_advertisers: Mapping[str, Sequence[int]],
    search_rates: Mapping[str, float] | float = 1.0,
    planner: str = "lazy",
    stats: Optional[SortBuilderStats] = None,
    collector: Collector = NULL,
) -> SharedSortPlan:
    """Greedy bottom-up construction of a shared merge-sort plan.

    Args:
        phrase_advertisers: ``{phrase: I_q}``.
        search_rates: Per-phrase rates, or one rate for all phrases.
        planner: ``"lazy"`` (default) completes the merge loop with the
            versioned pair heap over interned phrase bitmasks; ``"naive"``
            is the paper's literal full rescan, kept as the differential
            oracle.  Both build byte-identical plans.
        stats: Optional :class:`SortBuilderStats` to fill in.
        collector: Receives ``sort.pairs_scored`` /
            ``sort.savings_memo_hits`` once per build.

    Returns:
        The built plan with per-phrase root lists.

    Raises:
        PlanConstructionError: On an empty instance or unknown planner.
    """
    if planner not in ("naive", "lazy"):
        raise PlanConstructionError(f"unknown sort planner {planner!r}")
    if not phrase_advertisers:
        raise PlanConstructionError("need at least one phrase")
    interest: Dict[str, FrozenSet[int]] = {
        phrase: frozenset(int(a) for a in ads)
        for phrase, ads in phrase_advertisers.items()
    }
    for phrase, ads in interest.items():
        if not ads:
            raise PlanConstructionError(f"phrase {phrase!r} has no advertisers")
    if isinstance(search_rates, Mapping):
        rates = {phrase: float(search_rates.get(phrase, 1.0)) for phrase in interest}
    else:
        rates = {phrase: float(search_rates) for phrase in interest}
    if stats is None:
        stats = SortBuilderStats()

    nodes: List[SortPlanNode] = []
    available: Dict[int, FrozenSet[str]] = {}
    all_advertisers = sorted({a for ads in interest.values() for a in ads})
    for advertiser_id in all_advertisers:
        phrases = frozenset(
            phrase for phrase, ads in interest.items() if advertiser_id in ads
        )
        node = SortPlanNode(
            len(nodes), frozenset({advertiser_id}), phrases
        )
        nodes.append(node)
        available[node.node_id] = phrases

    if planner == "naive":
        _complete_naive(nodes, available, rates, stats)
    else:
        _complete_lazy(nodes, available, rates, stats)
    collector.incr(metric_names.SORT_PAIRS_SCORED, stats.savings_evaluated)
    collector.incr(
        metric_names.SORT_SAVINGS_MEMO_HITS, stats.savings_memo_hits
    )

    # Per-phrase roots: maximal nodes carrying the phrase.  A node carries
    # phrase q for assembly purposes iff q was in its availability at some
    # point and was not consumed by a parent -- i.e. q remains in
    # `available[node]` now.
    phrase_roots: Dict[str, List[int]] = {phrase: [] for phrase in interest}
    for node_id, avail in available.items():
        for phrase in avail:
            phrase_roots[phrase].append(node_id)
    for phrase in phrase_roots:
        phrase_roots[phrase].sort(
            key=lambda nid: (-len(nodes[nid].advertisers), nid)
        )

    # Node.phrases for internal nodes is the consumed intersection; for
    # root listing we used availability, which together cover Q_v.
    return SharedSortPlan(interest, rates, nodes, phrase_roots)


def _complete_naive(
    nodes: List[SortPlanNode],
    available: Dict[int, FrozenSet[str]],
    rates: Dict[str, float],
    stats: SortBuilderStats,
) -> None:
    """The paper's literal merge loop: full same-size rescan per round."""
    while True:
        best: Optional[Tuple[float, int, int, FrozenSet[str]]] = None
        active = [nid for nid, avail in available.items() if avail]
        by_size: Dict[int, List[int]] = {}
        for nid in active:
            by_size.setdefault(len(nodes[nid].advertisers), []).append(nid)
        for size, group in by_size.items():
            group.sort()
            for index, u in enumerate(group):
                for v in group[index + 1 :]:
                    stats.pairs_enumerated += 1
                    shared = available[u] & available[v]
                    if not shared:
                        continue
                    if nodes[u].advertisers & nodes[v].advertisers:
                        continue
                    stats.savings_evaluated += 1
                    saving = expected_savings_of_merge(
                        2 * size, [rates[q] for q in sorted(shared)]
                    )
                    key = (saving, -u, -v)
                    if best is None or key > (best[0], -best[1], -best[2]):
                        best = (saving, u, v, shared)
        if best is None or best[0] <= 0.0:
            break
        _, u, v, shared = best
        node = SortPlanNode(
            len(nodes),
            nodes[u].advertisers | nodes[v].advertisers,
            shared,
            left=u,
            right=v,
        )
        nodes.append(node)
        stats.merges += 1
        available[node.node_id] = shared
        available[u] = available[u] - shared
        available[v] = available[v] - shared


def _complete_lazy(
    nodes: List[SortPlanNode],
    available: Dict[int, FrozenSet[str]],
    rates: Dict[str, float],
    stats: SortBuilderStats,
) -> None:
    """Lazy merge loop: versioned pair heap over interned phrase masks.

    Exactness argument (mirrors the CELF-style planner of
    ``repro.plans.greedy_planner``, but with a *stronger* staleness
    guarantee): a pair's expected savings depends only on the operand
    sizes (fixed) and the intersection of their availabilities, and a
    merge only ever *removes* phrases from availability, so

    - an entry whose operand versions still match was pushed with the
      pair's exact current savings, and
    - an entry whose operand changed carries an **upper bound** on the
      current savings (``E[max(0, N-1)]`` is monotone in the phrase
      set), so the true maximum can never hide below the heap top.

    Popping therefore yields the exact global argmax under the same
    ``(saving, -u, -v)`` order the naive rescan maximizes: stale entries
    are rescored exactly and re-pushed (or dropped when the pair lost
    its shared phrases), and the first *current* entry to surface wins.
    Savings are computed from rates visited in ascending interned-id
    order, which ``key=str`` interning makes exactly ``sorted(shared)``
    -- the naive engine's float summation order -- so plans are
    byte-identical, not merely equivalent.
    """
    interner = VarSetInterner(rates, key=str)
    rate_of_id = [rates[phrase] for phrase in interner.variables]
    avail_mask: Dict[int, int] = {
        nid: interner.mask_of(avail) for nid, avail in available.items()
    }
    # Advertiser sets as private bitmasks (ids are opaque; only
    # disjointness is ever asked).
    adv_bit: Dict[int, int] = {}
    adv_mask: Dict[int, int] = {}
    for nid, node in enumerate(nodes):
        mask = 0
        for advertiser in node.advertisers:
            bit = adv_bit.get(advertiser)
            if bit is None:
                bit = adv_bit[advertiser] = 1 << len(adv_bit)
            mask |= bit
        adv_mask[nid] = mask
    version: Dict[int, int] = {nid: 0 for nid in avail_mask}

    savings_memo: Dict[Tuple[int, int], float] = {}

    def saving_of(size: int, shared_mask: int) -> float:
        key = (size, shared_mask)
        cached = savings_memo.get(key)
        if cached is not None:
            stats.savings_memo_hits += 1
            return cached
        stats.savings_evaluated += 1
        value = expected_savings_of_merge(
            2 * size, [rate_of_id[i] for i in iter_bit_ids(shared_mask)]
        )
        savings_memo[key] = value
        return value

    # Heap entries: (-saving, u, v, version_u, version_v); heapq's min
    # order realizes the naive max order (max saving, then min u, min v).
    heap: List[Tuple[float, int, int, int, int]] = []

    def push_pair(u: int, v: int, size: int) -> None:
        stats.pairs_enumerated += 1
        shared_mask = avail_mask[u] & avail_mask[v]
        if not shared_mask:
            return
        if adv_mask[u] & adv_mask[v]:
            return
        saving = saving_of(size, shared_mask)
        if saving <= 0.0:
            return
        heapq.heappush(heap, (-saving, u, v, version[u], version[v]))
        stats.heap_pushes += 1

    by_size: Dict[int, List[int]] = {}
    for nid in sorted(avail_mask):
        if avail_mask[nid]:
            by_size.setdefault(len(nodes[nid].advertisers), []).append(nid)
    for size in sorted(by_size):
        group = by_size[size]
        for index, u in enumerate(group):
            for v in group[index + 1 :]:
                push_pair(u, v, size)

    while heap:
        neg_saving, u, v, ver_u, ver_v = heapq.heappop(heap)
        if version[u] != ver_u or version[v] != ver_v:
            # Operand availability changed since the push: the entry is
            # a stale upper bound.  Rescore exactly and requeue.
            stats.stale_rescored += 1
            shared_mask = avail_mask[u] & avail_mask[v]
            if shared_mask:
                saving = saving_of(len(nodes[u].advertisers), shared_mask)
                if saving > 0.0:
                    heapq.heappush(
                        heap, (-saving, u, v, version[u], version[v])
                    )
                    stats.heap_pushes += 1
            continue
        # Current entry == exact global max: perform the merge.
        size = len(nodes[u].advertisers)
        shared_mask = avail_mask[u] & avail_mask[v]
        shared = interner.frozenset_of(shared_mask)
        w = len(nodes)
        node = SortPlanNode(
            w,
            nodes[u].advertisers | nodes[v].advertisers,
            shared,
            left=u,
            right=v,
        )
        nodes.append(node)
        stats.merges += 1
        avail_mask[w] = shared_mask
        adv_mask[w] = adv_mask[u] | adv_mask[v]
        version[w] = 0
        avail_mask[u] &= ~shared_mask
        avail_mask[v] &= ~shared_mask
        version[u] += 1
        version[v] += 1
        # Only pairs touching the new node need fresh scores; pairs
        # touching u or v are rescored lazily when they surface.
        new_size = 2 * size
        bucket = by_size.setdefault(new_size, [])
        for x in bucket:
            if avail_mask[x]:
                push_pair(x, w, new_size)
        bucket.append(w)

    for nid in range(len(nodes)):
        available[nid] = interner.frozenset_of(avail_mask[nid])
