"""Cost model for shared merge-sort plans (Section III-B/C).

The worst case for an on-demand merge operator ``v`` is that the
threshold condition is never met and the whole subtree is drained:
``|I_v|`` invocations.  The paper conservatively evaluates shared plans
by this full-sort cost.  With phrase occurrences independent Bernoulli
trials, the expected full-sort cost of operator ``v`` is
``|I_v| * (1 - prod_{q : v ⇝ q} (1 - sr_q))`` and a plan's expected cost
sums that over operators.

:func:`expected_savings_of_merge` implements the paper's greedy merge
criterion: creating a shared node ``w`` with phrase set ``Q_w`` saves the
re-sorting of ``|I_w|`` items for every occurring phrase in ``Q_w``
beyond the first, i.e. ``|I_w| * E[max(0, occurrences - 1)]``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "expected_full_sort_cost",
    "expected_savings_of_merge",
    "expected_occurrences_beyond_first",
    "independent_sort_cost",
]


def expected_occurrences_beyond_first(search_rates: Sequence[float]) -> float:
    """``E[max(0, N - 1)]`` where ``N`` counts occurring phrases.

    The paper writes this as
    ``sum_i [ prod_{j<i} (1 - sr_j) * sr_i * sum_{j>i} sr_j ]`` -- the
    first occurring phrase is phrase ``i`` (all before it absent), and
    every later phrase contributes its probability in expectation.  That
    expression equals ``E[N] - Pr[N >= 1]``; both forms are implemented
    and property-tested against each other.
    """
    total = 0.0
    prefix_absent = 1.0
    suffix_sums = [0.0] * (len(search_rates) + 1)
    for index in range(len(search_rates) - 1, -1, -1):
        suffix_sums[index] = suffix_sums[index + 1] + search_rates[index]
    for index, rate in enumerate(search_rates):
        total += prefix_absent * rate * suffix_sums[index + 1]
        prefix_absent *= 1.0 - rate
    return total


def expected_occurrences_beyond_first_closed_form(
    search_rates: Sequence[float],
) -> float:
    """``E[N] - (1 - prod(1 - sr))`` -- the simplified equivalent form."""
    expected = sum(search_rates)
    any_occurs = 1.0 - _survival(search_rates)
    return expected - any_occurs


def _survival(search_rates: Iterable[float]) -> float:
    survival = 1.0
    for rate in search_rates:
        survival *= 1.0 - rate
    return survival


def expected_savings_of_merge(
    subtree_size: int, shared_search_rates: Sequence[float]
) -> float:
    """Expected saving from sharing a merge node across phrases.

    Args:
        subtree_size: ``|I_w|`` -- advertisers below the new node.
        shared_search_rates: Search rates of the phrases in ``Q_w``.
    """
    return subtree_size * expected_occurrences_beyond_first(shared_search_rates)


def expected_full_sort_cost(
    operator_sizes_and_rates: Iterable[tuple[int, Sequence[float]]],
) -> float:
    """Expected full-sort cost of a plan.

    Args:
        operator_sizes_and_rates: Per operator ``v``, the pair
            ``(|I_v|, [sr_q for q with v ⇝ q])``.
    """
    return sum(
        size * (1.0 - _survival(rates))
        for size, rates in operator_sizes_and_rates
    )


def independent_sort_cost(
    phrase_sizes: Mapping[str, int], search_rates: Mapping[str, float]
) -> float:
    """Expected cost of sorting each phrase independently (no sharing).

    A balanced merge-sort of ``n`` items uses operators whose sizes sum
    to roughly ``n * ceil(log2 n)``; we compute the exact sum for the
    balanced tree this library builds (sizes of all internal subtrees).
    Each phrase's whole tree is used only when the phrase occurs.
    """
    total = 0.0
    for name, size in phrase_sizes.items():
        total += search_rates[name] * _balanced_tree_operator_sum(size)
    return total


def _balanced_tree_operator_sum(n: int) -> int:
    """Sum of subtree sizes over internal nodes of a balanced merge tree."""
    if n <= 1:
        return 0
    left = n // 2
    right = n - left
    return n + _balanced_tree_operator_sum(left) + _balanced_tree_operator_sum(right)
