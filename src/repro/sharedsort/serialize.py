"""Canonical serialization of shared merge-sort plans.

The naive/lazy builder identity guarantee is stated over *serialized*
plans: two plans are the same iff their canonical forms are equal, byte
for byte.  The canonical form orders every set ascending and writes
floats with ``repr`` (round-trippable shortest form), so equality here
is strictly stronger than structural equivalence -- it pins node ids,
children, root order, and the exact float savings-driven topology.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.sharedsort.plan import SharedSortPlan

__all__ = ["plan_to_dict", "serialize_plan"]


def plan_to_dict(plan: SharedSortPlan) -> Dict[str, Any]:
    """A JSON-ready dict capturing the plan exactly.

    Keys are emitted in sorted order by :func:`serialize_plan`; sets are
    listed ascending so the dict itself is canonical.
    """
    nodes: List[Dict[str, Any]] = []
    for node in plan.nodes:
        nodes.append(
            {
                "id": node.node_id,
                "advertisers": sorted(node.advertisers),
                "phrases": sorted(node.phrases),
                "left": node.left,
                "right": node.right,
            }
        )
    return {
        "phrase_advertisers": {
            phrase: sorted(ads)
            for phrase, ads in sorted(plan.phrase_advertisers.items())
        },
        "search_rates": {
            phrase: repr(rate)
            for phrase, rate in sorted(plan.search_rates.items())
        },
        "nodes": nodes,
        "phrase_roots": {
            phrase: list(roots)
            for phrase, roots in sorted(plan.phrase_roots.items())
        },
    }


def serialize_plan(plan: SharedSortPlan) -> str:
    """The canonical byte form (JSON, sorted keys, no whitespace)."""
    return json.dumps(
        plan_to_dict(plan), sort_keys=True, separators=(",", ":")
    )
