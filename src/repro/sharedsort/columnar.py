"""Columnar threshold-algorithm kernel over presorted column indices.

The object-path Section III pipeline instantiates a shared merge-sort
network of descending-bid streams and runs the threshold algorithm per
phrase, pulling items one batch at a time through Python operator
objects.  With the population in a
:class:`repro.core.columnar.ColumnarStore`, both sorted lists TA needs
are *index arrays*:

- the **bid list** is one shared ``np.lexsort`` over the round's
  occurring rows (descending effective bid, ties by ascending id),
  computed once per round and filtered per phrase by the membership
  mask -- the columnar analogue of the shared sort network: every
  phrase reads the same presorted column;
- the **CTR list** is the store's cached
  :meth:`~repro.core.columnar.ColumnarStore.phrase_ctr_rank_rows`
  (descending ``c_i^q``, ties by ascending id) -- CTR factors change
  rarely, so the presort amortizes across rounds exactly like the
  engine's object-path ``_ctr_orders``.

:meth:`ColumnarThresholdKernel.rank_phrase` then runs TA with
geometrically doubling sorted-access depth: read a prefix of both
lists, resolve the union's scores by (vectorized) random access, and
stop once the running k-th best *strictly* exceeds the threshold
``last_bid * last_ctr``.  The strict stop makes the result provably the
exact top-k with the full ``(-score, advertiser_id)`` tie-break: any
unseen row's score is at most the threshold, hence strictly below every
retained entry, so no tie against an unseen row can exist.  Outcomes
are byte-identical to the object path (which the layout differential
asserts); only the work counters -- ``ta.sorted_accesses`` et al. --
differ by strategy, exactly as they do between the batched and
item-at-a-time object engines.

Cross-round reuse (``sort_cache=True``) is :class:`ColumnarSortCache`:
instead of one full lexsort per round, the cache keeps the descending
``(-effective_bid, id)`` order alive across rounds as a *global* row
permutation covering every row ever scored, and repairs it
incrementally.  Per round it drains the change feed, refines the
declared advertisers to the rows whose effective bid actually moved
(with the same declared-vs-diffed ``verify=`` soundness cross-check as
:class:`repro.sharedsort.cache.CrossRoundSortCache`), removes the
dirty and first-sight rows from the cached order with one boolean
mask, and merge-inserts them at their ``searchsorted`` positions.
Because advertiser ids are distinct, ``(-bid, id)`` is a strict total
order, so the repaired permutation is *the* sorted permutation --
byte-identical to a fresh lexsort, hence to the uncached kernel and to
the object path.  A phrase's TA then filters the global order by its
membership mask; every member of a ranked phrase is an occurring
(freshly scored) row, so stale positions of non-occurring rows are
never read.  The CTR-side presort
(:meth:`~repro.core.columnar.ColumnarStore.phrase_ctr_rank_rows`)
already persists across rounds in the store.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.core.columnar import ColumnarStore, columnar_top_k, require_numpy
from repro.core.topk import TopKList
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names

try:  # pragma: no cover - numpy ships with the package
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["ColumnarSortCache", "ColumnarThresholdKernel"]


class ColumnarSortCache:
    """Cross-round incremental repair of the shared descending-bid order.

    The columnar counterpart of
    :class:`repro.sharedsort.cache.CrossRoundSortCache`, with the same
    interface contract -- :meth:`connect` to the engine's change feed,
    :attr:`pending_dirty`, declared-vs-diffed ``verify``, autotuner
    bypass -- but row-granular state: one cached permutation instead of
    a tree of live stream objects.  ``sort.streams_reused`` /
    ``sort.streams_invalidated`` count *rows* kept / re-ranked here
    (the object cache counts streams); either way the counters report
    how much of the round's sort the cache saved.

    Args:
        store: The columnar population (rows are positions in the
            cached permutation).
        collector: Receives ``sort.streams_reused`` (rows kept in
            place) and ``sort.streams_invalidated`` (rows re-ranked)
            per round.
        verify: Keep the exact effective-bid diff as a soundness
            cross-check on the change-feed events: an undeclared bid
            change raises ``InvalidPlanError``.  ``False`` trusts the
            feed and keeps undeclared rows' snapshots.
        autotuner: Optional duck-typed
            :class:`repro.engine.autotune.CacheAutotuner`; consulted
            per round for the bypass decision (a bypass round re-sorts
            from scratch) and fed the observed dirty fraction.  LRU
            sizing does not apply -- the permutation is bounded by the
            population.

    Attributes:
        rounds: Rounds absorbed.
        bypass_rounds: Rounds re-sorted fresh on autotuner advice.
        rows_reused: Cumulative rows kept in their cached positions.
        rows_repaired: Cumulative rows re-ranked into the order.
    """

    def __init__(
        self,
        store: ColumnarStore,
        collector: Collector = NULL,
        verify: bool = True,
        autotuner=None,
    ) -> None:
        require_numpy()
        self.store = store
        self.collector = collector
        self.verify = verify
        self.autotuner = autotuner
        self._subscription = None
        self._pending_dirty: Set[int] = set()
        self._order: Optional["np.ndarray"] = None
        self._last_eff = np.zeros(store.size, dtype=np.float64)
        self._seen = np.zeros(store.size, dtype=bool)
        self.rounds = 0
        self.bypass_rounds = 0
        self.rows_reused = 0
        self.rows_repaired = 0

    def connect(self, feed) -> None:
        """Subscribe to a change feed; bid dirtiness then arrives as
        events, drained once per :meth:`order_for_round`."""
        if self._subscription is not None:
            raise InvalidPlanError("sort cache is already connected to a feed")
        self._subscription = feed.subscribe(
            name="columnar-sort-cache",
            kinds=(
                "bid_changed",
                "budget_changed",
                "advertiser_added",
                "advertiser_removed",
            ),
        )

    @property
    def pending_dirty(self) -> frozenset:
        """Advertisers declared dirty by drained events and not yet
        absorbed by a round that scored them."""
        return frozenset(self._pending_dirty)

    def order_for_round(
        self,
        effective_by_row,
        rows,
        dirty: Optional[Iterable[int]] = None,
    ) -> Tuple["np.ndarray", int]:
        """Repair (or build) the shared order for one round.

        Args:
            effective_by_row: Full-length float64 effective bids in
                cents; the engine keeps non-occurring rows at their
                last-written values, which is what lets the global
                permutation stay valid for rows outside this round.
            rows: The round's occurring (freshly scored) row indices.
            dirty: Explicitly declared dirty advertiser ids; mutually
                exclusive with a connected feed.  ``None`` with no feed
                auto-diffs every scored row.

        Returns:
            ``(order, repaired)``: the global descending-bid row
            permutation (covering every row ever scored) and the number
            of rows re-ranked into it this round -- the cached round's
            sort work, which the engine reports where the uncached
            kernel reports the full materialization count.
        """
        self.rounds += 1
        store = self.store
        if self._subscription is not None:
            if dirty is not None:
                raise InvalidPlanError(
                    "dirty sets arrive via the change feed once connected; "
                    "do not also declare them by argument"
                )
            for event in self._subscription.drain():
                self._pending_dirty |= event.dirty_advertisers
            declared_ids: Optional[Set[int]] = set(self._pending_dirty)
        elif dirty is not None:
            declared_ids = set(dirty)
        else:
            declared_ids = None
        rows = np.asarray(rows, dtype=np.int64)
        sub = effective_by_row[rows]
        seen = self._seen[rows]
        changed = seen & (sub != self._last_eff[rows])
        if declared_ids is None:
            dirty_sub = ~seen | changed
        else:
            declared = np.zeros(store.size, dtype=bool)
            if declared_ids:
                present = sorted(
                    advertiser_id
                    for advertiser_id in declared_ids
                    if advertiser_id in store
                )
                if present:
                    declared[store.rows_of(present)] = True
            declared_sub = declared[rows]
            if self.verify:
                bad = changed & ~declared_sub
                if bad.any():
                    row = int(rows[int(np.flatnonzero(bad)[0])])
                    raise InvalidPlanError(
                        f"unsound change feed: bid of advertiser "
                        f"{int(store.ids[row])} changed "
                        f"({float(self._last_eff[row])} -> "
                        f"{float(effective_by_row[row])}) without a "
                        "covering event"
                    )
            dirty_sub = ~seen | (declared_sub & changed)
        dirty_rows = rows[dirty_sub]
        changed_count = int(len(dirty_rows))
        self._last_eff[dirty_rows] = effective_by_row[dirty_rows]
        self._seen[dirty_rows] = True

        autotuner = self.autotuner
        bypass = (
            self._order is not None
            and autotuner is not None
            and autotuner.should_bypass()
        )
        if self._order is None:
            # First round: nothing to repair, build from scratch (the
            # object cache likewise charges no reuse/invalidation for
            # its first instantiation).
            order = np.lexsort((store.ids[rows], -effective_by_row[rows]))
            self._order = rows[order]
            repaired = int(len(rows))
            reused = 0
            counted = False
        elif bypass:
            self.bypass_rounds += 1
            autotuner.record_bypass()
            self._order = self._resort(effective_by_row, dirty_rows)
            repaired = int(len(self._order))
            reused = 0
            counted = False
        else:
            reused, repaired = self._repair(effective_by_row, dirty_rows)
            counted = True
        if counted:
            self.rows_reused += reused
            self.rows_repaired += repaired
            collector = self.collector
            if collector.enabled:
                if reused:
                    collector.incr(metric_names.SORT_STREAMS_REUSED, reused)
                if repaired:
                    collector.incr(
                        metric_names.SORT_STREAMS_INVALIDATED, repaired
                    )
        if declared_ids is not None and self._pending_dirty:
            scored = np.zeros(store.size, dtype=bool)
            scored[rows] = True
            self._pending_dirty = {
                advertiser_id
                for advertiser_id in self._pending_dirty
                if advertiser_id not in store
                or not scored[store.row_of(advertiser_id)]
            }
        if autotuner is not None:
            autotuner.observe_round(
                changed_count, int(len(rows)), int(len(self._order))
            )
        return self._order, repaired

    def _resort(self, effective_by_row, dirty_rows) -> "np.ndarray":
        """Full lexsort over the union of cached and dirty rows."""
        store = self.store
        member = np.zeros(store.size, dtype=bool)
        member[self._order] = True
        member[dirty_rows] = True
        all_rows = np.flatnonzero(member)
        order = np.lexsort((store.ids[all_rows], -effective_by_row[all_rows]))
        return all_rows[order]

    def _repair(self, effective_by_row, dirty_rows) -> Tuple[int, int]:
        """Remove dirty rows from the cached order and merge them back.

        The clean remainder is already sorted by ``(-bid, id)`` (its
        rows' bids are verified unchanged), and the dirty rows are
        sorted by the same key, so positions come from two vectorized
        ``searchsorted`` calls on the bid key plus an id-level
        ``searchsorted`` inside each equal-bid run -- a loop over the
        (small) dirty set only.  Distinct ids make the key a strict
        total order, so the merged permutation is byte-identical to a
        fresh lexsort.
        """
        store = self.store
        previous = self._order
        if not len(dirty_rows):
            return int(len(previous)), 0
        # A dirty fraction large enough that merge-insert positions stop
        # paying for themselves: re-sort.  Work-only heuristic -- the
        # resulting permutation is identical either way.
        if 4 * len(dirty_rows) >= len(previous):
            self._order = self._resort(effective_by_row, dirty_rows)
            return 0, int(len(self._order))
        dirty_mask = np.zeros(store.size, dtype=bool)
        dirty_mask[dirty_rows] = True
        clean = previous[~dirty_mask[previous]]
        key_order = np.lexsort(
            (store.ids[dirty_rows], -effective_by_row[dirty_rows])
        )
        ranked_dirty = dirty_rows[key_order]
        clean_neg = -effective_by_row[clean]
        clean_ids = store.ids[clean]
        neg = -effective_by_row[ranked_dirty]
        lo = np.searchsorted(clean_neg, neg, side="left")
        hi = np.searchsorted(clean_neg, neg, side="right")
        positions = np.empty(len(ranked_dirty), dtype=np.int64)
        dirty_ids = store.ids[ranked_dirty]
        for j in range(len(ranked_dirty)):
            start = int(lo[j])
            stop = int(hi[j])
            positions[j] = start + int(
                np.searchsorted(clean_ids[start:stop], dirty_ids[j])
            )
        self._order = np.insert(clean, positions, ranked_dirty)
        return int(len(clean)), int(len(ranked_dirty))


class ColumnarThresholdKernel:
    """Per-round shared bid presort + per-phrase vectorized TA.

    Args:
        store: The columnar population.
        k: Ranking capacity (the engine passes ``slots + 1``).
        collector: Receives the ``ta.*`` counters (runs, sorted
            accesses, random accesses, stages, stop depth), so
            shared-sort work tables keep reporting through the same
            names under either layout.
        cache: Optional :class:`ColumnarSortCache`; when present,
            :meth:`begin_round` delegates the shared order to the
            cache's incremental repair instead of a fresh lexsort.  The
            cached order covers every row ever scored (a superset of
            the round's occurring rows); a phrase's TA filters it by
            membership, and every member of a ranked phrase occurs in
            that round, so the extra rows are never read.
    """

    def __init__(
        self,
        store: ColumnarStore,
        k: int,
        collector: Collector = NULL,
        cache: Optional[ColumnarSortCache] = None,
    ) -> None:
        require_numpy()
        if k <= 0:
            raise InvalidPlanError(f"k must be positive, got {k}")
        self.store = store
        self.k = k
        self.collector = collector
        self.cache = cache
        self._order: Optional["np.ndarray"] = None
        self._effective_by_row: Optional["np.ndarray"] = None
        # Scratch: row -> position within the current phrase's row list.
        self._position_of_row = np.zeros(store.size, dtype=np.int64)

    def begin_round(self, effective_by_row, rows) -> int:
        """Compute the round's shared descending-bid order.

        One lexsort over the occurring rows, shared by every phrase of
        the round -- the work the object path spends instantiating and
        pulling the merge network.  With a :class:`ColumnarSortCache`
        attached, the order is instead repaired incrementally and the
        returned work is the number of rows re-ranked.

        Args:
            effective_by_row: Full-length float64 effective bids in
                cents (only ``rows`` entries are meaningful).
            rows: The round's occurring row indices (ascending).

        Returns:
            The number of rows materialized into the shared order
            (repaired into it, under the cache) -- the engine reports
            it as the round's shared-sort work.
        """
        self._effective_by_row = effective_by_row
        if self.cache is not None:
            self._order, repaired = self.cache.order_for_round(
                effective_by_row, rows
            )
            return repaired
        order = np.lexsort(
            (self.store.ids[rows], -effective_by_row[rows])
        )
        self._order = rows[order]
        return int(len(self._order))

    def rank_phrase(self, phrase: str) -> Tuple[TopKList, int]:
        """TA over the phrase's two presorted index lists.

        Returns:
            ``(ranking, sorted_accesses)`` -- the exact top-k list and
            the sorted accesses charged (both lists' final read depth),
            mirroring the object TA's per-phrase accounting.

        Raises:
            InvalidPlanError: If called before :meth:`begin_round`.
        """
        if self._order is None or self._effective_by_row is None:
            raise InvalidPlanError("rank_phrase before begin_round")
        store = self.store
        collector = self.collector
        phrase_rows = store.phrase_rows(phrase)
        n = int(len(phrase_rows))
        if n == 0:
            return TopKList(self.k), 0
        factors = store.phrase_ctr(phrase)
        effective = self._effective_by_row[phrase_rows]
        # Per-phrase scores, same operation order as the object path:
        # (cents / 100.0) * c_i^q.
        scores = effective / 100.0 * factors
        self._position_of_row[phrase_rows] = np.arange(n)
        # Bid list: the shared round order filtered to this phrase.
        membership = store.membership(phrase)
        bid_rows = self._order[membership[self._order]]
        ctr_rows = store.phrase_ctr_rank_rows(phrase)
        bid_positions = self._position_of_row[bid_rows]
        ctr_positions = self._position_of_row[ctr_rows]

        seen = np.zeros(n, dtype=bool)
        depth = min(n, self.k)
        stages = 0
        while True:
            stages += 1
            seen[bid_positions[:depth]] = True
            seen[ctr_positions[:depth]] = True
            if depth >= n:
                break
            last_bid = float(effective[bid_positions[depth - 1]]) / 100.0
            last_ctr = float(factors[ctr_positions[depth - 1]])
            threshold = last_bid * last_ctr
            seen_positions = np.flatnonzero(seen)
            seen_scores = scores[seen_positions]
            if len(seen_positions) >= self.k:
                kth = float(
                    np.partition(seen_scores, len(seen_scores) - self.k)[
                        len(seen_scores) - self.k
                    ]
                )
                # Strict: at kth == threshold an unseen row could still
                # tie and win on the id tie-break, so keep reading.
                if kth > threshold:
                    break
            depth = min(n, depth * 2)
        seen_positions = np.flatnonzero(seen)
        ranking = columnar_top_k(
            self.k,
            scores[seen_positions],
            store.ids[phrase_rows[seen_positions]],
        )
        sorted_accesses = 2 * depth
        if collector.enabled:
            collector.incr(metric_names.TA_RUNS)
            collector.incr(metric_names.TA_SORTED_ACCESSES, sorted_accesses)
            collector.incr(
                metric_names.TA_RANDOM_ACCESSES, int(len(seen_positions))
            )
            collector.incr(metric_names.TA_STAGES, stages)
            collector.gauge(metric_names.TA_STOP_DEPTH, depth)
        return ranking, sorted_accesses
