"""Columnar threshold-algorithm kernel over presorted column indices.

The object-path Section III pipeline instantiates a shared merge-sort
network of descending-bid streams and runs the threshold algorithm per
phrase, pulling items one batch at a time through Python operator
objects.  With the population in a
:class:`repro.core.columnar.ColumnarStore`, both sorted lists TA needs
are *index arrays*:

- the **bid list** is one shared ``np.lexsort`` over the round's
  occurring rows (descending effective bid, ties by ascending id),
  computed once per round and filtered per phrase by the membership
  mask -- the columnar analogue of the shared sort network: every
  phrase reads the same presorted column;
- the **CTR list** is the store's cached
  :meth:`~repro.core.columnar.ColumnarStore.phrase_ctr_rank_rows`
  (descending ``c_i^q``, ties by ascending id) -- CTR factors change
  rarely, so the presort amortizes across rounds exactly like the
  engine's object-path ``_ctr_orders``.

:meth:`ColumnarThresholdKernel.rank_phrase` then runs TA with
geometrically doubling sorted-access depth: read a prefix of both
lists, resolve the union's scores by (vectorized) random access, and
stop once the running k-th best *strictly* exceeds the threshold
``last_bid * last_ctr``.  The strict stop makes the result provably the
exact top-k with the full ``(-score, advertiser_id)`` tie-break: any
unseen row's score is at most the threshold, hence strictly below every
retained entry, so no tie against an unseen row can exist.  Outcomes
are byte-identical to the object path (which the layout differential
asserts); only the work counters -- ``ta.sorted_accesses`` et al. --
differ by strategy, exactly as they do between the batched and
item-at-a-time object engines.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.columnar import ColumnarStore, columnar_top_k, require_numpy
from repro.core.topk import TopKList
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names

try:  # pragma: no cover - numpy ships with the package
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["ColumnarThresholdKernel"]


class ColumnarThresholdKernel:
    """Per-round shared bid presort + per-phrase vectorized TA.

    Args:
        store: The columnar population.
        k: Ranking capacity (the engine passes ``slots + 1``).
        collector: Receives the ``ta.*`` counters (runs, sorted
            accesses, random accesses, stages, stop depth), so
            shared-sort work tables keep reporting through the same
            names under either layout.
    """

    def __init__(
        self, store: ColumnarStore, k: int, collector: Collector = NULL
    ) -> None:
        require_numpy()
        if k <= 0:
            raise InvalidPlanError(f"k must be positive, got {k}")
        self.store = store
        self.k = k
        self.collector = collector
        self._order: Optional["np.ndarray"] = None
        self._effective_by_row: Optional["np.ndarray"] = None
        # Scratch: row -> position within the current phrase's row list.
        self._position_of_row = np.zeros(store.size, dtype=np.int64)

    def begin_round(self, effective_by_row, rows) -> int:
        """Compute the round's shared descending-bid order.

        One lexsort over the occurring rows, shared by every phrase of
        the round -- the work the object path spends instantiating and
        pulling the merge network.

        Args:
            effective_by_row: Full-length float64 effective bids in
                cents (only ``rows`` entries are meaningful).
            rows: The round's occurring row indices (ascending).

        Returns:
            The number of rows materialized into the shared order (the
            engine reports it as the round's shared-sort work).
        """
        self._effective_by_row = effective_by_row
        order = np.lexsort(
            (self.store.ids[rows], -effective_by_row[rows])
        )
        self._order = rows[order]
        return int(len(self._order))

    def rank_phrase(self, phrase: str) -> Tuple[TopKList, int]:
        """TA over the phrase's two presorted index lists.

        Returns:
            ``(ranking, sorted_accesses)`` -- the exact top-k list and
            the sorted accesses charged (both lists' final read depth),
            mirroring the object TA's per-phrase accounting.

        Raises:
            InvalidPlanError: If called before :meth:`begin_round`.
        """
        if self._order is None or self._effective_by_row is None:
            raise InvalidPlanError("rank_phrase before begin_round")
        store = self.store
        collector = self.collector
        phrase_rows = store.phrase_rows(phrase)
        n = int(len(phrase_rows))
        if n == 0:
            return TopKList(self.k), 0
        factors = store.phrase_ctr(phrase)
        effective = self._effective_by_row[phrase_rows]
        # Per-phrase scores, same operation order as the object path:
        # (cents / 100.0) * c_i^q.
        scores = effective / 100.0 * factors
        self._position_of_row[phrase_rows] = np.arange(n)
        # Bid list: the shared round order filtered to this phrase.
        membership = store.membership(phrase)
        bid_rows = self._order[membership[self._order]]
        ctr_rows = store.phrase_ctr_rank_rows(phrase)
        bid_positions = self._position_of_row[bid_rows]
        ctr_positions = self._position_of_row[ctr_rows]

        seen = np.zeros(n, dtype=bool)
        depth = min(n, self.k)
        stages = 0
        while True:
            stages += 1
            seen[bid_positions[:depth]] = True
            seen[ctr_positions[:depth]] = True
            if depth >= n:
                break
            last_bid = float(effective[bid_positions[depth - 1]]) / 100.0
            last_ctr = float(factors[ctr_positions[depth - 1]])
            threshold = last_bid * last_ctr
            seen_positions = np.flatnonzero(seen)
            seen_scores = scores[seen_positions]
            if len(seen_positions) >= self.k:
                kth = float(
                    np.partition(seen_scores, len(seen_scores) - self.k)[
                        len(seen_scores) - self.k
                    ]
                )
                # Strict: at kth == threshold an unseen row could still
                # tie and win on the id tie-break, so keep reading.
                if kth > threshold:
                    break
            depth = min(n, depth * 2)
        seen_positions = np.flatnonzero(seen)
        ranking = columnar_top_k(
            self.k,
            scores[seen_positions],
            store.ids[phrase_rows[seen_positions]],
        )
        sorted_accesses = 2 * depth
        if collector.enabled:
            collector.incr(metric_names.TA_RUNS)
            collector.incr(metric_names.TA_SORTED_ACCESSES, sorted_accesses)
            collector.incr(
                metric_names.TA_RANDOM_ACCESSES, int(len(seen_positions))
            )
            collector.incr(metric_names.TA_STAGES, stages)
            collector.gauge(metric_names.TA_STOP_DEPTH, depth)
        return ranking, sorted_accesses
