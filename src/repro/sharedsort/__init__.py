"""Shared sorting and the threshold algorithm (Section III).

When the advertiser-specific CTR factor ``c_i^q`` differs per bid phrase,
per-phrase top-k values ``b_i * c_i^q`` cannot be aggregated directly;
only the bids ``b_i`` are shared.  Section III's architecture:

- each phrase's top-k is found by the **threshold algorithm**
  (:mod:`repro.sharedsort.threshold`) over two sorted access paths --
  descending ``b_i`` and descending ``c_i^q``;
- the descending-``b_i`` stream for the phrase's advertiser set ``I_q``
  is produced by an **on-demand merge-sort network**
  (:mod:`repro.sharedsort.operators`): pull-based binary merge operators
  with output caches, shared between phrases wherever a subtree's
  advertiser set is common;
- which operators to share is decided offline by a **greedy bottom-up
  plan builder** (:mod:`repro.sharedsort.plan`) maximizing expected
  savings under the full-sort cost model (:mod:`repro.sharedsort.cost`);
- across rounds, streams whose underlying bids did not change are kept
  alive by :class:`repro.sharedsort.cache.CrossRoundSortCache`, so their
  output caches replay instead of being rebuilt.
"""

from repro.sharedsort.cache import CrossRoundSortCache
from repro.sharedsort.columnar import ColumnarThresholdKernel
from repro.sharedsort.cost import (
    expected_full_sort_cost,
    expected_savings_of_merge,
    independent_sort_cost,
)
from repro.sharedsort.operators import LeafSource, MergeOperator, SortStream
from repro.sharedsort.plan import (
    LiveSharedSort,
    SharedSortPlan,
    SortBuilderStats,
    build_shared_sort_plan,
)
from repro.sharedsort.serialize import plan_to_dict, serialize_plan
from repro.sharedsort.threshold import ThresholdResult, threshold_top_k

__all__ = [
    "ColumnarThresholdKernel",
    "CrossRoundSortCache",
    "LeafSource",
    "LiveSharedSort",
    "MergeOperator",
    "SharedSortPlan",
    "SortBuilderStats",
    "SortStream",
    "ThresholdResult",
    "build_shared_sort_plan",
    "expected_full_sort_cost",
    "expected_savings_of_merge",
    "independent_sort_cost",
    "plan_to_dict",
    "serialize_plan",
    "threshold_top_k",
]
