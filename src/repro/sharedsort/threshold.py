"""The threshold algorithm (Fagin, Lotem & Naor) for per-phrase top-k.

For bid phrase ``q`` the score of advertiser ``i`` is ``b_i * c_i^q``.
Two sorted access paths exist: descending bid ``b_i`` (supplied lazily by
the shared merge-sort network) and descending CTR factor ``c_i^q``
(precomputed and fixed -- the paper notes click-through rates are
recalculated only occasionally, so this ordering is free).  Random access
to the other attribute is available by advertiser id.

At each stage ``s`` the algorithm reads the ``s``-th entry of both lists,
resolves each newly seen advertiser's full score by random access, keeps
the best ``k`` seen so far, and stops as soon as the ``k``-th best score
is at least the threshold ``b(i_s) * c(j_s)`` -- the largest score any
unseen advertiser could still have.  The algorithm is instance optimal
among algorithms that make no wild guesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.topk import ScoredAdvertiser, TopKList
from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names
from repro.sharedsort.operators import Item, SortStream

__all__ = ["ThresholdResult", "threshold_top_k"]

_MAX_BATCH = 4096
"""Cap on the geometrically doubled batched-read window."""


@dataclass(frozen=True)
class ThresholdResult:
    """Outcome of one threshold-algorithm run.

    Attributes:
        ranking: The top-k advertisers by ``b_i * c_i^q``.
        stages: Number of stages executed (depth reached in both lists).
        sorted_accesses: Total sorted-access reads across both lists.
        random_accesses: Random-access score resolutions performed.
        threshold: Final value of the stopping threshold.
    """

    ranking: TopKList
    stages: int
    sorted_accesses: int
    random_accesses: int
    threshold: float


def threshold_top_k(
    k: int,
    bid_stream: SortStream,
    ctr_order: Sequence[int],
    bids: Mapping[int, float],
    ctr_factors: Mapping[int, float],
    collector: Collector = NULL,
    batched: bool = True,
) -> ThresholdResult:
    """Run the threshold algorithm for one bid phrase.

    Args:
        k: Number of slots.
        bid_stream: Descending-``b_i`` stream over the phrase's advertiser
            set ``I_q`` (typically a shared merge-sort root).
        ctr_order: Advertiser ids of ``I_q`` sorted by descending
            ``c_i^q`` (ties by ascending id), the precomputed second list.
        bids: Random access ``i -> b_i``; must cover ``I_q``.
        ctr_factors: Random access ``i -> c_i^q``; must cover ``I_q``.
        collector: Receives the ``ta.*`` access counters (flushed once
            per run) and the ``ta.stop_depth`` gauge.
        batched: Consume the bid stream through batched
            :meth:`SortStream.items` reads with a geometrically doubling
            window (the default).  The per-stage logic -- accesses,
            stages, threshold, stop depth -- is identical either way;
            only the number of Python calls into the stream changes, and
            batched reads never force extra operator pulls (see
            :meth:`SortStream.items`).  ``False`` keeps the paper's
            literal one-read-per-stage register model, retained as the
            differential oracle.

    Returns:
        The ranking and access counters.

    Raises:
        InvalidPlanError: If ``k`` is not positive or an id is missing
            from the random-access maps.
    """
    if k <= 0:
        raise InvalidPlanError(f"k must be positive, got {k}")

    def score_of(advertiser_id: int) -> float:
        try:
            return bids[advertiser_id] * ctr_factors[advertiser_id]
        except KeyError:
            raise InvalidPlanError(
                f"no random-access data for advertiser {advertiser_id}"
            ) from None

    top = TopKList(k)
    seen: Dict[int, float] = {}
    stages = 0
    sorted_accesses = 0
    random_accesses = 0
    threshold = float("inf")

    # Batched consumption state: ``bid_buffer[stages - buffer_lo]`` is
    # the next bid entry when in range; refills double ``want`` so a
    # shared stream replaying its cache costs O(log n) calls, not O(n).
    bid_buffer: List[Item] = []
    buffer_lo = 0
    want = 1
    # The smallest bid this run has read from the stream -- the bound an
    # exhausted bid list contributes to the threshold.  Maintained
    # incrementally: the stream is descending, so the latest read is
    # always the smallest (the per-stage ``item(stages - 1)`` re-read
    # this replaces was O(1) per call but a full wrapper round-trip).
    last_bid_value: Optional[float] = None

    while True:
        if batched:
            offset = stages - buffer_lo
            if 0 <= offset < len(bid_buffer):
                bid_entry: Optional[Item] = bid_buffer[offset]
            else:
                bid_buffer = bid_stream.items(stages, stages + want)
                buffer_lo = stages
                if want < _MAX_BATCH:
                    want *= 2
                bid_entry = bid_buffer[0] if bid_buffer else None
        else:
            bid_entry = bid_stream.item(stages)
        ctr_entry: Optional[int] = (
            ctr_order[stages] if stages < len(ctr_order) else None
        )
        if bid_entry is None and ctr_entry is None:
            # Both lists exhausted; everything has been seen.
            threshold = float("-inf")
            break

        bound_bid = None
        if bid_entry is not None:
            sorted_accesses += 1
            bid_value, bid_id = bid_entry
            bound_bid = bid_value
            last_bid_value = bid_value
            if bid_id not in seen:
                random_accesses += 1
                seen[bid_id] = score_of(bid_id)
                top = top.insert((seen[bid_id], bid_id))
        bound_ctr = None
        if ctr_entry is not None:
            sorted_accesses += 1
            if ctr_entry not in seen:
                random_accesses += 1
                seen[ctr_entry] = score_of(ctr_entry)
                top = top.insert((seen[ctr_entry], ctr_entry))
            bound_ctr = ctr_factors[ctr_entry]
        stages += 1

        # Threshold: best possible score of an unseen advertiser.  If one
        # list is exhausted, every advertiser has been seen through the
        # other list's completeness over I_q... only when that other list
        # is itself complete; in general an exhausted list bounds the
        # missing attribute by its last (smallest) emitted value.
        if bound_bid is None:
            bound_bid = last_bid_value if last_bid_value is not None else 0.0
        if bound_ctr is None:
            bound_ctr = (
                ctr_factors[ctr_order[-1]] if ctr_order else 0.0
            )
        threshold = (bound_bid or 0.0) * (bound_ctr or 0.0)
        if len(top) >= min(k, len(ctr_order)) and (
            len(top) > 0 and top.threshold() >= threshold
        ):
            break

    collector.incr(metric_names.TA_RUNS)
    collector.incr(metric_names.TA_SORTED_ACCESSES, sorted_accesses)
    collector.incr(metric_names.TA_RANDOM_ACCESSES, random_accesses)
    collector.incr(metric_names.TA_STAGES, stages)
    if collector.enabled:
        collector.gauge(metric_names.TA_STOP_DEPTH, stages)
    return ThresholdResult(
        ranking=top,
        stages=stages,
        sorted_accesses=sorted_accesses,
        random_accesses=random_accesses,
        threshold=threshold,
    )
