"""Cross-round reuse of shared merge-sort streams.

The Section III network is rebuilt from scratch every round by
:meth:`SharedSortPlan.instantiate`, even though between consecutive
rounds only a small dirty set of advertisers changes its effective bid
(a click settles, a budget depletes, a throttle flips).  Every clean
stream's output cache is exactly what the new round would recompute --
descending-bid order depends only on the bids below the stream -- so
recreating those operators throws away paid-for work, just as rebuilding
top-k nodes did before :class:`repro.plans.executor.CrossRoundPlanExecutor`.

:class:`CrossRoundSortCache` keeps the previous round's live streams and
hands the reusable ones to the next round's :class:`LiveSharedSort`:

1. Find the dirty advertisers.  Standalone (no change feed), the cache
   diffs the new bids against the last bids each advertiser was
   instantiated with -- exact, no declaration protocol.  Connected to a
   :class:`repro.engine.changefeed.ChangeFeed` via :meth:`connect`, the
   drained events' ``dirty_advertisers`` are the declared dirty set, and
   the exact diff demotes to a soundness cross-check behind
   ``verify=True``: a declared advertiser still counts as dirty only if
   its bid really moved, and an *undeclared* change raises.
2. Walk the dirty advertisers' leaf nodes up the plan DAG through a
   precomputed parent index.  The resulting ancestor cone is exactly the
   set of plan streams whose output could differ; everything outside the
   cone replays its cache unchanged.  The cone is ancestor-closed, so a
   retained operator's operands are always retained with it (a parent's
   advertiser set contains its children's).
3. Per-phrase assembly streams are not plan nodes; a phrase's assembled
   stream is dropped iff ``I_q`` meets the dirty set -- the same rule,
   applied through the stream's ``advertiser_ids``.

Outcomes are bit-identical with and without the cache: a clean stream's
cache holds the same items a fresh operator would produce in the same
order, and dirty streams are rebuilt.  Only the work counters move --
``sort.streams_reused`` / ``sort.streams_invalidated`` here, and fewer
``sort.operator_pulls`` / ``sort.leaf_reads`` as reused caches replay.

Advertisers absent from a round's bid map are fine: the engine only
provides bids for (and the threshold algorithm only pulls streams over)
the advertisers of *occurring* phrases, so a retained stream containing
an absent advertiser is unreachable this round, and its staleness is
re-examined against that advertiser's recorded bid whenever it changes.

Two policy hooks mirror the plan-executor cache.  An optional
:class:`repro.engine.autotune.CacheAutotuner` (duck-typed) can declare a
round a *bypass* -- the network is instantiated fresh with no adoption
when the windowed dirty fraction makes reuse a net loss -- counted on
``cache.bypass_rounds``.  And :meth:`rebind` carries streams across a
structural replan: a stream is reusable under the new plan wherever a
node with the same advertiser set exists, because a sort stream's output
depends only on the bids below it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names
from repro.sharedsort.operators import SortStream
from repro.sharedsort.plan import LiveSharedSort, SharedSortPlan

__all__ = ["CrossRoundSortCache"]


class CrossRoundSortCache:
    """Keeps shared-sort streams alive between rounds of one plan.

    Args:
        plan: The shared merge-sort plan the rounds execute.
        collector: Receives ``sort.streams_reused`` /
            ``sort.streams_invalidated`` per :meth:`instantiate`.
        verify: With a connected change feed, keep the exact bid diff as
            a soundness cross-check: an undeclared bid change raises
            ``InvalidPlanError``.  ``False`` trusts the feed and skips
            comparing undeclared bids.  Irrelevant while unconnected
            (the exact diff is then the only source of dirtiness).
        autotuner: Optional duck-typed
            :class:`repro.engine.autotune.CacheAutotuner`; consulted per
            round for the bypass decision and fed the observed dirty
            fraction.  (LRU sizing does not apply here -- the stream set
            is bounded by the plan.)

    Attributes:
        plan: The plan, for callers that hold only the cache.
        rebinds: Structural rebinds absorbed (see :meth:`rebind`).
        bypass_rounds: Rounds instantiated fresh on autotuner advice.
    """

    def __init__(
        self,
        plan: SharedSortPlan,
        collector: Collector = NULL,
        verify: bool = True,
        autotuner=None,
    ) -> None:
        self.plan = plan
        self.collector = collector
        self.verify = verify
        self.autotuner = autotuner
        self._index_plan(plan)
        self._live: LiveSharedSort | None = None
        self._last_bids: Dict[int, float] = {}
        self._subscription = None
        self._pending_dirty: Set[int] = set()
        self.rounds = 0
        self.rebinds = 0
        self.streams_reused = 0
        self.streams_invalidated = 0
        self.bypass_rounds = 0

    def _index_plan(self, plan: SharedSortPlan) -> None:
        """(Re)build the parent index and advertiser-to-leaf map."""
        # child node id -> parent node ids (the sort-plan DAG inverted).
        self._parents: Dict[int, List[int]] = {}
        # advertiser id -> its leaf node id.
        self._leaf_of: Dict[int, int] = {}
        for node in plan.nodes:
            if node.is_leaf:
                (advertiser_id,) = node.advertisers
                self._leaf_of[advertiser_id] = node.node_id
            else:
                assert node.left is not None and node.right is not None
                self._parents.setdefault(node.left, []).append(node.node_id)
                self._parents.setdefault(node.right, []).append(node.node_id)

    # ------------------------------------------------------------------
    # change-feed consumption
    # ------------------------------------------------------------------
    def connect(self, feed) -> None:
        """Subscribe to a change feed; bid dirtiness then arrives as
        events (see the module docstring, step 1)."""
        if self._subscription is not None:
            raise InvalidPlanError("sort cache is already connected to a feed")
        self._subscription = feed.subscribe(
            name="sort-cache",
            kinds=(
                "bid_changed",
                "budget_changed",
                "advertiser_added",
                "advertiser_removed",
            ),
        )

    @property
    def pending_dirty(self) -> frozenset:
        """Advertisers declared dirty by drained events whose streams
        have not yet been rebuilt.

        Per-query serving drains the subscription once per query
        (``instantiate`` is called for every served query), so a bid or
        budget event lands here and is only absorbed when the affected
        advertiser's phrase next occurs in traffic.
        """
        return frozenset(self._pending_dirty)

    def _dirty_bids(self, bids: Mapping[int, float]) -> Set[int]:
        """The round's dirty advertisers (see the module docstring)."""
        declared = (
            self._pending_dirty if self._subscription is not None else None
        )
        dirty: Set[int] = set()
        for advertiser_id, bid in bids.items():
            last = self._last_bids.get(advertiser_id)
            if last is None:
                dirty.add(advertiser_id)
            elif declared is None or advertiser_id in declared:
                if last != bid:
                    dirty.add(advertiser_id)
            elif self.verify and last != bid:
                raise InvalidPlanError(
                    f"unsound change feed: bid of advertiser {advertiser_id} "
                    f"changed ({last} -> {bid}) without a covering event"
                )
        return dirty

    def instantiate(
        self, bids: Mapping[int, float], collector: Collector | None = None
    ) -> LiveSharedSort:
        """A live network for this round, reusing every clean stream.

        Args:
            bids: This round's ``{advertiser_id: b_i}`` over (at least)
                the advertisers the round will pull.
            collector: Collector for the round's streams; defaults to the
                cache's own.

        Returns:
            A :class:`LiveSharedSort` seeded with the previous round's
            clean streams; its ``round_*`` accessors report only work
            performed from this round on.
        """
        if collector is None:
            collector = self.collector
        self.rounds += 1
        if self._subscription is not None:
            for event in self._subscription.drain():
                self._pending_dirty |= event.dirty_advertisers
        previous = self._live
        reused = 0
        invalidated = 0
        dirty: Set[int] = set()
        live = LiveSharedSort(self.plan, bids, collector)
        autotuner = self.autotuner
        bypass = (
            previous is not None
            and autotuner is not None
            and autotuner.should_bypass()
        )
        if previous is not None:
            dirty = self._dirty_bids(bids)
            if bypass:
                self.bypass_rounds += 1
                autotuner.record_bypass()
            else:
                cone = self._dirty_cone(dirty)
                keep_streams: Dict[int, SortStream] = {}
                for node_id, stream in previous._streams.items():
                    if node_id in cone:
                        invalidated += 1
                    else:
                        keep_streams[node_id] = stream
                keep_phrases: Dict[str, SortStream] = {}
                for phrase, stream in previous._phrase_streams.items():
                    ids = getattr(stream, "advertiser_ids", frozenset())
                    if ids & dirty:
                        invalidated += 1
                    else:
                        keep_phrases[phrase] = stream
                reused = len(keep_streams) + len(keep_phrases)
                live._adopt(keep_streams, keep_phrases)
        self._live = live
        if self._subscription is not None and not self.verify:
            # Trusted-undeclared bids keep their last-seen snapshot (not
            # the current value), mirroring the exec cache: a later
            # covering event then still sees the change and repairs the
            # stale streams instead of trusting them forever.
            for advertiser_id, bid in bids.items():
                if (
                    advertiser_id in self._pending_dirty
                    or advertiser_id not in self._last_bids
                ):
                    self._last_bids[advertiser_id] = bid
        else:
            self._last_bids.update(bids)
        if self._subscription is not None:
            # Instantiated advertisers are absorbed; events for everyone
            # else survive until they next occur.
            self._pending_dirty.difference_update(bids)
        if autotuner is not None:
            autotuner.observe_round(len(dirty), len(bids), reused + invalidated)
        self.streams_reused += reused
        self.streams_invalidated += invalidated
        if collector.enabled:
            if reused:
                collector.incr(metric_names.SORT_STREAMS_REUSED, reused)
            if invalidated:
                collector.incr(
                    metric_names.SORT_STREAMS_INVALIDATED, invalidated
                )
        return live

    def _dirty_cone(self, dirty: Set[int]) -> Set[int]:
        """Plan-node ids whose stream could change: dirty leaves and all
        their ancestors."""
        cone: Set[int] = set()
        stack = [
            self._leaf_of[advertiser_id]
            for advertiser_id in dirty
            if advertiser_id in self._leaf_of
        ]
        while stack:
            node_id = stack.pop()
            if node_id in cone:
                continue
            cone.add(node_id)
            stack.extend(self._parents.get(node_id, ()))
        return cone

    # ------------------------------------------------------------------
    # structural maintenance
    # ------------------------------------------------------------------
    def rebind(self, plan: SharedSortPlan) -> None:
        """Adopt a rebuilt plan, keeping streams the new plan can reuse.

        A sort stream's output is fully determined by the bids of the
        advertisers below it, so a retained stream is valid under the
        new plan wherever a node with the *same advertiser set* exists
        (:meth:`SharedSortPlan.node_for_advertisers`); everything else
        -- streams over regrouped advertiser sets, phrases whose ``I_q``
        changed -- is dropped and rebuilt on demand.  Last-seen bids and
        pending feed events carry over untouched: dirtiness is about
        *values*, rebinding about *structure*, and the two compose.
        """
        old_plan = self.plan
        previous = self._live
        self.plan = plan
        self._index_plan(plan)
        if previous is not None:
            carried: Dict[int, SortStream] = {}
            for node_id, stream in previous._streams.items():
                new_id = plan.node_for_advertisers(
                    old_plan.nodes[node_id].advertisers
                )
                if new_id is not None:
                    carried[new_id] = stream
            carried_phrases: Dict[str, SortStream] = {}
            for phrase, stream in previous._phrase_streams.items():
                ids = plan.phrase_advertisers.get(phrase)
                if ids is not None and frozenset(ids) == getattr(
                    stream, "advertiser_ids", None
                ):
                    carried_phrases[phrase] = stream
            live = LiveSharedSort(
                plan, dict(self._last_bids), previous.collector
            )
            live._adopt(carried, carried_phrases)
            self._live = live
        self.rebinds += 1
