"""Cross-round reuse of shared merge-sort streams.

The Section III network is rebuilt from scratch every round by
:meth:`SharedSortPlan.instantiate`, even though between consecutive
rounds only a small dirty set of advertisers changes its effective bid
(a click settles, a budget depletes, a throttle flips).  Every clean
stream's output cache is exactly what the new round would recompute --
descending-bid order depends only on the bids below the stream -- so
recreating those operators throws away paid-for work, just as rebuilding
top-k nodes did before :class:`repro.plans.executor.CrossRoundPlanExecutor`.

:class:`CrossRoundSortCache` keeps the previous round's live streams and
hands the reusable ones to the next round's :class:`LiveSharedSort`:

1. Diff the new bids against the last bids each advertiser was
   instantiated with; the advertisers whose bid changed (or that were
   never seen) form the dirty set.  The diff is exact, so no declaration
   protocol is needed -- soundness does not rest on the engine
   remembering to report its events.
2. Walk the dirty advertisers' leaf nodes up the plan DAG through a
   precomputed parent index.  The resulting ancestor cone is exactly the
   set of plan streams whose output could differ; everything outside the
   cone replays its cache unchanged.  The cone is ancestor-closed, so a
   retained operator's operands are always retained with it (a parent's
   advertiser set contains its children's).
3. Per-phrase assembly streams are not plan nodes; a phrase's assembled
   stream is dropped iff ``I_q`` meets the dirty set -- the same rule,
   applied through the stream's ``advertiser_ids``.

Outcomes are bit-identical with and without the cache: a clean stream's
cache holds the same items a fresh operator would produce in the same
order, and dirty streams are rebuilt.  Only the work counters move --
``sort.streams_reused`` / ``sort.streams_invalidated`` here, and fewer
``sort.operator_pulls`` / ``sort.leaf_reads`` as reused caches replay.

Advertisers absent from a round's bid map are fine: the engine only
provides bids for (and the threshold algorithm only pulls streams over)
the advertisers of *occurring* phrases, so a retained stream containing
an absent advertiser is unreachable this round, and its staleness is
re-examined against that advertiser's recorded bid whenever it changes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.instrument import NULL, Collector, names as metric_names
from repro.sharedsort.operators import SortStream
from repro.sharedsort.plan import LiveSharedSort, SharedSortPlan

__all__ = ["CrossRoundSortCache"]


class CrossRoundSortCache:
    """Keeps shared-sort streams alive between rounds of one plan.

    Args:
        plan: The shared merge-sort plan the rounds execute.
        collector: Receives ``sort.streams_reused`` /
            ``sort.streams_invalidated`` per :meth:`instantiate`.

    Attributes:
        plan: The plan, for callers that hold only the cache.
    """

    def __init__(
        self, plan: SharedSortPlan, collector: Collector = NULL
    ) -> None:
        self.plan = plan
        self.collector = collector
        # child node id -> parent node ids (the sort-plan DAG inverted).
        self._parents: Dict[int, List[int]] = {}
        # advertiser id -> its leaf node id.
        self._leaf_of: Dict[int, int] = {}
        for node in plan.nodes:
            if node.is_leaf:
                (advertiser_id,) = node.advertisers
                self._leaf_of[advertiser_id] = node.node_id
            else:
                assert node.left is not None and node.right is not None
                self._parents.setdefault(node.left, []).append(node.node_id)
                self._parents.setdefault(node.right, []).append(node.node_id)
        self._live: LiveSharedSort | None = None
        self._last_bids: Dict[int, float] = {}
        self.rounds = 0
        self.streams_reused = 0
        self.streams_invalidated = 0

    def _dirty_cone(self, dirty: Set[int]) -> Set[int]:
        """Plan-node ids whose stream could change: dirty leaves and all
        their ancestors."""
        cone: Set[int] = set()
        stack = [
            self._leaf_of[advertiser_id]
            for advertiser_id in dirty
            if advertiser_id in self._leaf_of
        ]
        while stack:
            node_id = stack.pop()
            if node_id in cone:
                continue
            cone.add(node_id)
            stack.extend(self._parents.get(node_id, ()))
        return cone

    def instantiate(
        self, bids: Mapping[int, float], collector: Collector | None = None
    ) -> LiveSharedSort:
        """A live network for this round, reusing every clean stream.

        Args:
            bids: This round's ``{advertiser_id: b_i}`` over (at least)
                the advertisers the round will pull.
            collector: Collector for the round's streams; defaults to the
                cache's own.

        Returns:
            A :class:`LiveSharedSort` seeded with the previous round's
            clean streams; its ``round_*`` accessors report only work
            performed from this round on.
        """
        if collector is None:
            collector = self.collector
        self.rounds += 1
        previous = self._live
        reused = 0
        invalidated = 0
        live = LiveSharedSort(self.plan, bids, collector)
        if previous is not None:
            dirty = {
                advertiser_id
                for advertiser_id, bid in bids.items()
                if self._last_bids.get(advertiser_id) != bid
            }
            cone = self._dirty_cone(dirty)
            keep_streams: Dict[int, SortStream] = {}
            for node_id, stream in previous._streams.items():
                if node_id in cone:
                    invalidated += 1
                else:
                    keep_streams[node_id] = stream
            keep_phrases: Dict[str, SortStream] = {}
            for phrase, stream in previous._phrase_streams.items():
                ids = getattr(stream, "advertiser_ids", frozenset())
                if ids & dirty:
                    invalidated += 1
                else:
                    keep_phrases[phrase] = stream
            reused = len(keep_streams) + len(keep_phrases)
            live._adopt(keep_streams, keep_phrases)
        self._live = live
        self._last_bids.update(bids)
        self.streams_reused += reused
        self.streams_invalidated += invalidated
        if collector.enabled:
            if reused:
                collector.incr(metric_names.SORT_STREAMS_REUSED, reused)
            if invalidated:
                collector.incr(
                    metric_names.SORT_STREAMS_INVALIDATED, invalidated
                )
        return live
