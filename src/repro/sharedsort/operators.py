"""On-demand merge-sort operators with output caching.

Section III-B: rather than running a full merge-sort upfront, each
non-leaf node of the merge-sort tree is an *on-demand operator* holding a
left and a right register.  When asked for its next output it sends the
larger of the two registers upstream and clears it; an empty register is
refilled by pulling from the corresponding downstream (child) node.  Work
stops as soon as the threshold algorithm stops asking, and every operator
caches the sequence it has emitted so that a second phrase's plan sharing
the operator replays the cache for free.

Items are ``(bid, advertiser_id)`` pairs ordered by descending bid with
ties broken by ascending advertiser id (consistent with the rest of the
library).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.errors import InvalidPlanError
from repro.instrument import NULL, Collector, names as metric_names

__all__ = ["SortStream", "LeafSource", "MergeOperator"]

Item = Tuple[float, int]
"""A ``(bid, advertiser_id)`` pair."""


def _rank_key(item: Item) -> Tuple[float, int]:
    """Key under which larger means earlier in the output order."""
    bid, advertiser_id = item
    return (bid, -advertiser_id)


class SortStream:
    """Base class: a lazily computed descending-bid stream with a cache.

    Consumers address items by index via :meth:`item`, or in bulk via
    :meth:`items`; multiple consumers (phrases) can read the same stream
    at their own pace, which is what makes the operators shareable.
    Subclasses implement :meth:`_produce_next` returning the next item
    or ``None``.

    Args:
        collector: Receives ``sort.*`` counters: ``sort.cache_replays``
            for reads served from the output cache (zero child pulls),
            ``sort.leaf_reads`` / ``sort.operator_pulls`` for produced
            items, ``sort.batch_pulls`` / ``sort.batched_items`` for
            batched reads, and -- when enabled and a ``label`` is set --
            ``sort.node_pulls`` keyed by the label.
        label: Stable identity of this stream within its plan (node id,
            or a phrase-assembly tag); used only for keyed counters.
    """

    def __init__(
        self, collector: Collector = NULL, label: Optional[Hashable] = None
    ) -> None:
        self._cache: List[Item] = []
        self._exhausted = False
        self.pulls = 0
        self.collector = collector
        self.label = label

    def item(self, index: int) -> Optional[Item]:
        """Return the ``index``-th item (0-based), or ``None`` past the end.

        Items already emitted are served from the cache without work: a
        replayed read performs zero child pulls by construction (counted
        as ``sort.cache_replays`` when collection is on).
        """
        if index < 0:
            raise InvalidPlanError(f"stream index must be non-negative: {index}")
        if index < len(self._cache):
            if self.collector.enabled:
                self.collector.incr(metric_names.SORT_CACHE_REPLAYS)
            return self._cache[index]
        while len(self._cache) <= index and not self._exhausted:
            produced = self._produce_next()
            if produced is None:
                self._exhausted = True
            else:
                self._cache.append(produced)
        if index < len(self._cache):
            return self._cache[index]
        return None

    def items(self, lo: int, hi: int) -> List[Item]:
        """Batched read: the available items in ``[lo, hi)``.

        Serves everything the output cache already holds in the range in
        one call, producing **at most the items a per-item read of
        ``lo`` would have produced** -- nothing in ``(lo, hi)`` is
        prefetched speculatively.  An early-stopping consumer therefore
        sees exactly the operator pulls of the item-at-a-time engine
        (``sort.operator_pulls`` parity), while replayed regions -- the
        common case for shared operators and cross-round reuse -- are
        returned as one list slice instead of ``hi - lo`` calls walking
        the operator tree.

        Returns an empty list when ``lo`` is at or past the end of the
        stream.  ``sort.batch_pulls`` counts calls, ``sort.batched_items``
        counts returned items, and replayed items still land on
        ``sort.cache_replays`` so the cache-accounting invariants hold
        for both engines.
        """
        if lo < 0 or hi < lo:
            raise InvalidPlanError(f"bad stream range [{lo}, {hi})")
        cache = self._cache
        cached_before = len(cache)
        if lo >= cached_before and not self._exhausted:
            # Materialize through ``lo`` only -- the same production an
            # item-at-a-time read would force, and no more.
            while len(cache) <= lo and not self._exhausted:
                produced = self._produce_next()
                if produced is None:
                    self._exhausted = True
                else:
                    cache.append(produced)
        end = min(hi, len(cache))
        if self.collector.enabled:
            self.collector.incr(metric_names.SORT_BATCH_PULLS)
            if end > lo:
                self.collector.incr(metric_names.SORT_BATCHED_ITEMS, end - lo)
            replayed = min(end, cached_before) - lo
            if replayed > 0:
                self.collector.incr(metric_names.SORT_CACHE_REPLAYS, replayed)
        if end <= lo:
            return []
        return cache[lo:end]

    def emitted(self) -> Sequence[Item]:
        """The items emitted so far (a snapshot copy of the cache).

        This copies; hot paths wanting only the tail or the length use
        :meth:`last_emitted` / :meth:`emitted_count`, which are O(1).
        """
        return tuple(self._cache)

    def last_emitted(self) -> Optional[Item]:
        """The most recently emitted item without copying the cache."""
        cache = self._cache
        return cache[-1] if cache else None

    def emitted_count(self) -> int:
        """Number of items emitted so far (the cache length)."""
        return len(self._cache)

    def _produce_next(self) -> Optional[Item]:
        raise NotImplementedError


class LeafSource(SortStream):
    """A single advertiser's bid -- a one-item stream.

    Leaves count a "pull" the first time their value is read, modeling
    one sequential access to the advertiser's bid.
    """

    def __init__(
        self,
        bid: float,
        advertiser_id: int,
        collector: Collector = NULL,
        label: Optional[Hashable] = None,
    ) -> None:
        super().__init__(collector, label)
        self._item: Optional[Item] = (float(bid), int(advertiser_id))
        self.advertiser_ids = frozenset({int(advertiser_id)})

    def _produce_next(self) -> Optional[Item]:
        item, self._item = self._item, None
        if item is not None:
            self.pulls += 1
            self.collector.incr(metric_names.SORT_LEAF_READS)
        return item


class MergeOperator(SortStream):
    """A binary on-demand merge of two descending streams.

    Implements the paper's register semantics: a register holds the next
    candidate from one child; emitting sends the larger register upstream
    and clears it; a cleared register refills by pulling the child.  The
    registers are realized as per-child read cursors into the children's
    caches, which is observationally identical and lets children be
    shared by other operators.

    Attributes:
        advertiser_ids: The set ``I_v`` of advertisers below the operator.
        pulls: Number of items this operator has produced -- the paper's
            invocation count, at most ``|I_v|``.
    """

    def __init__(
        self,
        left: SortStream,
        right: SortStream,
        collector: Collector = NULL,
        label: Optional[Hashable] = None,
    ) -> None:
        super().__init__(collector, label)
        left_ids = getattr(left, "advertiser_ids", frozenset())
        right_ids = getattr(right, "advertiser_ids", frozenset())
        if left_ids & right_ids:
            raise InvalidPlanError(
                "merge operands must cover disjoint advertiser sets; got "
                f"overlap {set(left_ids & right_ids)!r}"
            )
        self.left = left
        self.right = right
        self.advertiser_ids = left_ids | right_ids
        self._left_cursor = 0
        self._right_cursor = 0

    def _produce_next(self) -> Optional[Item]:
        # Register refills read the children's caches directly when the
        # item is already materialized -- same replay accounting as
        # ``child.item()`` without re-entering the wrapper per item,
        # which is where the per-item engine spent most of its time on
        # replayed (shared or cross-round-reused) subtrees.
        counting = self.collector.enabled
        left = self.left
        cursor = self._left_cursor
        if cursor < len(left._cache):
            left_item: Optional[Item] = left._cache[cursor]
            if counting:
                self.collector.incr(metric_names.SORT_CACHE_REPLAYS)
        else:
            left_item = left.item(cursor)
        right = self.right
        cursor = self._right_cursor
        if cursor < len(right._cache):
            right_item: Optional[Item] = right._cache[cursor]
            if counting:
                self.collector.incr(metric_names.SORT_CACHE_REPLAYS)
        else:
            right_item = right.item(cursor)
        if left_item is None and right_item is None:
            return None
        if right_item is None or (
            left_item is not None
            and _rank_key(left_item) >= _rank_key(right_item)
        ):
            self._left_cursor += 1
            item = left_item
        else:
            self._right_cursor += 1
            item = right_item
        self.pulls += 1
        collector = self.collector
        collector.incr(metric_names.SORT_OPERATOR_PULLS)
        if collector.enabled and self.label is not None:
            collector.incr_keyed(metric_names.SORT_NODE_PULLS, self.label)
        return item
