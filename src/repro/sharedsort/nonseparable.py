"""Shared pruning for non-separable winner determination (Section V).

The non-separable path (Martin-Gehrke-Halpern 2008) prunes each slot to
its top-k advertisers by ``ctr_ij * b_i`` before matching.  The paper
notes "our work fits very well into this framework -- we can use the
shared top-k algorithms presented in this paper to find the top k
advertisers for each slot in the graph-pruning step".

When several auctions (phrases) with non-separable CTR matrices occur in
the same round, only the bids ``b_i`` are shared across the (phrase,
slot) scoring functions -- the same situation as Section III.  So each
(phrase, slot) pruning query runs the threshold algorithm over the
round's *shared* on-demand merge-sort network of bids, with the slot's
CTR column as the second sorted list; the network's caches carry work
across every slot of every phrase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.auction import Allocation
from repro.core.matching import hungarian_max_weight
from repro.core.ctr import MatrixCTRModel
from repro.errors import InvalidPlanError
from repro.sharedsort.plan import SharedSortPlan, build_shared_sort_plan
from repro.sharedsort.threshold import threshold_top_k

__all__ = ["SharedNonSeparableRound", "NonSeparableRoundResult"]


@dataclass
class NonSeparableRoundResult:
    """Outcome of resolving one round of non-separable auctions.

    Attributes:
        allocations: Per phrase, the winner-determination result.
        pruned_sizes: Per phrase, the pruned candidate-set size fed to
            the Hungarian matcher (at most ``k^2``).
        sorted_accesses: Total threshold-algorithm sorted accesses across
            all (phrase, slot) pruning queries.
        operator_pulls: Merge-operator pulls in the shared bid network
            (shared caches counted once).
    """

    allocations: Dict[str, Allocation]
    pruned_sizes: Dict[str, int]
    sorted_accesses: int
    operator_pulls: int


class SharedNonSeparableRound:
    """Resolves simultaneous non-separable auctions with shared pruning.

    Args:
        phrase_models: ``{phrase: MatrixCTRModel}`` -- each phrase's
            (possibly non-separable) CTR matrix over its advertisers.
        search_rates: Optional per-phrase rates for the offline shared
            sort plan (defaults to 1.0).

    The advertiser set of each phrase is its matrix's row set; the
    shared merge-sort plan over bids is built once (offline) from those
    sets.
    """

    def __init__(
        self,
        phrase_models: Mapping[str, MatrixCTRModel],
        search_rates: Mapping[str, float] | float = 1.0,
    ) -> None:
        if not phrase_models:
            raise InvalidPlanError("need at least one phrase")
        self.phrase_models = dict(phrase_models)
        self.phrase_advertisers = {
            phrase: tuple(sorted(model.rows))
            for phrase, model in self.phrase_models.items()
        }
        self.sort_plan: SharedSortPlan = build_shared_sort_plan(
            self.phrase_advertisers, search_rates
        )
        # Precomputed per-(phrase, slot) descending CTR-column orders --
        # CTRs change rarely (Section III footnote), bids every round.
        self._ctr_orders: Dict[Tuple[str, int], List[int]] = {}
        for phrase, model in self.phrase_models.items():
            for slot in range(model.num_slots):
                self._ctr_orders[(phrase, slot)] = sorted(
                    self.phrase_advertisers[phrase],
                    key=lambda i: (-model.ctr(i, slot), i),
                )

    def resolve(self, bids: Mapping[int, float]) -> NonSeparableRoundResult:
        """Resolve the round's auctions on this round's bids.

        Args:
            bids: ``{advertiser_id: b_i}``; must cover every advertiser
                of every phrase.
        """
        live = self.sort_plan.instantiate(bids)
        allocations: Dict[str, Allocation] = {}
        pruned_sizes: Dict[str, int] = {}
        sorted_accesses = 0

        for phrase, model in sorted(self.phrase_models.items()):
            k = model.num_slots
            advertisers = self.phrase_advertisers[phrase]
            candidates: set[int] = set()
            stream = live.stream_for_phrase(phrase)
            for slot in range(k):
                factors = {i: model.ctr(i, slot) for i in advertisers}
                result = threshold_top_k(
                    k,
                    stream,
                    self._ctr_orders[(phrase, slot)],
                    bids,
                    factors,
                )
                sorted_accesses += result.sorted_accesses
                candidates.update(result.ranking.advertiser_ids())
            pruned = sorted(candidates)
            pruned_sizes[phrase] = len(pruned)
            weights = [
                [model.ctr(i, slot) * bids[i] for slot in range(k)]
                for i in pruned
            ]
            assignment, total = hungarian_max_weight(weights)
            slots: List[int | None] = [None] * k
            for row, slot in enumerate(assignment):
                if slot is not None:
                    slots[slot] = pruned[row]
            allocations[phrase] = Allocation(tuple(slots), total)

        return NonSeparableRoundResult(
            allocations=allocations,
            pruned_sizes=pruned_sizes,
            sorted_accesses=sorted_accesses,
            operator_pulls=live.total_pulls(),
        )
