"""Derived statistics from shared primitive aggregates.

Section VII: bidding programs want quantities like the average or
variance of bids over a set of bid phrases.  Mean and variance are not
themselves semilattice (or even associative-commutative-with-safe-
sharing) operators, but both decompose into shareable primitives --
``sum``, ``count``, and ``sum of squares`` -- evaluated over the same
shared plan, which is exactly how the paper proposes combining
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional

from repro.aggregates.executor import GenericPlanExecutor
from repro.aggregates.operators import AggregateOperator, count_operator, sum_operator
from repro.algebra.axioms import Axiom, AxiomProfile
from repro.errors import InvalidPlanError
from repro.plans.dag import Plan

__all__ = ["MeanAggregate", "VarianceAggregate"]

Variable = Hashable


def _sum_of_squares_operator() -> AggregateOperator[float]:
    """Addition over squared scores -- an Abelian group like sum."""
    return AggregateOperator(
        name="sum-of-squares",
        combine=lambda a, b: a + b,
        lift=lambda score, _advertiser: float(score) * float(score),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5}),
        identity=0.0,
    )


@dataclass
class MeanAggregate:
    """Per-query mean of scores, computed from shared sum and count.

    Args:
        plan: A disjoint-operand plan (see
            :class:`~repro.aggregates.executor.GenericPlanExecutor`).
    """

    plan: Plan

    def __post_init__(self) -> None:
        self._sum = GenericPlanExecutor(self.plan, sum_operator())
        self._count = GenericPlanExecutor(self.plan, count_operator())

    def run_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Mean score per occurring query."""
        sums = self._sum.run_round(scores, occurring)
        counts = self._count.run_round(scores, occurring)
        out: Dict[str, float] = {}
        for name, total in sums.items():
            count = counts[name]
            if count <= 0:
                raise InvalidPlanError(f"query {name!r} aggregated nothing")
            out[name] = total / count
        return out


@dataclass
class VarianceAggregate:
    """Per-query population variance from shared sum/count/sum-of-squares."""

    plan: Plan

    def __post_init__(self) -> None:
        self._sum = GenericPlanExecutor(self.plan, sum_operator())
        self._count = GenericPlanExecutor(self.plan, count_operator())
        self._squares = GenericPlanExecutor(self.plan, _sum_of_squares_operator())

    def run_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Population variance of scores per occurring query.

        Computed as ``E[X^2] - E[X]^2``; tiny negative results from
        floating-point cancellation are clamped to zero.
        """
        sums = self._sum.run_round(scores, occurring)
        counts = self._count.run_round(scores, occurring)
        squares = self._squares.run_round(scores, occurring)
        out: Dict[str, float] = {}
        for name, total in sums.items():
            count = counts[name]
            if count <= 0:
                raise InvalidPlanError(f"query {name!r} aggregated nothing")
            mean = total / count
            out[name] = max(0.0, squares[name] / count - mean * mean)
        return out
