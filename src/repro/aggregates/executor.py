"""A generic shared-plan executor parameterized by the operator.

The Section II plan machinery only assumed a semilattice when deciding
*equivalence* (Lemma 1); the DAG itself can carry any associative,
commutative operator.  :class:`GenericPlanExecutor` evaluates a plan
with an arbitrary :class:`~repro.aggregates.operators.AggregateOperator`
whose profile includes A1 and A4 -- the combination required for
variable-set labels to determine node values.

For operators that are *not* idempotent (sum, count, product), correct
evaluation additionally requires that every node's operand variable
sets are disjoint, since ``x`` occurring on both sides would be counted
twice; the executor checks this once at construction and rejects plans
whose sharing relies on idempotence.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Mapping, Optional, TypeVar

from repro.aggregates.operators import AggregateOperator
from repro.errors import InvalidPlanError
from repro.plans.dag import Plan

__all__ = ["GenericPlanExecutor"]

T = TypeVar("T")
Variable = Hashable


class GenericPlanExecutor(Generic[T]):
    """Evaluates a shared plan under any associative-commutative operator.

    Args:
        plan: A validated complete plan.
        operator: The aggregate to run; its profile must include A1 and
            A4.  If it lacks A3 (idempotence), every internal node's
            operands must be disjoint -- the planners in
            :mod:`repro.plans` produce such plans whenever the instance's
            queries are built from disjoint fragments, and the
            constructor verifies it.
    """

    def __init__(self, plan: Plan, operator: AggregateOperator[T]) -> None:
        plan.validate()
        if not operator.profile.associative or not operator.profile.commutative:
            raise InvalidPlanError(
                f"operator {operator.name!r} must be associative and "
                "commutative to run over variable-set-labeled plans"
            )
        if not operator.profile.idempotent:
            for node in plan.internal_nodes():
                assert node.left is not None and node.right is not None
                left = plan.node(node.left).varset
                right = plan.node(node.right).varset
                if left & right:
                    raise InvalidPlanError(
                        f"operator {operator.name!r} is not idempotent but "
                        f"plan node {node.node_id} merges overlapping "
                        f"operands {sorted(left & right, key=repr)!r}"
                    )
        self.plan = plan
        self.operator = operator

    def run_round(
        self,
        scores: Mapping[Variable, float],
        occurring: Optional[Iterable[str]] = None,
    ) -> Dict[str, T]:
        """Evaluate the occurring queries; returns ``{name: aggregate}``."""
        plan = self.plan
        instance = plan.instance
        if occurring is None:
            names = [q.name for q in instance.queries] + [
                q.name for q in instance.trivial_queries
            ]
        else:
            names = list(occurring)
        cache: Dict[int, T] = {}

        def materialize(node_id: int) -> T:
            cached = cache.get(node_id)
            if cached is not None:
                return cached
            node = plan.node(node_id)
            if node.is_leaf:
                variable = node.variable
                try:
                    score = scores[variable]
                except KeyError:
                    raise InvalidPlanError(
                        f"no score provided for advertiser {variable!r}"
                    ) from None
                value = self.operator.lift(float(score), _as_int(variable))
            else:
                assert node.left is not None and node.right is not None
                value = self.operator.combine(
                    materialize(node.left), materialize(node.right)
                )
            cache[node_id] = value
            return value

        answers: Dict[str, T] = {}
        for name in names:
            query = instance.query_by_name(name)
            node_id = plan.query_node(query)
            if node_id is None:
                raise InvalidPlanError(f"plan does not answer query {name!r}")
            answers[name] = materialize(node_id)
        return answers


def _as_int(variable: Variable) -> int:
    if isinstance(variable, int):
        return variable
    return abs(hash(variable)) % (2**31)
