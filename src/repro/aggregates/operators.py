"""Concrete aggregation operators and their axiom profiles.

Each :class:`AggregateOperator` packages the binary combiner ``⊕``, a
*lift* from a raw per-advertiser value into the aggregation carrier, the
operator's axiom profile (which drives plan-sharing complexity per
Fig. 5), and -- where one exists -- the identity element.

The declared profiles are not taken on faith: the test suite projects
each operator onto small finite carriers and checks the axioms
exhaustively with :func:`repro.algebra.magmas.satisfied_axioms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Optional, Tuple, TypeVar

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.core.topk import TopKList, top_k_merge
from repro.errors import AlgebraError

__all__ = [
    "AggregateOperator",
    "sum_operator",
    "count_operator",
    "product_operator",
    "max_operator",
    "min_operator",
    "top_k_operator",
    "BloomFilter",
    "bloom_union_operator",
    "bloom_intersection_operator",
]

T = TypeVar("T")


@dataclass(frozen=True)
class AggregateOperator(Generic[T]):
    """A concrete binary aggregation operator.

    Attributes:
        name: Human-readable operator name.
        combine: The binary function ``⊕ : T x T -> T``.
        lift: Maps one advertiser's raw value (a float score, typically a
            bid) into the carrier ``T``.
        profile: The exact axiom profile the operator satisfies.
        identity: The identity element, or ``None`` when A2 fails.
    """

    name: str
    combine: Callable[[T, T], T]
    lift: Callable[[float, int], T]
    profile: AxiomProfile
    identity: Optional[T] = None

    def __post_init__(self) -> None:
        if (self.identity is not None) != self.profile.has_identity:
            raise AlgebraError(
                f"operator {self.name!r}: identity element and A2 in the "
                "profile must agree"
            )

    def fold(self, values) -> T:
        """Aggregate an iterable of carrier values left to right.

        Raises:
            AlgebraError: On an empty iterable with no identity element.
        """
        iterator = iter(values)
        try:
            accumulator = next(iterator)
        except StopIteration:
            if self.identity is None:
                raise AlgebraError(
                    f"operator {self.name!r} cannot aggregate nothing "
                    "(no identity element)"
                ) from None
            return self.identity
        for value in iterator:
            accumulator = self.combine(accumulator, value)
        return accumulator

    def __repr__(self) -> str:
        return f"AggregateOperator({self.name})"


def sum_operator() -> AggregateOperator[float]:
    """Real addition -- an Abelian group: {A1, A2, A4, A5}."""
    return AggregateOperator(
        name="sum",
        combine=lambda a, b: a + b,
        lift=lambda score, _advertiser: float(score),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5}),
        identity=0.0,
    )


def count_operator() -> AggregateOperator[int]:
    """Counting (each advertiser lifts to 1) -- same profile as sum."""
    return AggregateOperator(
        name="count",
        combine=lambda a, b: a + b,
        lift=lambda _score, _advertiser: 1,
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5}),
        identity=0,
    )


def product_operator() -> AggregateOperator[float]:
    """Multiplication on positive reals -- Abelian group.

    The lift clamps to a tiny positive value so zero scores do not
    annihilate the group structure (division must stay defined).
    """
    return AggregateOperator(
        name="product",
        combine=lambda a, b: a * b,
        lift=lambda score, _advertiser: max(float(score), 1e-12),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5}),
        identity=1.0,
    )


def max_operator() -> AggregateOperator[float]:
    """Maximum -- a semilattice; with ``-inf`` adjoined, it has identity."""
    return AggregateOperator(
        name="max",
        combine=lambda a, b: a if a >= b else b,
        lift=lambda score, _advertiser: float(score),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}),
        identity=float("-inf"),
    )


def min_operator() -> AggregateOperator[float]:
    """Minimum -- a semilattice with identity ``+inf``."""
    return AggregateOperator(
        name="min",
        combine=lambda a, b: a if a <= b else b,
        lift=lambda score, _advertiser: float(score),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}),
        identity=float("inf"),
    )


def top_k_operator(k: int) -> AggregateOperator[TopKList]:
    """The paper's top-k merge, wrapped as an AggregateOperator."""
    return AggregateOperator(
        name=f"top-{k}",
        combine=top_k_merge,
        lift=lambda score, advertiser: TopKList(k, [(score, advertiser)]),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}),
        identity=TopKList.empty(k),
    )


@dataclass(frozen=True)
class BloomFilter:
    """A fixed-width Bloom filter as an immutable bit mask.

    Attributes:
        bits: The filter contents as an int bit mask.
        width: Number of bits.
        num_hashes: Hash functions used per inserted element.
    """

    bits: int
    width: int = 64
    num_hashes: int = 3

    @classmethod
    def empty(cls, width: int = 64, num_hashes: int = 3) -> "BloomFilter":
        """The empty filter (identity for union)."""
        return cls(0, width, num_hashes)

    @classmethod
    def full(cls, width: int = 64, num_hashes: int = 3) -> "BloomFilter":
        """The all-ones filter (identity for intersection)."""
        return cls((1 << width) - 1, width, num_hashes)

    @classmethod
    def of(cls, element: int, width: int = 64, num_hashes: int = 3) -> "BloomFilter":
        """A filter containing one element."""
        bits = 0
        for round_index in range(num_hashes):
            position = hash((element, round_index)) % width
            bits |= 1 << position
        return cls(bits, width, num_hashes)

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR -- the union operator."""
        self._check_compatible(other)
        return BloomFilter(self.bits | other.bits, self.width, self.num_hashes)

    def intersection(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise AND -- the intersection operator."""
        self._check_compatible(other)
        return BloomFilter(self.bits & other.bits, self.width, self.num_hashes)

    def might_contain(self, element: int) -> bool:
        """Whether the filter possibly contains ``element``."""
        return self.of(
            element, self.width, self.num_hashes
        ).bits & self.bits == self.of(element, self.width, self.num_hashes).bits

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self.width != other.width or self.num_hashes != other.num_hashes:
            raise AlgebraError("incompatible Bloom filter parameters")


def bloom_union_operator(
    width: int = 64, num_hashes: int = 3
) -> AggregateOperator[BloomFilter]:
    """Bloom-filter union -- a semilattice with the empty filter as identity."""
    return AggregateOperator(
        name="bloom-union",
        combine=lambda a, b: a.union(b),
        lift=lambda _score, advertiser: BloomFilter.of(
            advertiser, width, num_hashes
        ),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}),
        identity=BloomFilter.empty(width, num_hashes),
    )


def bloom_intersection_operator(
    width: int = 64, num_hashes: int = 3
) -> AggregateOperator[BloomFilter]:
    """Bloom-filter intersection -- semilattice, identity all-ones."""
    return AggregateOperator(
        name="bloom-intersection",
        combine=lambda a, b: a.intersection(b),
        lift=lambda _score, advertiser: BloomFilter.of(
            advertiser, width, num_hashes
        ),
        profile=AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}),
        identity=BloomFilter.full(width, num_hashes),
    )
