"""Concrete aggregation operators beyond top-k (Section VII).

The paper's ongoing-work section considers sharing aggregates that
bidding programs want -- sums, counts, averages, maxima over sets of bid
phrases -- through the same abstract-operator lens.  This package
provides:

- :mod:`repro.aggregates.operators` -- concrete
  :class:`~repro.aggregates.operators.AggregateOperator` instances (sum,
  count, product, max, min, top-k, Bloom-filter union/intersection) with
  their exact axiom profiles, each checked against the algebra layer;
- :mod:`repro.aggregates.composite` -- derived statistics (mean,
  variance) computed by combining shared primitive aggregates, as the
  paper suggests;
- :mod:`repro.aggregates.executor` -- a generic shared-plan executor
  parameterized by the operator, so one plan DAG serves any semilattice
  (or weaker) aggregate.
"""

from repro.aggregates.composite import MeanAggregate, VarianceAggregate
from repro.aggregates.executor import GenericPlanExecutor
from repro.aggregates.operators import (
    AggregateOperator,
    BloomFilter,
    bloom_intersection_operator,
    bloom_union_operator,
    count_operator,
    max_operator,
    min_operator,
    product_operator,
    sum_operator,
    top_k_operator,
)

__all__ = [
    "AggregateOperator",
    "BloomFilter",
    "GenericPlanExecutor",
    "MeanAggregate",
    "VarianceAggregate",
    "bloom_intersection_operator",
    "bloom_union_operator",
    "count_operator",
    "max_operator",
    "min_operator",
    "product_operator",
    "sum_operator",
    "top_k_operator",
]
