"""Round-based auction engine tying the pieces together.

The engine is the "search provider" substrate: it batches incoming bid
phrases into rounds (:mod:`repro.engine.rounds`), resolves each round's
auctions with a shared plan or per-phrase scans
(:mod:`repro.engine.pipeline`), manages budgets and outstanding ads
(:mod:`repro.engine.budget_manager`), and simulates delayed user clicks
(:mod:`repro.engine.click_model`).
"""

from repro.engine.budget_manager import BudgetManager
from repro.engine.click_model import ClickEvent, DelayedClickModel
from repro.engine.pipeline import EngineReport, SharedAuctionEngine
from repro.engine.rounds import RoundBatcher

__all__ = [
    "BudgetManager",
    "ClickEvent",
    "DelayedClickModel",
    "EngineReport",
    "RoundBatcher",
    "SharedAuctionEngine",
]
