"""Round-based auction engine tying the pieces together.

The engine is the "search provider" substrate: it batches incoming bid
phrases into rounds (:mod:`repro.engine.rounds`), resolves each round's
auctions with a shared plan or per-phrase scans
(:mod:`repro.engine.pipeline`), manages budgets and outstanding ads
(:mod:`repro.engine.budget_manager`), simulates delayed user clicks
(:mod:`repro.engine.click_model`), and broadcasts every state change on
one typed invalidation bus (:mod:`repro.engine.changefeed`) that the
cross-round caches and plan maintenance consume, with an optional
adaptive cache policy on top (:mod:`repro.engine.autotune`).
"""

from repro.engine.autotune import CacheAutotuner
from repro.engine.budget_manager import BudgetManager
from repro.engine.changefeed import (
    AdvertiserAdded,
    AdvertiserRemoved,
    BidChanged,
    BudgetChanged,
    ChangeEvent,
    ChangeFeed,
    PhraseAdded,
    PhraseRemoved,
    QueryServed,
    RoundClosed,
)
from repro.engine.click_model import ClickEvent, DelayedClickModel
from repro.engine.pipeline import EngineReport, SharedAuctionEngine
from repro.engine.rounds import RoundBatcher, singleton_rounds
from repro.engine.sharded import ShardedEngine

__all__ = [
    "AdvertiserAdded",
    "AdvertiserRemoved",
    "BidChanged",
    "BudgetChanged",
    "BudgetManager",
    "CacheAutotuner",
    "ChangeEvent",
    "ChangeFeed",
    "ClickEvent",
    "DelayedClickModel",
    "EngineReport",
    "PhraseAdded",
    "PhraseRemoved",
    "QueryServed",
    "RoundBatcher",
    "RoundClosed",
    "SharedAuctionEngine",
    "ShardedEngine",
    "singleton_rounds",
]
