"""The end-to-end shared winner-determination engine.

:class:`SharedAuctionEngine` is the full pipeline of the paper: phrases
are batched into rounds; per round, advertiser scores ``b̂_i * c_i`` are
formed (with Section IV throttling against outstanding ads), the
occurring phrases' top-(k+1) rankings are computed through a shared
aggregation plan built offline by the Section II heuristic (or by
independent per-phrase scans, for the unshared baseline), slots are
allocated, clicks are priced with a configurable rule, displayed ads
become outstanding debt, and simulated clicks arrive with delay and are
settled against budgets.

The engine asks the plan for *k + 1* entries so generalized second
pricing can see the runner-up score without a second pass.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.budgets.incremental import IncrementalThrottleCache
from repro.budgets.outstanding import ClickDecayModel, NoDecay
from repro.budgets.throttle import exact_throttled_bid
from repro.core.advertiser import Advertiser
from repro.core.columnar import (
    ArrayScoreMap,
    ColumnarStore,
    columnar_top_k,
    require_numpy,
)
from repro.core.ctr import SeparableCTRModel
from repro.core.money import dollars_to_cents
from repro.core.topk import ScoredAdvertiser, TopKList, top_k_scan
from repro.engine.autotune import CacheAutotuner
from repro.engine.budget_manager import BudgetManager
from repro.engine.changefeed import BidChanged, ChangeFeed, RoundClosed
from repro.engine.click_model import DelayedClickModel
from repro.errors import InvalidAuctionError
from repro.instrument import NULL, Collector, names as metric_names
from repro.plans.executor import CrossRoundPlanExecutor, PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance

try:  # pragma: no cover - numpy ships with the package
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["SharedAuctionEngine", "EngineReport", "RoundReport"]


@dataclass
class RoundReport:
    """Work and money counters for one round.

    Attributes:
        round_index: The round number.
        occurring_phrases: Phrases auctioned this round.
        merges: Top-k merge operations performed (shared mode).
        scans: Advertiser entries scanned (leaf reads in shared mode;
            full per-phrase scans in unshared mode).
        revenue_cents: Click payments settled this round.
        forgiven_cents: Click value forgiven this round.
        displays: Ads displayed this round.
        clicks: Clicks that arrived this round.
        allocations: Per occurring phrase, the displayed ads as
            ``(slot, advertiser_id, price_cents)`` triples in slot
            order -- the round's full auction outcome, used by the
            differential tests to assert shared and unshared modes agree
            winner by winner.
        counters: When the engine runs with an enabled collector, the
            collector's counter increments attributable to this round
            (zero deltas omitted); ``None`` otherwise.
    """

    round_index: int
    occurring_phrases: Tuple[str, ...]
    merges: int = 0
    scans: int = 0
    revenue_cents: int = 0
    forgiven_cents: int = 0
    displays: int = 0
    clicks: int = 0
    allocations: Dict[str, Tuple[Tuple[int, int, int], ...]] = field(
        default_factory=dict
    )
    counters: Optional[Dict[str, int]] = None


@dataclass
class EngineReport:
    """Aggregate counters over a whole run.

    Attributes:
        counters: Cumulative counter increments across all absorbed
            rounds when the engine ran with an enabled collector,
            ``None`` otherwise.
    """

    rounds: int = 0
    auctions: int = 0
    merges: int = 0
    scans: int = 0
    revenue_cents: int = 0
    forgiven_cents: int = 0
    displays: int = 0
    clicks: int = 0
    history: List[RoundReport] = field(default_factory=list)
    counters: Optional[Dict[str, int]] = None

    def absorb(self, report: RoundReport) -> None:
        """Fold one round's counters into the totals."""
        self.rounds += 1
        self.auctions += len(report.occurring_phrases)
        self.merges += report.merges
        self.scans += report.scans
        self.revenue_cents += report.revenue_cents
        self.forgiven_cents += report.forgiven_cents
        self.displays += report.displays
        self.clicks += report.clicks
        if report.counters is not None:
            if self.counters is None:
                self.counters = {}
            for name, value in report.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
        self.history.append(report)


class SharedAuctionEngine:
    """Round-based sponsored-search engine with shared winner determination.

    Args:
        advertisers: The advertiser population; phrase interests and CTR
            factors are read from each advertiser.
        slot_factors: The separable slot factors ``d_j`` (non-increasing);
            their count is the number of slots ``k``.
        search_rates: ``{phrase: sr_q}`` for every phrase that can occur.
            Phrases mentioned by advertisers but absent here default to
            rate 1.0.
        mode: ``"shared"`` resolves rounds through a greedy shared
            aggregation plan (Section II; requires phrase-independent
            CTR factors); ``"shared-sort"`` runs the Section III
            pipeline -- shared on-demand merge-sort of bids plus the
            threshold algorithm per phrase -- honoring per-phrase CTR
            factors (:attr:`Advertiser.phrase_ctr_factors`);
            ``"unshared"`` scans each phrase's advertisers independently.
        layout: ``"object"`` (default) runs the per-advertiser Python
            hot paths; ``"columnar"`` transposes the population into a
            :class:`repro.core.columnar.ColumnarStore` and swaps the
            three hottest kernels for vectorized equivalents --
            effective scoring over occurring rows, per-phrase top-k via
            ``np.argpartition``
            (:func:`repro.core.columnar.columnar_top_k`), and
            shared-sort TA over presorted column indices
            (:class:`repro.sharedsort.columnar.ColumnarThresholdKernel`).
            Outcomes are byte-identical between layouts (the layout
            differential suite asserts it over 50 seeds); only the work
            counters move, exactly as between the cached and uncached
            engines.  Composes with every mode and with the cross-round
            caches, which run columnar-native: ``exec_cache`` keeps
            fragment top-k lists alive across rounds with dirty-row
            mask invalidation
            (:class:`repro.plans.columnar_exec.ColumnarFragmentExecutor`
            in cross-round mode) and ``sort_cache`` incrementally
            repairs the shared descending-bid order
            (:class:`repro.sharedsort.columnar.ColumnarSortCache`).
            ``throttle_mode="bounded"`` stays object-only -- its
            interval refinement is inherently per-advertiser.  Requires
            numpy.
        throttle: Apply Section IV bid throttling against outstanding ads.
        throttle_mode: How throttled bids reach the ranking stage.
            ``"exact"`` (default) computes every occurring advertiser's
            exact ``b̂`` up front (optionally memoized; see
            ``throttle_cache``).  ``"bounded"`` is the paper's Section
            IV-B regime: rank each phrase directly on lazily refined
            Hoeffding intervals, expanding an advertiser's largest
            outstanding ads only when two contenders are genuinely
            incomparable, and fall back to the exact DP only for the
            selected ``k + 1`` (pricing needs their precise values).
            Outcomes are bit-identical to ``"exact"``; only the work
            counters move.  Requires ``throttle=True`` and runs its own
            per-phrase selection, so it cannot combine with
            ``exec_cache`` / ``sort_cache``.
        throttle_cache: Memoize throttle problems and values across
            rounds in an
            :class:`repro.budgets.incremental.IncrementalThrottleCache`
            driven by the change feed: advertisers whose books did not
            move since they were last scored reuse their previous ``b̂``
            in O(1).  Composes with either ``throttle_mode`` and with
            the plan/sort caches.  Under ``cache_verify=True`` every
            reuse is cross-checked against a freshly built problem.
        exec_cache: Shared mode only: resolve rounds through a
            :class:`repro.plans.executor.CrossRoundPlanExecutor`, which
            keeps materialized top-k nodes alive between rounds and
            recomputes only the ancestor cone of advertisers whose
            effective score changed.  The dirty set flows over the
            engine's :class:`repro.engine.changefeed.ChangeFeed`: the
            budget manager publishes ``BudgetChanged`` as books move
            (clicks settled, ads displayed, outstanding expiries), the
            engine publishes ``BidChanged`` for auction-multiplicity
            changes and (under a decaying model) outstanding debt aging,
            and the executor drains its subscription each round.  Under
            ``cache_verify=True`` the executor still cross-checks the
            events against an exact score diff and raises on any
            undeclared change.  Outcomes are bit-identical with and
            without the cache; only the work counters move.
        exec_cache_capacity: Optional bound on resident cached nodes
            (LRU eviction); ``None`` keeps every node.
        planner: Stage-2 engine for the shared plan's greedy completion:
            ``"lazy"`` (default, CELF-style incremental rescoring) or
            ``"naive"`` (full rescan each step).  Both build identical
            plans; only planning-time work counters differ.
        sort_planner: Shared-sort mode's analogue of ``planner``: the
            engine completing the Section III merge-plan construction,
            ``"lazy"`` (default, versioned pair heap) or ``"naive"``
            (full same-size rescan each merge).  Both build
            byte-identical plans; only builder work counters differ.
        sort_cache: Shared-sort mode only: keep the round's merge-sort
            streams alive in a
            :class:`repro.sharedsort.cache.CrossRoundSortCache` and
            rebuild, next round, only the streams above advertisers
            whose effective bid actually changed.  The cache consumes
            the same change-feed events as the exec cache and refines
            them by its own value domain -- a declared advertiser counts
            as dirty only if its *bid* really moved -- with the exact
            bid diff kept as the ``cache_verify`` soundness cross-check.
            Outcomes are bit-identical with and without the cache;
            reused streams replay their output caches, so
            ``sort.operator_pulls`` / ``sort.leaf_reads`` drop while
            ``sort.streams_reused`` counts the savings.
        cache_verify: Keep the caches' exact value diff as a soundness
            cross-check on the change-feed events (the default).  An
            event-uncovered change then raises
            ``InvalidPlanError``; ``False`` trusts the feed and skips
            comparing undeclared values.
        cache_autotune: Attach a
            :class:`repro.engine.autotune.CacheAutotuner` to the active
            cross-round cache: rounds run fresh while the windowed dirty
            fraction makes caching a net loss (``cache.bypass_rounds``)
            and the exec cache's LRU bound tracks the observed working
            set (``cache.autotune_resizes``).  Requires ``exec_cache``
            or ``sort_cache``.
        decay: Click-decay model for outstanding ads.
        mean_click_delay_rounds: Mean click arrival delay.
        click_horizon_rounds: Rounds after which an unclicked ad expires.
        seed: Seed for phrase occurrence and click simulation.
        collector: Optional :class:`repro.instrument.Collector`.  When an
            enabled collector is supplied, the engine threads it through
            the plan executor / shared-sort network / threshold algorithm
            / per-phrase scans, flushes ``engine.*`` rollups, and attaches
            per-round counter deltas to :attr:`RoundReport.counters` and
            cumulative totals to :attr:`EngineReport.counters`.  ``None``
            (the default) uses the shared no-op collector; the engine
            then does no metric bookkeeping beyond the report fields.

    Determinism contract: a fixed ``(advertisers, slot_factors,
    search_rates, mode, throttle, decay, click delays, seed)`` tuple
    yields a bit-identical run -- same occurring phrases, allocations,
    prices, clicks, and work counters -- independent of process, platform,
    and ``PYTHONHASHSEED`` (all set/dict iteration feeding planning or
    sampling is explicitly sorted).  All randomness flows from the single
    ``random.Random(seed)`` shared by phrase sampling and the click
    model, so two engines in different modes stay draw-for-draw aligned
    exactly as long as their outcomes are identical -- which the
    differential tests assert they always are.
    """

    def __init__(
        self,
        advertisers: Sequence[Advertiser],
        slot_factors: Sequence[float],
        search_rates: Mapping[str, float],
        mode: str = "shared",
        layout: str = "object",
        throttle: bool = True,
        throttle_mode: str = "exact",
        throttle_cache: bool = False,
        exec_cache: bool = False,
        exec_cache_capacity: Optional[int] = None,
        cache_verify: bool = True,
        cache_autotune: bool = False,
        planner: str = "lazy",
        sort_planner: str = "lazy",
        sort_cache: bool = False,
        decay: Optional[ClickDecayModel] = None,
        mean_click_delay_rounds: float = 2.0,
        click_horizon_rounds: int = 16,
        seed: int = 0,
        collector: Optional[Collector] = None,
    ) -> None:
        if mode not in ("shared", "unshared", "shared-sort"):
            raise InvalidAuctionError(f"unknown engine mode {mode!r}")
        if layout not in ("object", "columnar"):
            raise InvalidAuctionError(f"unknown layout {layout!r}")
        if layout == "columnar":
            require_numpy()
            if throttle_mode == "bounded":
                raise InvalidAuctionError(
                    "layout='columnar' vectorizes exact scoring; the "
                    "bounded interval regime refines advertisers one at "
                    "a time and stays on layout='object'"
                )
        if throttle_mode not in ("exact", "bounded"):
            raise InvalidAuctionError(
                f"unknown throttle mode {throttle_mode!r}"
            )
        if throttle_mode == "bounded" and not throttle:
            raise InvalidAuctionError(
                "throttle_mode='bounded' ranks on throttled-bid bounds "
                "and is meaningless with throttle=False"
            )
        if throttle_mode == "bounded" and (exec_cache or sort_cache):
            raise InvalidAuctionError(
                "throttle_mode='bounded' runs its own bound-driven "
                "per-phrase selection and cannot combine with "
                "exec_cache/sort_cache"
            )
        if throttle_cache and not throttle:
            raise InvalidAuctionError(
                "throttle_cache memoizes throttle problems and requires "
                "throttle=True"
            )
        if exec_cache and mode != "shared":
            raise InvalidAuctionError(
                "exec_cache requires mode='shared' (the cross-round cache "
                "lives in the shared plan executor)"
            )
        if sort_cache and mode != "shared-sort":
            raise InvalidAuctionError(
                "sort_cache requires mode='shared-sort' (the cross-round "
                "cache holds merge-sort streams)"
            )
        if cache_autotune and not (exec_cache or sort_cache):
            raise InvalidAuctionError(
                "cache_autotune requires a cross-round cache to tune "
                "(exec_cache or sort_cache)"
            )
        self.advertisers = tuple(advertisers)
        self.mode = mode
        self.layout = layout
        self.throttle = throttle
        self.throttle_mode = throttle_mode
        self.throttle_cache = throttle_cache
        self.exec_cache = exec_cache
        self.collector: Collector = collector if collector is not None else NULL
        self._by_id = {a.advertiser_id: a for a in self.advertisers}
        if len(self._by_id) != len(self.advertisers):
            raise InvalidAuctionError("duplicate advertiser ids")
        self.ctr_model = SeparableCTRModel(
            {a.advertiser_id: a.ctr_factor for a in self.advertisers},
            slot_factors,
        )
        self.k = len(tuple(slot_factors))
        phrase_map: Dict[str, List[int]] = {}
        for advertiser in self.advertisers:
            # Iterate phrases sorted: frozenset order depends on string
            # hashing, and letting it leak into dict build order would
            # make plan tie-breaking (hence work counters) vary with
            # PYTHONHASHSEED.  Outcomes were never affected; the plan
            # *shape* was.
            for phrase in sorted(advertiser.phrases):
                phrase_map.setdefault(phrase, []).append(
                    advertiser.advertiser_id
                )
        self.phrase_advertisers: Dict[str, Tuple[int, ...]] = {
            phrase: tuple(sorted(ids))
            for phrase, ids in sorted(phrase_map.items())
        }
        self.search_rates: Dict[str, float] = {
            phrase: float(search_rates.get(phrase, 1.0))
            for phrase in self.phrase_advertisers
        }
        budgets = {
            a.advertiser_id: dollars_to_cents(a.daily_budget)
            for a in self.advertisers
            if a.daily_budget != float("inf")
        }
        # A click arriving more than click_horizon_rounds after display
        # is never scheduled (DelayedClickModel drops it), so an
        # outstanding ad older than that can never be clicked and may
        # be discarded; +1 keeps an ad alive through the last round its
        # click can still arrive.  An unbounded default ledger makes the
        # Section IV exact throttle -- O(min(2^l, l*beta)) in the
        # outstanding count l -- grow per tick, turning long serving
        # sessions quadratic.
        decay_model = (
            decay
            if decay is not None
            else NoDecay(horizon=click_horizon_rounds + 1)
        )
        # The unified invalidation bus.  Consumers (the cross-round
        # caches below; externally, plan maintenance or a serving loop)
        # subscribe to it; the budget manager and the engine publish to
        # it.  With no subscriber, `changefeed.active` is False and every
        # publish site is skipped, so uncached runs pay nothing.
        self.changefeed = ChangeFeed(self.collector)
        self.budget_manager = BudgetManager(
            budgets, decay_model, changefeed=self.changefeed
        )
        self.autotuner = (
            CacheAutotuner(collector=self.collector) if cache_autotune else None
        )
        # The incremental throttle layer.  Bounded selection always runs
        # through the cache object (it owns the bound/exact machinery and
        # the throttle.* counters); memoization across rounds is what
        # `throttle_cache` switches on, and only a memoizing cache needs
        # (or takes) a change-feed subscription.
        self._throttle_cache: Optional[IncrementalThrottleCache] = None
        if throttle and (throttle_cache or throttle_mode == "bounded"):
            self._throttle_cache = IncrementalThrottleCache(
                self.budget_manager,
                self.collector,
                verify=cache_verify,
                memoize=throttle_cache,
            )
            if throttle_cache:
                self._throttle_cache.connect(self.changefeed)
        # Publisher-side event detection the budget manager cannot see:
        # auction-multiplicity changes (m_i feeds the throttle problem)
        # and whether outstanding debt re-weighs every round.
        self._last_multiplicity: Dict[int, int] = {}
        self._decay_varies = not isinstance(decay_model, NoDecay)
        self._rng = random.Random(seed)
        self.click_model = DelayedClickModel(
            mean_click_delay_rounds, click_horizon_rounds, self._rng
        )
        self._executor: Optional[PlanExecutor] = None
        self._sort_plan = None
        self._sort_cache = None
        self._columnar_exec = None
        self._columnar_sort = None
        self._store: Optional[ColumnarStore] = None
        if layout == "columnar":
            self._store = ColumnarStore.from_advertisers(self.advertisers)
            # Full-length scratch: the scoring stage scatters the round's
            # effective bids / scores into row space so every downstream
            # kernel indexes by row with no per-id lookups.  Rows outside
            # the round's occurring set hold stale values by design --
            # kernels only ever read occurring rows.
            self._eff_by_row = np.zeros(self._store.size, dtype=np.float64)
            self._score_by_row = np.zeros(self._store.size, dtype=np.float64)
            # -1 == "never scored", matching the object path's dict-absent
            # semantics for the multiplicity change feed.
            self._last_m_row = np.full(self._store.size, -1, dtype=np.int64)
            self._occurring_rows = None
        if throttle_mode == "bounded":
            # Bound-driven selection ranks each phrase directly from the
            # throttle cache's intervals; no aggregation plan or shared
            # sort network is ever consulted, so none is built.
            pass
        elif mode == "shared":
            instance = SharedAggregationInstance(
                AggregateQuery(
                    phrase, ids, self.search_rates[phrase]
                )
                for phrase, ids in self.phrase_advertisers.items()
            )
            if layout == "columnar":
                # The greedy plan's sharing structure collapses to
                # fragment row slices in array space; the plan DAG is
                # never built.  With exec_cache the executor keeps the
                # fragment lists alive across rounds and rescans only
                # fragments touching a dirty row -- the DAG-node
                # ancestor cone becomes a row-mask lookup.
                from repro.plans.columnar_exec import ColumnarFragmentExecutor

                self._columnar_exec = ColumnarFragmentExecutor(
                    instance,
                    self._store,
                    self.k + 1,
                    self.collector,
                    cross_round=exec_cache,
                    verify=cache_verify,
                    autotuner=self.autotuner,
                )
                if exec_cache:
                    self._columnar_exec.connect(self.changefeed)
            else:
                strategy = "cover" if len(instance.variables) > 64 else "full"
                plan = greedy_shared_plan(
                    instance,
                    pair_strategy=strategy,
                    planner=planner,
                    collector=self.collector,
                )
                # k + 1 so GSP can read the runner-up score.
                if exec_cache:
                    executor = CrossRoundPlanExecutor(
                        plan,
                        self.k + 1,
                        self.collector,
                        capacity=exec_cache_capacity,
                        verify=cache_verify,
                        autotuner=self.autotuner,
                    )
                    executor.connect(self.changefeed)
                    self._executor = executor
                else:
                    self._executor = PlanExecutor(
                        plan, self.k + 1, self.collector
                    )
            # Phrases with identical advertiser sets are A-equivalent and
            # deduplicate to one plan query; map each phrase to the
            # surviving query's name.
            by_varset = {
                q.variables: q.name
                for q in instance.queries + instance.trivial_queries
            }
            self._phrase_alias: Dict[str, str] = {
                phrase: by_varset[frozenset(ids)]
                for phrase, ids in self.phrase_advertisers.items()
            }
        elif mode == "shared-sort" and layout == "columnar":
            # One shared lexsort per round replaces the merge network;
            # per-phrase CTR presorts live in the store.  With
            # sort_cache the shared order persists across rounds and
            # only dirty rows are re-ranked into it.
            from repro.sharedsort.columnar import (
                ColumnarSortCache,
                ColumnarThresholdKernel,
            )

            columnar_sort_cache = None
            if sort_cache:
                columnar_sort_cache = ColumnarSortCache(
                    self._store,
                    self.collector,
                    verify=cache_verify,
                    autotuner=self.autotuner,
                )
                columnar_sort_cache.connect(self.changefeed)
            self._columnar_sort = ColumnarThresholdKernel(
                self._store,
                self.k + 1,
                self.collector,
                cache=columnar_sort_cache,
            )
        elif mode == "shared-sort":
            from repro.sharedsort.cache import CrossRoundSortCache
            from repro.sharedsort.plan import build_shared_sort_plan

            self._sort_plan = build_shared_sort_plan(
                self.phrase_advertisers,
                self.search_rates,
                planner=sort_planner,
                collector=self.collector,
            )
            if sort_cache:
                self._sort_cache = CrossRoundSortCache(
                    self._sort_plan,
                    self.collector,
                    verify=cache_verify,
                    autotuner=self.autotuner,
                )
                self._sort_cache.connect(self.changefeed)
            # Precomputed per-phrase descending c_i^q orders (Section III
            # treats CTR factors as recalculated only occasionally).
            self._ctr_orders: Dict[str, List[int]] = {
                phrase: sorted(
                    ids,
                    key=lambda i: (
                        -self._by_id[i].ctr_factor_for(phrase),
                        i,
                    ),
                )
                for phrase, ids in self.phrase_advertisers.items()
            }
        self._round_index = 0

    # ------------------------------------------------------------------
    # round resolution
    # ------------------------------------------------------------------
    def sample_occurring_phrases(self) -> List[str]:
        """Draw this round's phrases: independent Bernoulli per phrase."""
        return [
            phrase
            for phrase in sorted(self.phrase_advertisers)
            if self._rng.random() < self.search_rates[phrase]
        ]

    def run_round(
        self, occurring: Optional[Iterable[str]] = None
    ) -> RoundReport:
        """Resolve one round end to end.

        Args:
            occurring: The phrases that occur; sampled from the search
                rates when omitted.

        Returns:
            The round's report.  With an enabled collector the report
            additionally carries the round's counter deltas in
            :attr:`RoundReport.counters`.
        """
        return self._rollup(lambda: self._resolve_round(occurring))

    def serve_query(self, phrase: str) -> RoundReport:
        """Resolve one query-at-a-time tick (the serving regime).

        Serving collapses the round to a single query: the tick delivers
        whatever clicks came due, scores only ``phrase``'s advertisers
        (auction multiplicity is always 1), ranks the one phrase through
        the configured machinery, allocates, and closes the tick on the
        change feed -- so a connected cross-round cache drains its
        subscription *per query* instead of per round.  The serving
        differential suite asserts this path is outcome-identical to
        ``run_round([phrase])``, which is what makes the query-at-a-time
        engine provably equivalent to the batch engine it grew out of.

        Args:
            phrase: The single bid phrase the query resolved to.

        Returns:
            The tick's report (``occurring_phrases`` holds one phrase).
        """
        return self._rollup(lambda: self._serve_query(phrase))

    def _rollup(self, resolve) -> RoundReport:
        """Run ``resolve`` with the engine-level counter rollup.

        Shared by the batch and serving entry points: with the null
        collector it is a single call, with an enabled collector it
        times the resolution and attaches the counter delta.
        """
        collector = self.collector
        if not collector.enabled:
            return resolve()
        snapshot = collector.snapshot()
        with collector.timer(metric_names.ENGINE_ROUND_TIMER):
            report = resolve()
        collector.incr(metric_names.ENGINE_ROUNDS)
        collector.incr(metric_names.ENGINE_PHRASES, len(report.occurring_phrases))
        collector.incr(metric_names.ENGINE_DISPLAYS, report.displays)
        collector.incr(metric_names.ENGINE_CLICKS, report.clicks)
        collector.incr(metric_names.ENGINE_REVENUE_CENTS, report.revenue_cents)
        collector.incr(metric_names.ENGINE_FORGIVEN_CENTS, report.forgiven_cents)
        report.counters = collector.delta_since(snapshot)
        collector.event(
            "engine.round",
            round_index=report.round_index,
            phrases=len(report.occurring_phrases),
            displays=report.displays,
            clicks=report.clicks,
            revenue_cents=report.revenue_cents,
        )
        return report

    def _resolve_round(
        self, occurring: Optional[Iterable[str]] = None
    ) -> RoundReport:
        """The uninstrumented round resolution (see :meth:`run_round`)."""
        round_index = self._round_index
        self._round_index += 1
        phrases = (
            sorted(occurring)
            if occurring is not None
            else self.sample_occurring_phrases()
        )
        unknown = [p for p in phrases if p not in self.phrase_advertisers]
        if unknown:
            raise InvalidAuctionError(f"no advertisers bid on {unknown!r}")
        report = RoundReport(round_index, tuple(phrases))

        self._deliver_due_clicks(round_index, report)

        if not phrases:
            if self.changefeed.active:
                self.changefeed.publish(RoundClosed(round_index))
            return report

        if self.throttle_mode == "bounded":
            rankings, effective_bid_cents = self._bounded_rankings(
                phrases, round_index, report
            )
        else:
            scores, effective_bid_cents = self._effective_scores(
                phrases, round_index
            )
            rankings = self._rank_phrases(
                phrases, scores, effective_bid_cents, report
            )
        for phrase in phrases:
            self._allocate_phrase(
                phrase, rankings[phrase], effective_bid_cents, round_index,
                report,
            )
        if self.changefeed.active:
            self.changefeed.publish(RoundClosed(round_index))
        return report

    def _serve_query(self, phrase: str) -> RoundReport:
        """The uninstrumented single-query tick (see :meth:`serve_query`)."""
        round_index = self._round_index
        self._round_index += 1
        if phrase not in self.phrase_advertisers:
            raise InvalidAuctionError(f"no advertisers bid on {[phrase]!r}")
        report = RoundReport(round_index, (phrase,))
        self._deliver_due_clicks(round_index, report)
        if self.throttle_mode == "bounded":
            rankings, effective_bid_cents = self._bounded_rankings(
                (phrase,), round_index, report
            )
        else:
            scores, effective_bid_cents = self._effective_scores(
                (phrase,), round_index
            )
            rankings = self._rank_phrases(
                (phrase,), scores, effective_bid_cents, report
            )
        self._allocate_phrase(
            phrase, rankings[phrase], effective_bid_cents, round_index, report
        )
        if self.changefeed.active:
            self.changefeed.publish(RoundClosed(round_index))
        return report

    # ------------------------------------------------------------------
    # round stages (shared by batch rounds and query-at-a-time serving)
    # ------------------------------------------------------------------
    def _deliver_due_clicks(
        self, round_index: int, report: RoundReport
    ) -> None:
        """Stage 1: settle due clicks and expire outstanding ads.

        The budget manager publishes BudgetChanged for every
        settle/display/expiry itself; the engine only publishes what the
        books cannot see (decaying outstanding debt re-weighing).
        """
        for click in self.click_model.arrivals(round_index):
            charge = self.budget_manager.settle_click(
                click.advertiser_id,
                click.price_cents,
                click.display_round,
                handle=click.ledger_handle,
            )
            report.revenue_cents += charge.charged_cents
            report.forgiven_cents += charge.forgiven_cents
            report.clicks += 1
        self.budget_manager.expire_outstanding(round_index)
        if self.changefeed.active and self._decay_varies:
            # A decaying model re-weighs every outstanding ad each
            # round, so any advertiser carrying debt can move.
            for advertiser_id in sorted(
                self.budget_manager.outstanding_counts()
            ):
                self.changefeed.publish(BidChanged(advertiser_id))

    def _effective_scores(
        self, phrases: Sequence[str], round_index: int
    ) -> Tuple[Mapping[int, float], Mapping[int, float]]:
        """Stage 2: effective scores ``b̂_i * c_i`` for the occurring set.

        Returns:
            ``(scores, effective_bid_cents)`` over exactly the
            advertisers bidding on ``phrases`` (plain dicts under the
            object layout, :class:`repro.core.columnar.ArrayScoreMap`
            adapters under the columnar layout -- values are
            bit-identical either way).
        """
        if self._store is not None:
            return self._effective_scores_columnar(phrases, round_index)
        auctions_of: Dict[int, int] = {}
        for phrase in phrases:
            for advertiser_id in self.phrase_advertisers[phrase]:
                auctions_of[advertiser_id] = auctions_of.get(advertiser_id, 0) + 1
        scores: Dict[int, float] = {}
        effective_bid_cents: Dict[int, float] = {}
        cache = self._throttle_cache
        for advertiser_id, m in auctions_of.items():
            advertiser = self._by_id[advertiser_id]
            bid_cents = dollars_to_cents(advertiser.bid)
            if self.throttle:
                if cache is not None:
                    effective = cache.exact_bid(
                        advertiser_id, bid_cents, m, round_index
                    )
                else:
                    problem = self.budget_manager.throttle_problem(
                        advertiser_id, bid_cents, m, round_index
                    )
                    if (
                        self.collector.enabled
                        and problem.bid_cents > 0
                        and not problem.trivially_unthrottled()
                    ):
                        # Count real DP/enumeration runs here too, so
                        # the exact-recompute baseline and the throttle
                        # cache report work through one counter.
                        self.collector.incr(
                            metric_names.THROTTLE_EXACT_FALLBACKS
                        )
                    effective = exact_throttled_bid(problem)
            else:
                effective = float(
                    min(bid_cents, self.budget_manager.remaining_cents(advertiser_id))
                )
            effective_bid_cents[advertiser_id] = effective
            scores[advertiser_id] = effective / 100.0 * advertiser.ctr_factor

        if self.changefeed.active:
            # An advertiser whose auction multiplicity m_i moved since it
            # was last scored gets a BidChanged: m_i feeds the throttle
            # problem, so the effective bid (hence score) can move with
            # no budget event at all.
            for advertiser_id, m in auctions_of.items():
                if self._last_multiplicity.get(advertiser_id) != m:
                    self.changefeed.publish(BidChanged(advertiser_id))
            self._last_multiplicity.update(auctions_of)
        return scores, effective_bid_cents

    def _effective_scores_columnar(
        self, phrases: Sequence[str], round_index: int
    ) -> Tuple[ArrayScoreMap, ArrayScoreMap]:
        """Stage 2 vectorized: whole-array scoring over occurring rows.

        Bit-identical to the object stage: for an advertiser with no
        outstanding debt the Section IV exact throttle collapses to the
        closed form ``min(m * min(b, β), β) / m`` (with an empty ledger
        the DP/enumeration has a single outcome with spend 0), which is
        computed here as three int64 array ops and one true division --
        ``int64/int64`` and Python ``int/int`` both round correctly, so
        the floats agree bitwise.  Debt-carrying advertisers (a small
        minority of any round) drop to the object path's exact
        DP/enumeration per advertiser.
        """
        store = self._store
        assert store is not None
        counts = np.zeros(store.size, dtype=np.int64)
        for phrase in phrases:
            # Rows within one phrase are distinct, so fancy-index += is
            # an exact per-phrase increment.
            counts[store.phrase_rows(phrase)] += 1
        rows = np.flatnonzero(counts)
        m = counts[rows]
        ids_sub = store.ids[rows]
        spent_map = self.budget_manager.spent_snapshot()
        spent = np.zeros(store.size, dtype=np.int64)
        if spent_map:
            spent[store.rows_of(list(spent_map))] = np.fromiter(
                spent_map.values(), dtype=np.int64, count=len(spent_map)
            )
        remaining_sub = np.maximum(store.budget_cents - spent, 0)[rows]
        bid_sub = store.bid_cents[rows]
        collector = self.collector
        cache = self._throttle_cache
        if self.throttle and cache is not None:
            # Memoized exact path: the cache owns the throttle.* metric
            # bookkeeping and the change-feed-driven reuse, both keyed
            # per advertiser, so scoring stays a per-id loop here.
            effective_sub = np.empty(len(rows), dtype=np.float64)
            for position in range(len(rows)):
                effective_sub[position] = cache.exact_bid(
                    int(ids_sub[position]),
                    int(bid_sub[position]),
                    int(m[position]),
                    round_index,
                )
        elif self.throttle:
            capped = np.minimum(bid_sub, remaining_sub)
            effective_sub = np.minimum(m * capped, remaining_sub) / m
            fallbacks = 0
            for advertiser_id in sorted(self.budget_manager.outstanding_counts()):
                position = int(np.searchsorted(ids_sub, advertiser_id))
                if (
                    position == len(ids_sub)
                    or int(ids_sub[position]) != advertiser_id
                ):
                    continue  # carries debt but occurs in no phrase
                problem = self.budget_manager.throttle_problem(
                    advertiser_id,
                    int(bid_sub[position]),
                    int(m[position]),
                    round_index,
                )
                if (
                    collector.enabled
                    and problem.bid_cents > 0
                    and not problem.trivially_unthrottled()
                ):
                    collector.incr(metric_names.THROTTLE_EXACT_FALLBACKS)
                effective_sub[position] = exact_throttled_bid(problem)
                fallbacks += 1
            if collector.enabled and fallbacks:
                collector.incr(
                    metric_names.COLUMNAR_THROTTLE_FALLBACKS, fallbacks
                )
        else:
            effective_sub = np.minimum(bid_sub, remaining_sub).astype(
                np.float64
            )
        score_sub = effective_sub / 100.0 * store.ctr_factors[rows]
        self._eff_by_row[rows] = effective_sub
        self._score_by_row[rows] = score_sub
        self._occurring_rows = rows
        if collector.enabled:
            collector.incr(metric_names.COLUMNAR_SCORE_BATCHES)
            collector.incr(metric_names.COLUMNAR_SCORE_ROWS, int(len(rows)))
        if self.changefeed.active:
            # Same publisher contract as the object path (multiplicity
            # feeds the throttle problem); the per-round event *set* is
            # identical, published in ascending-id order.
            for row in rows[self._last_m_row[rows] != m]:
                self.changefeed.publish(BidChanged(int(store.ids[row])))
            self._last_m_row[rows] = m
        return (
            ArrayScoreMap(ids_sub, score_sub),
            ArrayScoreMap(ids_sub, effective_sub),
        )

    def _rank_phrases(
        self,
        phrases: Sequence[str],
        scores: Mapping[int, float],
        effective_bid_cents: Mapping[int, float],
        report: RoundReport,
    ) -> Dict[str, TopKList]:
        """Stage 3: rankings via shared plan, shared sort + TA, or scans."""
        rankings: Dict[str, TopKList] = {}
        if self.mode == "shared":
            canonical = sorted({self._phrase_alias[p] for p in phrases})
            if self._columnar_exec is not None:
                # In cross-round mode the executor drains its
                # change-feed subscription inside run_round, exactly
                # like the object CrossRoundPlanExecutor below.
                result = self._columnar_exec.run_round(
                    self._score_by_row, canonical,
                    rows=self._occurring_rows,
                )
            else:
                assert self._executor is not None
                # A connected CrossRoundPlanExecutor drains its
                # change-feed subscription inside run_round; the base
                # executor just runs.
                result = self._executor.run_round(scores, canonical)
            rankings = {
                phrase: result.answers[self._phrase_alias[phrase]]
                for phrase in phrases
            }
            report.merges += result.merges_performed
            report.scans += result.advertisers_scanned
        elif self.mode == "shared-sort" and self._columnar_sort is not None:
            kernel = self._columnar_sort
            # The shared presort materializes every occurring row once
            # (only the repaired rows, under the sort cache); report it
            # where the object path reports network pulls.
            report.merges += kernel.begin_round(
                self._eff_by_row, self._occurring_rows
            )
            for phrase in phrases:
                ranking, sorted_accesses = kernel.rank_phrase(phrase)
                rankings[phrase] = ranking
                report.scans += sorted_accesses
        elif self.mode == "shared-sort":
            assert self._sort_plan is not None
            from repro.sharedsort.threshold import threshold_top_k

            # Section III: bids are shared across phrases; CTR factors
            # may differ per phrase, so each phrase runs the threshold
            # algorithm over the shared descending-bid streams.
            bids = {
                advertiser_id: value / 100.0
                for advertiser_id, value in effective_bid_cents.items()
            }
            if self._sort_cache is not None:
                live = self._sort_cache.instantiate(bids, self.collector)
            else:
                live = self._sort_plan.instantiate(bids, self.collector)
            for phrase in phrases:
                ids = self.phrase_advertisers[phrase]
                factors = {
                    i: self._by_id[i].ctr_factor_for(phrase) for i in ids
                }
                ta = threshold_top_k(
                    self.k + 1,
                    live.stream_for_phrase(phrase),
                    self._ctr_orders[phrase],
                    bids,
                    factors,
                    self.collector,
                )
                rankings[phrase] = ta.ranking
                report.scans += ta.sorted_accesses
            # round_pulls == total_pulls for a fresh network; under the
            # cross-round cache it excludes pulls adopted streams
            # performed in earlier rounds.
            report.merges += live.round_pulls()
        elif self._store is not None:
            store = self._store
            for phrase in phrases:
                phrase_rows = store.phrase_rows(phrase)
                report.scans += len(phrase_rows)
                rankings[phrase] = columnar_top_k(
                    self.k + 1,
                    self._score_by_row[phrase_rows],
                    store.ids[phrase_rows],
                    self.collector,
                )
        else:
            for phrase in phrases:
                ids = self.phrase_advertisers[phrase]
                report.scans += len(ids)
                rankings[phrase] = top_k_scan(
                    self.k + 1,
                    (ScoredAdvertiser(scores[i], i) for i in ids),
                    self.collector,
                )
        return rankings

    def _bounded_rankings(
        self, phrases: Sequence[str], round_index: int, report: RoundReport
    ) -> Tuple[Dict[str, TopKList], Dict[int, float]]:
        """Stages 2+3 fused, Section IV-B style: rank on bid bounds.

        Each phrase's top-(k + 1) is selected directly from lazily
        refined throttled-bid intervals; only the selected advertisers
        are resolved exactly (GSP pricing needs their precise ``b̂``),
        so ``effective_bid_cents`` covers exactly the selected set.
        Outcome-identical to the exact path: interval decisions are only
        taken outside the bounds' floating-point noise, and anything
        closer is resolved exactly and compared with the engine's own
        score floats (ties by lower advertiser id, as everywhere).
        """
        cache = self._throttle_cache
        assert cache is not None
        auctions_of: Dict[int, int] = {}
        for phrase in phrases:
            for advertiser_id in self.phrase_advertisers[phrase]:
                auctions_of[advertiser_id] = auctions_of.get(advertiser_id, 0) + 1
        rankings: Dict[str, TopKList] = {}
        effective_bid_cents: Dict[int, float] = {}
        for phrase in phrases:
            ids = self.phrase_advertisers[phrase]
            report.scans += len(ids)
            contenders = []
            for advertiser_id in ids:
                advertiser = self._by_id[advertiser_id]
                factor = (
                    advertiser.ctr_factor_for(phrase)
                    if self.mode == "shared-sort"
                    else advertiser.ctr_factor
                )
                contenders.append(
                    (
                        advertiser_id,
                        dollars_to_cents(advertiser.bid),
                        auctions_of[advertiser_id],
                        factor,
                    )
                )
            selected = cache.select_top(contenders, self.k + 1, round_index)
            for advertiser_id, exact_cents, _score in selected:
                effective_bid_cents[advertiser_id] = exact_cents
            rankings[phrase] = TopKList(
                self.k + 1,
                [(score, advertiser_id) for advertiser_id, _, score in selected],
            )
        if self.changefeed.active:
            # Same publisher-side contract as the exact path: an
            # advertiser whose auction multiplicity moved gets a
            # BidChanged for any subscriber that keys off effective bids
            # (the throttle cache itself covers m via its cache key).
            for advertiser_id, m in sorted(auctions_of.items()):
                if self._last_multiplicity.get(advertiser_id) != m:
                    self.changefeed.publish(BidChanged(advertiser_id))
            self._last_multiplicity.update(auctions_of)
        return rankings, effective_bid_cents

    def _allocate_phrase(
        self,
        phrase: str,
        ranking: TopKList,
        effective_bid_cents: Mapping[int, float],
        round_index: int,
        report: RoundReport,
    ) -> None:
        """Stage 4: allocate slots, price clicks (GSP), record displays."""
        entries = ranking.entries
        allocated: List[Tuple[int, int, int]] = []
        for slot in range(min(self.k, len(entries))):
            entry = entries[slot]
            advertiser = self._by_id[entry.advertiser_id]
            if entry.score <= 0.0:
                continue
            next_score = (
                entries[slot + 1].score if slot + 1 < len(entries) else 0.0
            )
            c_i = (
                advertiser.ctr_factor_for(phrase)
                if self.mode == "shared-sort"
                else advertiser.ctr_factor
            )
            if c_i <= 0.0:
                continue
            price_cents = min(
                effective_bid_cents[entry.advertiser_id],
                next_score / c_i * 100.0,
            )
            price = int(round(price_cents))
            if price <= 0:
                continue
            ctr = min(1.0, c_i * self.ctr_model.slot_factors[slot])
            ledger_handle = self.budget_manager.record_display(
                entry.advertiser_id, price, ctr, round_index
            )
            self.click_model.record_display(
                entry.advertiser_id, phrase, price, ctr, round_index,
                ledger_handle,
            )
            report.displays += 1
            allocated.append((slot, entry.advertiser_id, price))
        report.allocations[phrase] = tuple(allocated)

    def settle_remaining_clicks(self) -> Tuple[int, int, int]:
        """Flush the click model and settle every still-pending click.

        The flush settles outside any round; the budget manager's
        published events queue on the feed, so any later round still
        treats these advertisers as dirty.  Shared by the batch
        :meth:`run` loop and the end of a serving session.

        Returns:
            ``(revenue_cents, forgiven_cents, clicks)`` totals.
        """
        revenue = forgiven = clicks = 0
        for click in self.click_model.flush():
            charge = self.budget_manager.settle_click(
                click.advertiser_id,
                click.price_cents,
                click.display_round,
                handle=click.ledger_handle,
            )
            revenue += charge.charged_cents
            forgiven += charge.forgiven_cents
            clicks += 1
        return revenue, forgiven, clicks

    def run(self, rounds: int) -> EngineReport:
        """Run several rounds, then flush and settle remaining clicks."""
        report = EngineReport()
        for _ in range(rounds):
            report.absorb(self.run_round())
        revenue, forgiven, clicks = self.settle_remaining_clicks()
        report.revenue_cents += revenue
        report.forgiven_cents += forgiven
        report.clicks += clicks
        return report
