"""Batching search queries into auction rounds.

Section II-B: the granularity of a round is a system-design choice.
Coarser rounds share more work between auctions but add latency; user
studies tolerate median latencies up to about 2.2 seconds.  The batcher
groups a timestamped query stream into fixed-length rounds and reports
the per-round phrase sets the shared winner-determination machinery
consumes (duplicate occurrences of a phrase within a round collapse into
one auction resolution reused for each occurrence -- the whole point of
sharing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import InvalidAuctionError

__all__ = [
    "TimestampedQuery",
    "RoundBatch",
    "RoundBatcher",
    "singleton_rounds",
]


@dataclass(frozen=True, order=True)
class TimestampedQuery:
    """A search query mapped to a bid phrase, with its arrival time.

    The query-to-phrase rewriting (the two-stage method of Radlinski et
    al. the paper assumes) happens upstream; the engine sees phrases.
    """

    arrival_time: float
    phrase: str


@dataclass(frozen=True)
class RoundBatch:
    """One round's worth of queries.

    Attributes:
        round_index: 0-based round number.
        start_time: Round start (inclusive).
        phrase_counts: Occurrences per distinct phrase in the round.
    """

    round_index: int
    start_time: float
    phrase_counts: Dict[str, int]

    @property
    def distinct_phrases(self) -> Tuple[str, ...]:
        """The distinct phrases, sorted -- one auction resolution each."""
        return tuple(sorted(self.phrase_counts))

    @property
    def total_queries(self) -> int:
        """Total queries batched into the round."""
        return sum(self.phrase_counts.values())


class RoundBatcher:
    """Groups a time-ordered query stream into fixed-length rounds.

    Args:
        round_length: Round duration in seconds.  Must be positive.  The
            paper's worked example uses 2/3 s.
        changefeed: Optional
            :class:`repro.engine.changefeed.ChangeFeed`.  When present
            and active, the batcher publishes a ``RoundClosed`` event as
            each batch is yielded, so feed consumers see the same round
            boundaries the winner-determination machinery does.
    """

    def __init__(self, round_length: float, changefeed=None) -> None:
        if round_length <= 0.0:
            raise InvalidAuctionError(
                f"round length must be positive, got {round_length}"
            )
        self.round_length = round_length
        self.changefeed = changefeed

    def _close_round(self, batch: RoundBatch) -> RoundBatch:
        feed = self.changefeed
        if feed is not None and feed.active:
            from repro.engine.changefeed import RoundClosed

            feed.publish(RoundClosed(batch.round_index))
        return batch

    def batch(self, queries: Iterable[TimestampedQuery]) -> Iterator[RoundBatch]:
        """Yield rounds in order; empty rounds are skipped.

        Raises:
            InvalidAuctionError: If the stream is not time-ordered.
        """
        current: Dict[str, int] = {}
        current_index = 0
        last_time = float("-inf")
        started = False
        for query in queries:
            if query.arrival_time < last_time:
                raise InvalidAuctionError(
                    "query stream must be ordered by arrival time"
                )
            last_time = query.arrival_time
            index = int(query.arrival_time // self.round_length)
            if not started:
                current_index = index
                started = True
            if index != current_index:
                if current:
                    yield self._close_round(
                        RoundBatch(
                            current_index,
                            current_index * self.round_length,
                            current,
                        )
                    )
                current = {}
                current_index = index
            current[query.phrase] = current.get(query.phrase, 0) + 1
        if current:
            yield self._close_round(
                RoundBatch(
                    current_index, current_index * self.round_length, current
                )
            )


def singleton_rounds(
    queries: Iterable[TimestampedQuery],
) -> Iterator[RoundBatch]:
    """One round per query: the ``round_length -> 0`` serving limit.

    The paper's rounds exist to amortize winner determination across
    co-occurring phrases; the serving regime gives that up for latency
    and resolves every query alone.  This adapter expresses a query
    trace in round vocabulary -- each query becomes a
    :class:`RoundBatch` with a single phrase at count 1, indexed by
    arrival order -- which is exactly how the serving differential
    suite replays a serving trace through the batch engine.  Queries
    need not be time-ordered; arrival order is the round order.
    """
    for index, query in enumerate(queries):
        yield RoundBatch(index, query.arrival_time, {query.phrase: 1})
