"""The engine's unified invalidation bus.

PRs 2-5 each grew a bespoke dirty-set pipeline: the engine accumulated a
``set[int]`` of event-touched advertisers for the cross-round plan
executor, the sort cache ran its own exact bid diff, and the plan
maintainer was mutated directly by whoever noticed the market drift.
:class:`ChangeFeed` replaces all three with one typed event stream: the
engine (and :class:`repro.engine.budget_manager.BudgetManager`) publish
:class:`BidChanged` / :class:`BudgetChanged` / churn events as they
happen, and each consumer subscribes to the kinds it cares about --

- :class:`repro.plans.executor.CrossRoundPlanExecutor` drains its
  subscription at the top of every round and treats the accumulated
  ``dirty_advertisers`` as its declared dirty set;
- :class:`repro.sharedsort.cache.CrossRoundSortCache` does the same for
  effective bids;
- :class:`repro.plans.maintenance.PlanMaintainer` consumes churn events
  (:class:`AdvertiserAdded` / :class:`AdvertiserRemoved` /
  :class:`PhraseAdded` / :class:`PhraseRemoved`) through a push handler
  and repairs the plan, which in turn rebinds any subscribed executor.

Soundness stays checkable: both caches keep their exact value diff as a
cross-check behind ``verify=True`` (the default), raising
``InvalidPlanError`` when a value changed without a covering event --
the same declared-vs-diffed contract the legacy pipelines enforced, now
stated once against the bus.

Consumers never import this module.  Events are duck-typed: every event
carries a ``kind`` string and a ``dirty_advertisers`` frozenset, which
is all the cache layers read -- so ``repro.plans`` and
``repro.sharedsort`` stay import-independent of ``repro.engine``.

Publishing is free when nobody listens: the engine guards every publish
site on :attr:`ChangeFeed.active`, so an uncached run constructs no
event objects at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import InvalidAuctionError
from repro.instrument import NULL, Collector, names as metric_names

__all__ = [
    "ChangeEvent",
    "BidChanged",
    "BudgetChanged",
    "AdvertiserAdded",
    "AdvertiserRemoved",
    "PhraseAdded",
    "PhraseRemoved",
    "RoundClosed",
    "QueryServed",
    "Subscription",
    "ChangeFeed",
    "EVENT_KINDS",
]

Variable = Hashable

_NO_EVENTS: List["ChangeEvent"] = []
"""Shared empty drain result; callers only iterate it, never mutate."""


@dataclass(frozen=True)
class ChangeEvent:
    """Base class for bus events.

    Every event exposes two duck-typed fields the cache layers consume
    without importing this module:

    - ``kind``: a stable string tag used for subscription filtering;
    - ``dirty_advertisers``: the advertisers whose effective score or
      bid may differ because of this event (possibly empty).
    """

    kind = "change"

    @property
    def dirty_advertisers(self) -> FrozenSet[Variable]:
        """Advertisers this event may have moved (empty by default)."""
        return frozenset()


@dataclass(frozen=True)
class BidChanged(ChangeEvent):
    """An advertiser's effective bid input moved.

    Published for throttle-input changes the budget manager cannot see:
    auction-multiplicity changes and (under a decaying model) the
    per-round re-weighing of outstanding debt.
    """

    advertiser_id: Variable
    kind = "bid_changed"

    @property
    def dirty_advertisers(self) -> FrozenSet[Variable]:
        return frozenset({self.advertiser_id})


@dataclass(frozen=True)
class BudgetChanged(ChangeEvent):
    """An advertiser's budget books moved (click, display, or expiry)."""

    advertiser_id: Variable
    kind = "budget_changed"

    @property
    def dirty_advertisers(self) -> FrozenSet[Variable]:
        return frozenset({self.advertiser_id})


@dataclass(frozen=True)
class AdvertiserAdded(ChangeEvent):
    """A new advertiser entered the market with its bid phrases."""

    advertiser_id: Variable
    phrases: FrozenSet[str] = frozenset()
    kind = "advertiser_added"

    @property
    def dirty_advertisers(self) -> FrozenSet[Variable]:
        return frozenset({self.advertiser_id})


@dataclass(frozen=True)
class AdvertiserRemoved(ChangeEvent):
    """An advertiser left the market entirely."""

    advertiser_id: Variable
    kind = "advertiser_removed"

    @property
    def dirty_advertisers(self) -> FrozenSet[Variable]:
        return frozenset({self.advertiser_id})


@dataclass(frozen=True)
class PhraseAdded(ChangeEvent):
    """A brand-new bid phrase appeared with its interested advertisers."""

    phrase: str
    advertiser_ids: FrozenSet[Variable] = frozenset()
    search_rate: float = 1.0
    kind = "phrase_added"

    @property
    def dirty_advertisers(self) -> FrozenSet[Variable]:
        return frozenset(self.advertiser_ids)


@dataclass(frozen=True)
class PhraseRemoved(ChangeEvent):
    """A bid phrase was retired (no advertiser bids on it anymore)."""

    phrase: str
    kind = "phrase_removed"


@dataclass(frozen=True)
class RoundClosed(ChangeEvent):
    """A round boundary: everything published before it belongs to the
    round, everything after to the next.  Carries no dirty set; consumers
    that snapshot per-round state key off it."""

    round_index: int
    kind = "round_closed"


@dataclass(frozen=True)
class QueryServed(ChangeEvent):
    """One query was resolved by the serving loop.

    Published by :class:`repro.serving.ServingEngine` after each
    query-at-a-time tick, for monitoring-style consumers (dashboards,
    admission control) that want the serving cadence without polling.
    Carries no dirty set: serving a query moves no bids by itself -- the
    budget and multiplicity consequences arrive as their own events.
    """

    query_index: int
    phrase: str
    kind = "query_served"


EVENT_KINDS: Tuple[str, ...] = (
    BidChanged.kind,
    BudgetChanged.kind,
    AdvertiserAdded.kind,
    AdvertiserRemoved.kind,
    PhraseAdded.kind,
    PhraseRemoved.kind,
    RoundClosed.kind,
    QueryServed.kind,
)
"""Every concrete event kind, in declaration order."""


class Subscription:
    """A pull-style subscription: events queue until :meth:`drain`.

    Create via :meth:`ChangeFeed.subscribe`.  The cache layers drain at
    the top of each round, so events published between rounds (click
    settlements, churn, the end-of-run flush) accumulate here and are
    consumed exactly once.
    """

    def __init__(
        self,
        feed: "ChangeFeed",
        name: str,
        kinds: Optional[FrozenSet[str]],
    ) -> None:
        self.feed = feed
        self.name = name
        self.kinds = kinds
        self._queue: List[ChangeEvent] = []

    @property
    def pending(self) -> int:
        """Events queued and not yet drained."""
        return len(self._queue)

    def matches(self, event: ChangeEvent) -> bool:
        """Whether this subscription receives ``event``."""
        return self.kinds is None or event.kind in self.kinds

    def drain(self) -> List[ChangeEvent]:
        """All queued events, in publication order; empties the queue.

        An empty queue returns a shared immutable-by-convention list
        without allocating: the serving loop drains per *query*, so the
        overwhelmingly common drain is empty and must cost nothing.
        """
        if not self._queue:
            return _NO_EVENTS
        drained, self._queue = self._queue, []
        self.feed._consumed(len(drained))
        return drained


class ChangeFeed:
    """One typed event bus between the engine and its incremental layers.

    Args:
        collector: Receives ``bus.events_published`` /
            ``bus.events_consumed`` increments.  The default no-op
            collector keeps the feed's own attributes as the only
            bookkeeping.

    Attributes:
        events_published: Lifetime count of published events.
        events_consumed: Lifetime count of deliveries -- queue drains
            plus push-handler invocations.  One event delivered to two
            subscribers counts twice; an event nobody matched counts
            zero, so ``consumed`` can legitimately run above or below
            ``published``.
    """

    def __init__(self, collector: Collector = NULL) -> None:
        self.collector = collector
        self.events_published = 0
        self.events_consumed = 0
        self._subscriptions: List[Subscription] = []
        self._handlers: List[
            Tuple[Optional[FrozenSet[str]], Callable[[ChangeEvent], None]]
        ] = []

    @property
    def active(self) -> bool:
        """Whether anything listens.  Publishers guard on this so an
        unsubscribed run pays nothing -- not even event construction."""
        return bool(self._subscriptions or self._handlers)

    def subscribe(
        self,
        name: str = "",
        kinds: Optional[Iterable[str]] = None,
    ) -> Subscription:
        """Register a pull-style subscriber.

        Args:
            name: Diagnostic label (shows up in traces).
            kinds: Event kinds to receive; ``None`` receives everything.

        Returns:
            The queue the caller drains each round.
        """
        subscription = Subscription(self, name, _as_kinds(kinds))
        self._subscriptions.append(subscription)
        return subscription

    def attach(
        self,
        handler: Callable[[ChangeEvent], None],
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        """Register a push-style handler, called at publish time.

        Used by consumers that must react *immediately* -- the plan
        maintainer repairs the plan inside the publishing call so the
        very next round runs against the updated structure.  Handler
        exceptions propagate to the publisher.
        """
        self._handlers.append((_as_kinds(kinds), handler))

    def publish(self, event: ChangeEvent) -> None:
        """Deliver one event to every matching subscriber."""
        self.events_published += 1
        self.collector.incr(metric_names.BUS_EVENTS_PUBLISHED)
        for subscription in self._subscriptions:
            if subscription.matches(event):
                subscription._queue.append(event)
        for kinds, handler in self._handlers:
            if kinds is None or event.kind in kinds:
                handler(event)
                self._consumed(1)

    def publish_all(self, events: Iterable[ChangeEvent]) -> None:
        """Publish several events in order."""
        for event in events:
            self.publish(event)

    def _consumed(self, count: int) -> None:
        self.events_consumed += count
        self.collector.incr(metric_names.BUS_EVENTS_CONSUMED, count)


def _as_kinds(kinds: Optional[Iterable[str]]) -> Optional[FrozenSet[str]]:
    """Validate and freeze a kind filter (``None`` passes through)."""
    if kinds is None:
        return None
    frozen = frozenset(kinds)
    unknown = frozen - frozenset(EVENT_KINDS)
    if unknown:
        raise InvalidAuctionError(
            f"unknown event kinds {sorted(unknown)!r}; "
            f"valid kinds are {list(EVENT_KINDS)!r}"
        )
    return frozen
