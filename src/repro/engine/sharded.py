"""Sharded parallel engine over fragment-connected components.

The shared winner-determination problem decomposes exactly: two phrases
interact only through advertisers they share (budgets, throttle
problems, plan fragments), so the *connected components* of the
phrase-advertiser bipartite graph are fully independent sub-markets --
no advertiser, budget ledger, plan fragment, or sort stream crosses a
component boundary.  :class:`ShardedEngine` exploits this by
partitioning components across ``multiprocessing`` workers, each running
its own complete :class:`repro.engine.pipeline.SharedAuctionEngine` --
shared-nothing exec/sort/throttle caches, its own change feed, its own
budget books -- and merging results only at the boundary:

- per-round reports are merged phrase-disjointly (allocations are a
  dict union; money and work counters are sums);
- externally injected change-feed events are routed to the one shard
  owning the named advertiser or phrase;
- spent snapshots are the union of the shards' books.

Determinism contract: a fixed ``(advertisers, slot_factors,
search_rates, shards, seed, engine kwargs)`` tuple yields a
bit-identical run.  With ``shards=1`` the single worker receives the
*original* advertiser tuple and the master seed, so its output is
byte-identical to the sequential engine (the sharded differential
asserts this).  With ``shards>1`` each shard samples its own phrase
occurrences and click delays from ``seed + 7919 * shard`` -- runs are
reproducible, and any *explicitly supplied* occurring set resolves to
the same allocations as the sequential engine because components do not
interact; only the sampled traffic differs between shard counts.

When sharding pays: workers are real processes, so the per-round cost
is serialization of reports plus process scheduling.  Below a few
hundred advertisers per shard the IPC overhead dominates; the scaled
fig4 workloads (thousands of advertisers, hundreds of phrases, several
components) are where the curve recorded in ``BENCH_columnar.json``
turns upward.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.advertiser import Advertiser
from repro.engine.pipeline import EngineReport, RoundReport
from repro.errors import InvalidAuctionError

__all__ = [
    "ShardedEngine",
    "connected_components",
    "assign_components",
    "merge_round_reports",
    "merge_engine_reports",
]


def connected_components(
    phrase_advertisers: Mapping[str, Sequence[int]],
) -> List[Tuple[Tuple[int, ...], Tuple[str, ...]]]:
    """Connected components of the phrase-advertiser bipartite graph.

    Returns:
        ``[(advertiser_ids, phrases), ...]`` -- each component's members,
        both ascending -- ordered by descending advertiser count, ties by
        first phrase (a deterministic order independent of dict/hash
        iteration).
    """
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            if rb < ra:
                ra, rb = rb, ra
            parent[rb] = ra

    for _, ids in sorted(phrase_advertisers.items()):
        for advertiser_id in ids:
            parent.setdefault(advertiser_id, advertiser_id)
        for other in ids[1:]:
            union(ids[0], other)

    members: Dict[int, List[int]] = {}
    for advertiser_id in sorted(parent):
        members.setdefault(find(advertiser_id), []).append(advertiser_id)
    phrases_of: Dict[int, List[str]] = {root: [] for root in members}
    for phrase, ids in sorted(phrase_advertisers.items()):
        phrases_of[find(ids[0])].append(phrase)
    components = [
        (tuple(ids), tuple(phrases_of[root]))
        for root, ids in members.items()
    ]
    components.sort(key=lambda c: (-len(c[0]), c[1][0]))
    return components


def assign_components(
    components: Sequence[Tuple[Tuple[int, ...], Tuple[str, ...]]],
    shards: int,
) -> List[int]:
    """Greedy balanced assignment: biggest component to lightest shard.

    Returns:
        One shard index per component (parallel to ``components``, which
        :func:`connected_components` already orders biggest-first --
        the classic LPT heuristic).  Ties go to the lowest shard index.
    """
    loads = [0] * shards
    assignment: List[int] = []
    for ids, _ in components:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        assignment.append(shard)
        loads[shard] += len(ids)
    return assignment


def merge_round_reports(reports: Sequence[RoundReport]) -> RoundReport:
    """Fold per-shard round reports into the round's global report.

    Shards own disjoint phrase sets, so allocations merge by dict union;
    everything else is a sum.  Counter deltas merge by summing, matching
    :meth:`EngineReport.absorb`.
    """
    if not reports:
        raise InvalidAuctionError("cannot merge zero round reports")
    round_index = reports[0].round_index
    occurring: List[str] = []
    for report in reports:
        if report.round_index != round_index:
            raise InvalidAuctionError(
                f"shards disagree on round index: {round_index} vs "
                f"{report.round_index}"
            )
        occurring.extend(report.occurring_phrases)
    merged = RoundReport(round_index, tuple(sorted(occurring)))
    for report in reports:
        merged.merges += report.merges
        merged.scans += report.scans
        merged.revenue_cents += report.revenue_cents
        merged.forgiven_cents += report.forgiven_cents
        merged.displays += report.displays
        merged.clicks += report.clicks
        merged.allocations.update(report.allocations)
        if report.counters is not None:
            if merged.counters is None:
                merged.counters = {}
            for name, value in report.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + value
    return merged


def merge_engine_reports(reports: Sequence[EngineReport]) -> EngineReport:
    """Fold per-shard run reports into one global report.

    Histories are zipped round by round through
    :func:`merge_round_reports`; the money totals are then overwritten
    with the shard sums because an :class:`EngineReport` includes the
    end-of-run click flush, which settles outside any round.
    """
    if not reports:
        raise InvalidAuctionError("cannot merge zero engine reports")
    lengths = {len(report.history) for report in reports}
    if len(lengths) != 1:
        raise InvalidAuctionError(
            f"shards disagree on round count: {sorted(lengths)}"
        )
    merged = EngineReport()
    for per_shard in zip(*[report.history for report in reports]):
        merged.absorb(merge_round_reports(per_shard))
    merged.revenue_cents = sum(r.revenue_cents for r in reports)
    merged.forgiven_cents = sum(r.forgiven_cents for r in reports)
    merged.clicks = sum(r.clicks for r in reports)
    return merged


def _shard_worker(conn, advertisers, slot_factors, search_rates, kwargs):
    """Worker loop: one complete engine, commands in, results out.

    Module-level so it pickles under every multiprocessing start method.
    Replies are ``("ok", payload)`` or ``("err", traceback_text)``; the
    worker keeps serving after an error so one bad command cannot wedge
    the whole fleet.
    """
    from repro.engine.pipeline import SharedAuctionEngine

    try:
        engine = SharedAuctionEngine(
            advertisers, slot_factors, search_rates, **kwargs
        )
    except Exception:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            if command == "run":
                payload = engine.run(message[1])
            elif command == "round":
                payload = engine.run_round(message[1])
            elif command == "settle":
                payload = engine.settle_remaining_clicks()
            elif command == "spent":
                payload = engine.budget_manager.spent_snapshot()
            elif command == "event":
                if engine.changefeed.active:
                    engine.changefeed.publish(message[1])
                payload = None
            elif command == "stats":
                payload = {
                    "advertisers": len(engine.advertisers),
                    "phrases": len(engine.phrase_advertisers),
                    "rounds": engine._round_index,
                    "spent": engine.budget_manager.spent_snapshot(),
                }
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                raise InvalidAuctionError(f"unknown command {command!r}")
            conn.send(("ok", payload))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    conn.close()


class ShardedEngine:
    """Parallel shared winner determination across component shards.

    Args:
        advertisers: The full advertiser population.
        slot_factors: As for :class:`SharedAuctionEngine`.
        search_rates: As for :class:`SharedAuctionEngine`.
        shards: Requested worker count.  The effective count is
            ``min(shards, number of components)`` -- a component is the
            unit of independence and cannot be split.
        seed: Master seed.  Shard 0 runs on it verbatim (which is what
            makes ``shards=1`` byte-identical to the sequential engine);
            shard ``s`` runs on ``seed + 7919 * s``.
        **engine_kwargs: Forwarded to every worker's
            :class:`SharedAuctionEngine` (``mode``, ``layout``,
            ``throttle``, cache switches, ...).  ``collector`` is
            rejected: collectors are in-process objects, and each worker
            already attaches per-round counter deltas to its reports,
            which the merge sums.

    Raises:
        InvalidAuctionError: On a non-positive shard count, a
            ``collector``/``seed`` in ``engine_kwargs``, or a worker
            failing to construct its engine.
    """

    def __init__(
        self,
        advertisers: Sequence[Advertiser],
        slot_factors: Sequence[float],
        search_rates: Mapping[str, float],
        shards: int = 2,
        seed: int = 0,
        **engine_kwargs,
    ) -> None:
        if shards <= 0:
            raise InvalidAuctionError(
                f"shards must be positive, got {shards}"
            )
        if "collector" in engine_kwargs:
            raise InvalidAuctionError(
                "sharded engines run workers in separate processes and "
                "cannot share a collector; read per-round counter deltas "
                "from the merged reports instead"
            )
        if "seed" in engine_kwargs:
            raise InvalidAuctionError(
                "pass seed to ShardedEngine directly; workers derive "
                "their own from it"
            )
        self.advertisers = tuple(advertisers)
        phrase_map: Dict[str, List[int]] = {}
        for advertiser in self.advertisers:
            for phrase in sorted(advertiser.phrases):
                phrase_map.setdefault(phrase, []).append(
                    advertiser.advertiser_id
                )
        phrase_advertisers = {
            phrase: tuple(sorted(ids))
            for phrase, ids in sorted(phrase_map.items())
        }
        self.components = connected_components(phrase_advertisers)
        self.shards = max(1, min(shards, len(self.components)))
        self.requested_shards = shards
        assignment = assign_components(self.components, self.shards)
        self._shard_of_advertiser: Dict[int, int] = {}
        self._shard_of_phrase: Dict[str, int] = {}
        shard_ids: List[set] = [set() for _ in range(self.shards)]
        for (ids, phrases), shard in zip(self.components, assignment):
            shard_ids[shard].update(ids)
            for advertiser_id in ids:
                self._shard_of_advertiser[advertiser_id] = shard
            for phrase in phrases:
                self._shard_of_phrase[phrase] = shard
        by_id = {a.advertiser_id: a for a in self.advertisers}
        if self.shards == 1:
            # The original tuple, order included: the worker's engine is
            # then argument-identical to the sequential engine, which is
            # the byte-identity guarantee the differential tests pin.
            shard_advertisers = [self.advertisers]
        else:
            shard_advertisers = [
                tuple(
                    a
                    for a in self.advertisers
                    if a.advertiser_id in shard_ids[shard]
                )
                for shard in range(self.shards)
            ]
        shard_rates = [
            {
                phrase: float(search_rates.get(phrase, 1.0))
                for phrase, shard_owner in sorted(
                    self._shard_of_phrase.items()
                )
                if shard_owner == shard or self.shards == 1
            }
            for shard in range(self.shards)
        ]
        self._slot_factors = tuple(slot_factors)
        self._processes: List[multiprocessing.Process] = []
        self._pipes = []
        for shard in range(self.shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            kwargs = dict(engine_kwargs)
            kwargs["seed"] = seed if shard == 0 else seed + 7919 * shard
            process = multiprocessing.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    shard_advertisers[shard],
                    self._slot_factors,
                    shard_rates[shard],
                    kwargs,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._processes.append(process)
        for shard in range(self.shards):
            self._receive(shard)  # constructor handshake

    # ------------------------------------------------------------------
    # worker protocol
    # ------------------------------------------------------------------
    def _receive(self, shard: int):
        status, payload = self._pipes[shard].recv()
        if status != "ok":
            raise InvalidAuctionError(
                f"shard {shard} failed:\n{payload}"
            )
        return payload

    def _broadcast(self, message) -> List:
        for pipe in self._pipes:
            pipe.send(message)
        return [self._receive(shard) for shard in range(self.shards)]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, rounds: int) -> EngineReport:
        """Run ``rounds`` rounds on every shard in parallel and merge."""
        return merge_engine_reports(self._broadcast(("run", rounds)))

    def run_round(
        self, occurring: Optional[Iterable[str]] = None
    ) -> RoundReport:
        """Resolve one round across all shards.

        Args:
            occurring: Explicit occurring phrases.  They are routed to
                their owning shards; every shard runs the round (a shard
                with none of the phrases still delivers due clicks and
                advances its round counter, exactly like the sequential
                engine on an empty occurring set).  ``None`` lets each
                shard sample its own phrases.
        """
        if occurring is None:
            messages = [("round", None)] * self.shards
        else:
            subsets: List[List[str]] = [[] for _ in range(self.shards)]
            for phrase in occurring:
                shard = self._shard_of_phrase.get(phrase)
                if shard is None:
                    raise InvalidAuctionError(
                        f"no advertisers bid on {[phrase]!r}"
                    )
                subsets[shard].append(phrase)
            messages = [("round", subsets[s]) for s in range(self.shards)]
        for shard, message in enumerate(messages):
            self._pipes[shard].send(message)
        return merge_round_reports(
            [self._receive(shard) for shard in range(self.shards)]
        )

    def settle_remaining_clicks(self) -> Tuple[int, int, int]:
        """Flush every shard's click model; sum the settlements."""
        results = self._broadcast(("settle",))
        return (
            sum(r[0] for r in results),
            sum(r[1] for r in results),
            sum(r[2] for r in results),
        )

    def spent_snapshot(self) -> Dict[int, int]:
        """The union of the shards' budget books, ordered by id."""
        merged: Dict[int, int] = {}
        for snapshot in self._broadcast(("spent",)):
            merged.update(snapshot)
        return dict(sorted(merged.items()))

    def publish(self, event) -> None:
        """Route one change-feed event to the shard that owns it.

        Events naming an advertiser go to that advertiser's shard;
        events naming a phrase go to the phrase's shard.  The receiving
        worker re-publishes on its engine's feed (a no-op when nothing
        subscribes, same as the in-process engine).
        """
        advertiser_id = getattr(event, "advertiser_id", None)
        if advertiser_id is not None:
            shard = self._shard_of_advertiser.get(advertiser_id)
            if shard is None:
                raise InvalidAuctionError(
                    f"unknown advertiser {advertiser_id}"
                )
        else:
            phrase = getattr(event, "phrase", None)
            shard = self._shard_of_phrase.get(phrase)
            if shard is None:
                raise InvalidAuctionError(
                    f"cannot route event {event!r} to a shard"
                )
        self._pipes[shard].send(("event", event))
        self._receive(shard)

    def stats(self) -> List[Dict]:
        """Per-shard population and progress figures."""
        return self._broadcast(("stats",))

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for shard, (pipe, process) in enumerate(
            zip(self._pipes, self._processes)
        ):
            if process.is_alive():
                try:
                    pipe.send(("close",))
                    self._receive(shard)
                except (BrokenPipeError, EOFError, OSError):
                    pass
            pipe.close()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._processes = []
        self._pipes = []

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
