"""Adaptive cache policy driven by the instrumentation counters.

Cross-round caching is a bet: diffing, invalidating, and revalidating
cost a little every round, and pay off only when most of the previous
round's work survives.  When nearly every advertiser moves every round
(a volatile market, a decaying outstanding model, a stress test), the
cache's bookkeeping is pure overhead on top of a full rebuild -- the
dirty cone *is* the whole plan.  :class:`CacheAutotuner` watches the
observed dirty fraction over a sliding window and tells its cache to

- **bypass**: run the round fresh (no cache reads or writes) while the
  windowed dirty fraction sits at or above ``bypass_threshold``.  The
  consumer still absorbs the round's values, so epochs, staleness marks,
  and last-seen snapshots stay sound and caching resumes the moment the
  market calms down; bypassed rounds count on ``cache.bypass_rounds``.
- **resize**: bound the LRU capacity at the observed working-set
  high-water mark times ``slack``, instead of the unbounded default.
  Recommendations move only when they differ from the current bound by
  more than ``hysteresis`` (no thrashing); actual changes count on
  ``cache.autotune_resizes``.

Both decisions read only *past* rounds, so an autotuned run remains
deterministic for a fixed input sequence -- and, like every cache layer
in this repo, it changes the work counters, never the answers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import InvalidAuctionError
from repro.instrument import NULL, Collector, names as metric_names

__all__ = ["CacheAutotuner"]


class CacheAutotuner:
    """Windowed bypass and LRU-sizing policy for a cross-round cache.

    Args:
        bypass_threshold: Windowed mean dirty fraction at or above which
            rounds run fresh.  ``1.0`` still bypasses (a fully dirty
            window means caching saves nothing); values above 1 disable
            bypassing entirely.
        window: Rounds of history the decisions read.
        warmup: Observations required before :meth:`should_bypass` may
            fire (the first rounds of a run are all-dirty by
            construction and must not poison the policy).
        slack: Capacity recommendation = working-set high-water x slack.
        hysteresis: Relative change below which a recommendation is not
            applied.
        collector: Receives ``cache.bypass_rounds`` /
            ``cache.autotune_resizes``.

    Attributes:
        rounds_observed: Total observations.
        bypass_rounds: Rounds the policy ran fresh.
        resizes: Capacity changes actually applied.
    """

    def __init__(
        self,
        bypass_threshold: float = 0.5,
        window: int = 8,
        warmup: int = 2,
        slack: float = 2.0,
        hysteresis: float = 0.25,
        collector: Collector = NULL,
    ) -> None:
        if bypass_threshold <= 0.0:
            raise InvalidAuctionError(
                f"bypass_threshold must be positive, got {bypass_threshold}"
            )
        if window <= 0:
            raise InvalidAuctionError(f"window must be positive, got {window}")
        if warmup <= 0:
            raise InvalidAuctionError(f"warmup must be positive, got {warmup}")
        if slack < 1.0:
            raise InvalidAuctionError(f"slack must be >= 1, got {slack}")
        if hysteresis < 0.0:
            raise InvalidAuctionError(
                f"hysteresis must be >= 0, got {hysteresis}"
            )
        self.bypass_threshold = bypass_threshold
        self.window = window
        self.warmup = warmup
        self.slack = slack
        self.hysteresis = hysteresis
        self.collector = collector
        self.rounds_observed = 0
        self.bypass_rounds = 0
        self.resizes = 0
        self._fractions: Deque[float] = deque(maxlen=window)
        self._working_sets: Deque[int] = deque(maxlen=window)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_round(
        self, dirty: int, population: int, working_set: int
    ) -> None:
        """Record one round's measurements.

        Args:
            dirty: Leaves (advertisers) whose value actually changed.
            population: Leaves presented this round.
            working_set: Distinct cache slots the round touched -- the
                quantity the LRU bound must cover for reuse to work.
        """
        self.rounds_observed += 1
        fraction = dirty / population if population else 0.0
        self._fractions.append(fraction)
        self._working_sets.append(working_set)

    @property
    def dirty_fraction(self) -> float:
        """Windowed mean dirty fraction (0.0 before any observation)."""
        if not self._fractions:
            return 0.0
        return sum(self._fractions) / len(self._fractions)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def should_bypass(self) -> bool:
        """Whether the *next* round should skip the cache entirely.

        Reads only completed rounds, so the decision is known before any
        of the round's work happens and cannot depend on it.
        """
        if len(self._fractions) < self.warmup:
            return False
        return self.dirty_fraction >= self.bypass_threshold

    def record_bypass(self) -> None:
        """Count one bypassed round (called by the consumer that acted)."""
        self.bypass_rounds += 1
        self.collector.incr(metric_names.CACHE_BYPASS_ROUNDS)

    def recommended_capacity(self) -> Optional[int]:
        """The LRU bound the window supports, or ``None`` before a full
        window of observations exists."""
        if len(self._working_sets) < self.window:
            return None
        return max(1, int(max(self._working_sets) * self.slack))

    def maybe_resize(self, cache) -> Optional[int]:
        """Apply the capacity recommendation to ``cache`` if it moved.

        Args:
            cache: Anything with a ``capacity`` attribute and a
                ``resize(capacity)`` method
                (:class:`repro.plans.executor.CrossRoundCache`).

        Returns:
            The new capacity when a resize was applied, else ``None``.
        """
        recommended = self.recommended_capacity()
        if recommended is None:
            return None
        current = cache.capacity
        if current is not None and current > 0:
            if abs(recommended - current) <= current * self.hysteresis:
                return None
        cache.resize(recommended)
        self.resizes += 1
        self.collector.incr(metric_names.CACHE_AUTOTUNE_RESIZES)
        return recommended
