"""Per-advertiser budget accounting with outstanding-ad tracking.

The budget manager is the engine's source of truth for how much each
advertiser can still spend.  It tracks settled charges against the daily
budget and maintains an :class:`repro.budgets.OutstandingLedger` per
advertiser so the throttled bid ``b̂_i`` can be formed for winner
determination (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.budgets.outstanding import ClickDecayModel, NoDecay, OutstandingLedger
from repro.budgets.throttle import ThrottleProblem
from repro.errors import BudgetError

__all__ = ["BudgetManager", "ChargeResult"]


@dataclass(frozen=True)
class ChargeResult:
    """Outcome of charging one click.

    Attributes:
        charged_cents: Amount actually collected.
        forgiven_cents: Shortfall beyond the remaining budget.
    """

    charged_cents: int
    forgiven_cents: int


class BudgetManager:
    """Tracks budgets, settled spend, and outstanding ads.

    Args:
        budgets_cents: Daily budget per advertiser id.  Advertisers not
            present are treated as unbudgeted (infinite budget).
        decay: Click-decay model for outstanding ads.
        changefeed: Optional
            :class:`repro.engine.changefeed.ChangeFeed`.  When present
            and active, the manager publishes a
            :class:`repro.engine.changefeed.BudgetChanged` event for
            every book movement -- click settlements, displays becoming
            outstanding debt, and outstanding-ad expiries -- so the
            cross-round caches learn about throttle-input changes from
            the source instead of from engine-side bookkeeping.
    """

    UNBUDGETED_CENTS = 10**12
    """Stand-in budget for unbudgeted advertisers (effectively infinite)."""

    def __init__(
        self,
        budgets_cents: Dict[int, int],
        decay: ClickDecayModel | None = None,
        changefeed=None,
    ) -> None:
        for advertiser_id, budget in budgets_cents.items():
            if budget < 0:
                raise BudgetError(
                    f"budget for advertiser {advertiser_id} must be >= 0"
                )
        self._budgets = dict(budgets_cents)
        self._spent: Dict[int, int] = {}
        self._decay = decay if decay is not None else NoDecay()
        self._ledgers: Dict[int, OutstandingLedger] = {}
        self._feed = changefeed

    def _publish_change(self, advertiser_id: int) -> None:
        """Announce a book movement on the change feed, if anyone cares."""
        feed = self._feed
        if feed is not None and feed.active:
            from repro.engine.changefeed import BudgetChanged

            feed.publish(BudgetChanged(advertiser_id))

    def _ledger(self, advertiser_id: int) -> OutstandingLedger:
        ledger = self._ledgers.get(advertiser_id)
        if ledger is None:
            ledger = OutstandingLedger(decay=self._decay)
            self._ledgers[advertiser_id] = ledger
        return ledger

    @property
    def decay_varies(self) -> bool:
        """Whether outstanding debt re-weighs as rounds pass.

        Under :class:`repro.budgets.outstanding.NoDecay` an ad's
        ``ctr_j`` is constant until the horizon prunes it (and pruning
        publishes ``BudgetChanged``), so a throttle problem built for
        one round stays valid in later rounds with no event.  Any other
        decay model moves every debt-carrying advertiser's b̂ each
        round; incremental consumers must then treat cached problems as
        valid only within the round they were built.
        """
        return not isinstance(self._decay, NoDecay)

    def budget_cents(self, advertiser_id: int) -> int:
        """The advertiser's daily budget (huge sentinel if unbudgeted)."""
        return self._budgets.get(advertiser_id, self.UNBUDGETED_CENTS)

    def remaining_cents(self, advertiser_id: int) -> int:
        """``β_i`` -- budget minus settled charges (never negative)."""
        remaining = self.budget_cents(advertiser_id) - self._spent.get(
            advertiser_id, 0
        )
        return max(0, remaining)

    def spent_cents(self, advertiser_id: int) -> int:
        """Total settled charges so far."""
        return self._spent.get(advertiser_id, 0)

    def record_display(
        self,
        advertiser_id: int,
        price_cents: int,
        ctr: float,
        round_index: int,
    ) -> int:
        """Register a displayed ad as outstanding debt.

        Returns:
            The ledger handle identifying exactly this outstanding ad.
            Thread it to :meth:`settle_click` when the click arrives:
            the handle is the only unambiguous name when an advertiser
            wins several same-price slots in one round.
        """
        ad = self._ledger(advertiser_id).record_display(
            price_cents, ctr, round_index
        )
        self._publish_change(advertiser_id)
        return ad.handle

    def settle_click(
        self,
        advertiser_id: int,
        price_cents: int,
        display_round: int,
        handle: Optional[int] = None,
    ) -> ChargeResult:
        """Charge a click, forgiving any shortfall.

        Also clears the clicked ad from the outstanding ledger.  With a
        ``handle`` (from :meth:`record_display`) the resolve is O(1) and
        names exactly the displayed ad that was clicked; an expired
        handle (the ad aged past the ledger horizon) settles the charge
        without touching the ledger.  Without a handle -- legacy callers
        only -- the first outstanding ad matching ``(price_cents,
        display_round)`` is cleared, which picks the *wrong* ad whenever
        the advertiser holds two same-price same-round ads with
        different CTRs and skews every later b̂ built from this ledger.
        """
        ledger = self._ledger(advertiser_id)
        if handle is not None:
            if ledger.has_handle(handle):
                ledger.resolve_handle(handle)
        else:
            for ad in ledger.ads:
                if (
                    ad.price_cents == price_cents
                    and ad.displayed_round == display_round
                ):
                    ledger.resolve(ad)
                    break
        remaining = self.remaining_cents(advertiser_id)
        charged = min(price_cents, remaining)
        self._spent[advertiser_id] = self.spent_cents(advertiser_id) + charged
        self._publish_change(advertiser_id)
        return ChargeResult(charged, price_cents - charged)

    def expire_outstanding(self, round_index: int) -> int:
        """Drop outstanding ads whose click probability decayed to zero."""
        return sum(self.expire_outstanding_by_advertiser(round_index).values())

    def expire_outstanding_by_advertiser(
        self, round_index: int
    ) -> Dict[int, int]:
        """Per-advertiser expiry counts (zero-count advertisers omitted).

        Same pruning as :meth:`expire_outstanding`, but reporting *who*
        lost outstanding ads: an expiry shrinks the advertiser's
        outstanding debt and therefore moves its throttled bid, so the
        engine's dirty-set tracking needs the ids, not just the total.
        """
        expired: Dict[int, int] = {}
        for advertiser_id, ledger in self._ledgers.items():
            pruned = ledger.prune(round_index)
            if pruned:
                expired[advertiser_id] = pruned
                self._publish_change(advertiser_id)
        return expired

    def throttle_problem(
        self,
        advertiser_id: int,
        bid_cents: int,
        num_auctions: int,
        round_index: int,
    ) -> ThrottleProblem:
        """Build the Section IV throttle inputs for one advertiser."""
        remaining = self.remaining_cents(advertiser_id)
        outstanding = self._ledger(advertiser_id).snapshot(round_index)
        return ThrottleProblem(
            bid_cents=min(bid_cents, remaining),
            budget_cents=remaining,
            num_auctions=num_auctions,
            outstanding=outstanding,
        )

    def outstanding_counts(self) -> Dict[int, int]:
        """Outstanding-ad count per advertiser (for reports)."""
        return {
            advertiser_id: len(ledger)
            for advertiser_id, ledger in self._ledgers.items()
            if len(ledger)
        }

    def spent_snapshot(self) -> Dict[int, int]:
        """Settled spend per advertiser (zero-spend advertisers omitted).

        A frozen copy of the books at this instant, ordered by
        advertiser id.  The serving differential suite records one
        snapshot per served query and asserts the whole *trajectory* --
        not just the final balance -- is identical between
        query-at-a-time serving and single-phrase batch replay.
        """
        return {
            advertiser_id: spent
            for advertiser_id, spent in sorted(self._spent.items())
            if spent
        }
