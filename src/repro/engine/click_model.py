"""Simulated user clicks with delayed arrival.

The paper's budget machinery exists because clicks arrive *after* the ad
is displayed.  :class:`DelayedClickModel` samples, for each displayed ad,
whether the user eventually clicks (Bernoulli with the ad's
click-through rate) and when the click arrives (a geometric number of
rounds, capped at a horizon after which the click is abandoned --
matching the decay-to-zero assumption of Section IV).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import InvalidAuctionError

__all__ = ["ClickEvent", "DelayedClickModel"]


@dataclass(frozen=True)
class ClickEvent:
    """A click scheduled to arrive in a future round.

    Attributes:
        advertiser_id: Whose ad was clicked.
        phrase: The auction's bid phrase.
        price_cents: Price the pricing rule set for this click.
        display_round: Round the ad was shown.
        arrival_round: Round the click arrives (payment is attempted).
        ledger_handle: Identity of the outstanding-ledger entry recorded
            for this display
            (:meth:`repro.engine.budget_manager.BudgetManager.record_display`),
            so settlement resolves exactly the clicked ad rather than
            the first ad with a matching price and round.  ``-1`` when
            the display was not recorded against a ledger.
    """

    advertiser_id: int
    phrase: str
    price_cents: int
    display_round: int
    arrival_round: int
    ledger_handle: int = -1


class DelayedClickModel:
    """Samples click outcomes and delays for displayed ads.

    Args:
        mean_delay_rounds: Mean of the geometric delay (0 means clicks
            arrive in the next round).
        horizon_rounds: Clicks that would arrive later than this many
            rounds after display are dropped (never happen).
        rng: Seeded random source.
    """

    def __init__(
        self,
        mean_delay_rounds: float,
        horizon_rounds: int,
        rng: random.Random,
    ) -> None:
        if mean_delay_rounds < 0.0:
            raise InvalidAuctionError("mean delay must be non-negative")
        if horizon_rounds <= 0:
            raise InvalidAuctionError("click horizon must be positive")
        self.mean_delay_rounds = mean_delay_rounds
        self.horizon_rounds = horizon_rounds
        self._rng = rng
        self._pending: List[ClickEvent] = []

    def record_display(
        self,
        advertiser_id: int,
        phrase: str,
        price_cents: int,
        ctr: float,
        display_round: int,
        ledger_handle: int = -1,
    ) -> bool:
        """Sample one displayed ad; returns whether a click was scheduled.

        ``ledger_handle`` rides along on the scheduled
        :class:`ClickEvent` so the eventual settlement can name the
        exact outstanding-ledger entry this display created.
        """
        if not 0.0 <= ctr <= 1.0:
            raise InvalidAuctionError(f"CTR must be in [0, 1], got {ctr}")
        if self._rng.random() >= ctr:
            return False
        delay = self._sample_delay()
        if delay > self.horizon_rounds:
            return False
        self._pending.append(
            ClickEvent(
                advertiser_id,
                phrase,
                price_cents,
                display_round,
                display_round + delay,
                ledger_handle,
            )
        )
        return True

    def _sample_delay(self) -> int:
        if self.mean_delay_rounds == 0.0:
            return 1
        p = 1.0 / (1.0 + self.mean_delay_rounds)
        delay = 1
        while self._rng.random() > p:
            delay += 1
            if delay > self.horizon_rounds:
                break
        return delay

    def arrivals(self, round_index: int) -> List[ClickEvent]:
        """Pop and return the clicks arriving at ``round_index`` or before."""
        due = [c for c in self._pending if c.arrival_round <= round_index]
        self._pending = [
            c for c in self._pending if c.arrival_round > round_index
        ]
        return sorted(due, key=lambda c: (c.arrival_round, c.advertiser_id))

    def flush(self) -> List[ClickEvent]:
        """Pop all remaining scheduled clicks (end of simulation)."""
        due, self._pending = self._pending, []
        return sorted(due, key=lambda c: (c.arrival_round, c.advertiser_id))

    @property
    def pending_count(self) -> int:
        """Clicks scheduled but not yet delivered."""
        return len(self._pending)
