"""Sponsored-search auction substrate.

This package holds the data model and single-auction algorithms the paper
builds on: advertisers and bid phrases (:mod:`repro.core.advertiser`),
click-through-rate models (:mod:`repro.core.ctr`), auction specifications
and outcomes (:mod:`repro.core.auction`), winner determination for both
separable and non-separable click-through rates
(:mod:`repro.core.winner_determination`), pricing rules
(:mod:`repro.core.pricing`), the Hungarian algorithm used by the
non-separable path (:mod:`repro.core.matching`), and the bounded top-k
list with its binary merge operator (:mod:`repro.core.topk`).
"""

from repro.core.advertiser import Advertiser, BidPhrase
from repro.core.columnar import (
    AdvertiserView,
    ArrayScoreMap,
    ColumnarStore,
    columnar_top_k,
)
from repro.core.auction import Allocation, AuctionOutcome, AuctionSpec
from repro.core.ctr import CTRModel, MatrixCTRModel, SeparableCTRModel
from repro.core.matching import hungarian_max_weight
from repro.core.money import dollars_to_cents
from repro.core.pricing import (
    FirstPrice,
    GeneralizedSecondPrice,
    LadderedVCG,
    PricingRule,
)
from repro.core.topk import ScoredAdvertiser, TopKList, top_k_merge
from repro.core.winner_determination import (
    determine_winners,
    determine_winners_nonseparable,
    determine_winners_separable,
)

__all__ = [
    "Advertiser",
    "AdvertiserView",
    "ArrayScoreMap",
    "Allocation",
    "AuctionOutcome",
    "AuctionSpec",
    "BidPhrase",
    "CTRModel",
    "ColumnarStore",
    "FirstPrice",
    "GeneralizedSecondPrice",
    "LadderedVCG",
    "MatrixCTRModel",
    "PricingRule",
    "ScoredAdvertiser",
    "SeparableCTRModel",
    "TopKList",
    "columnar_top_k",
    "determine_winners",
    "determine_winners_nonseparable",
    "determine_winners_separable",
    "dollars_to_cents",
    "hungarian_max_weight",
    "top_k_merge",
]
