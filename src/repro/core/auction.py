"""Auction specifications, allocations, and outcomes.

An :class:`AuctionSpec` binds one bid phrase to the advertisers competing
for the page's ``k`` slots and to a CTR model.  Winner determination
(:mod:`repro.core.winner_determination`) maps a spec to an
:class:`Allocation`; a pricing rule (:mod:`repro.core.pricing`) extends the
allocation to an :class:`AuctionOutcome` with per-click prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

from repro.core.advertiser import Advertiser
from repro.core.ctr import CTRModel
from repro.errors import InvalidAuctionError

__all__ = ["AuctionSpec", "Allocation", "AuctionOutcome"]


@dataclass(frozen=True)
class AuctionSpec:
    """One sponsored-search auction: a phrase, its bidders, and slots.

    Attributes:
        phrase: The bid-phrase text the auction is keyed on.
        advertisers: Advertisers whose bid-phrase sets matched the phrase
            (the set ``I_q``).  Duplicate advertiser ids are rejected.
        ctr_model: The click-through-rate model used for this auction.
        num_slots: Number of ad slots ``k``; defaults to the CTR model's
            slot count.
    """

    phrase: str
    advertisers: Tuple[Advertiser, ...]
    ctr_model: CTRModel
    num_slots: int = 0

    def __init__(
        self,
        phrase: str,
        advertisers: Sequence[Advertiser],
        ctr_model: CTRModel,
        num_slots: int | None = None,
    ) -> None:
        ads = tuple(advertisers)
        ids = [a.advertiser_id for a in ads]
        if len(set(ids)) != len(ids):
            raise InvalidAuctionError(f"duplicate advertiser ids in auction: {ids!r}")
        k = ctr_model.num_slots if num_slots is None else num_slots
        if k <= 0:
            raise InvalidAuctionError(f"auction needs at least one slot, got {k}")
        if k > ctr_model.num_slots:
            raise InvalidAuctionError(
                f"auction asks for {k} slots but CTR model only covers "
                f"{ctr_model.num_slots}"
            )
        object.__setattr__(self, "phrase", phrase)
        object.__setattr__(self, "advertisers", ads)
        object.__setattr__(self, "ctr_model", ctr_model)
        object.__setattr__(self, "num_slots", k)

    def advertiser_by_id(self, advertiser_id: int) -> Advertiser:
        """Look up a participating advertiser by id."""
        for advertiser in self.advertisers:
            if advertiser.advertiser_id == advertiser_id:
                return advertiser
        raise InvalidAuctionError(
            f"advertiser {advertiser_id} is not in auction {self.phrase!r}"
        )


@dataclass(frozen=True)
class Allocation:
    """The result of winner determination: slot -> advertiser id.

    Attributes:
        slot_to_advertiser: ``slot_to_advertiser[j]`` is the advertiser id
            assigned to slot ``j`` (0-indexed), or ``None`` for an unfilled
            slot (fewer bidders than slots).
        expected_value: The objective value
            ``sum_j ctr_{alpha(j), j} * b_{alpha(j)}`` of the assignment --
            the total expected amount of bids realized.
    """

    slot_to_advertiser: Tuple[int | None, ...]
    expected_value: float

    def winners(self) -> Tuple[int, ...]:
        """Advertiser ids that won a slot, in slot order."""
        return tuple(a for a in self.slot_to_advertiser if a is not None)

    def slot_of(self, advertiser_id: int) -> int | None:
        """Slot index won by ``advertiser_id``, or ``None`` if it lost."""
        for j, winner in enumerate(self.slot_to_advertiser):
            if winner == advertiser_id:
                return j
        return None

    def __len__(self) -> int:
        return len(self.slot_to_advertiser)


@dataclass(frozen=True)
class AuctionOutcome:
    """An allocation plus the per-click prices a pricing rule computed.

    Attributes:
        spec: The auction this outcome resolves.
        allocation: The winner-determination result.
        prices: Mapping from winning advertiser id to the price charged if
            the user clicks that ad.  Every pricing rule in this library
            guarantees ``prices[i] <= b_i`` (the paper notes all deployed
            rules satisfy this).
    """

    spec: AuctionSpec
    allocation: Allocation
    prices: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for advertiser_id, price in self.prices.items():
            bid = self.spec.advertiser_by_id(advertiser_id).bid
            if price > bid + 1e-12:
                raise InvalidAuctionError(
                    f"price {price} exceeds bid {bid} for advertiser "
                    f"{advertiser_id}; pricing rules must never overcharge"
                )

    def price_of(self, advertiser_id: int) -> float:
        """Price per click for a winning advertiser."""
        try:
            return self.prices[advertiser_id]
        except KeyError:
            raise InvalidAuctionError(
                f"advertiser {advertiser_id} did not win auction "
                f"{self.spec.phrase!r}"
            ) from None

    def expected_revenue(self) -> float:
        """Expected revenue: ``sum_j ctr_{alpha(j), j} * price_{alpha(j)}``."""
        total = 0.0
        for j, advertiser_id in enumerate(self.allocation.slot_to_advertiser):
            if advertiser_id is None:
                continue
            total += self.spec.ctr_model.ctr(advertiser_id, j) * self.prices.get(
                advertiser_id, 0.0
            )
        return total
