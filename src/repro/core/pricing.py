"""Pricing rules for sponsored-search auctions.

All deployed pricing rules run winner determination first and then price
the winners (the paper's motivation for making winner determination fast).
Three rules are provided:

- :class:`FirstPrice` -- winners pay their own bid.
- :class:`GeneralizedSecondPrice` -- the Google/Yahoo rule: the winner of
  slot ``j`` pays the minimum bid that would keep it in slot ``j``, i.e.
  the score of the next-ranked advertiser divided by the winner's CTR
  factor (Edelman-Ostrovsky-Schwarz 2005, Varian 2006).
- :class:`LadderedVCG` -- the truthful "laddered" pricing of
  Aggarwal-Goel-Motwani (EC 2006) for separable CTRs.

Every rule guarantees ``price <= bid`` -- the invariant the paper calls
out; :class:`repro.core.auction.AuctionOutcome` re-checks it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.core.auction import Allocation, AuctionOutcome, AuctionSpec
from repro.core.ctr import SeparableCTRModel
from repro.core.topk import ScoredAdvertiser
from repro.core.winner_determination import determine_winners
from repro.errors import InvalidAuctionError

__all__ = [
    "PricingRule",
    "FirstPrice",
    "GeneralizedSecondPrice",
    "LadderedVCG",
]


class PricingRule(ABC):
    """A pricing rule prices the winners of an allocation.

    Subclasses implement :meth:`price`, mapping a spec and its allocation
    to per-click prices for each winner.  :meth:`run` is the convenience
    entry point: winner determination followed by pricing.
    """

    @abstractmethod
    def price(self, spec: AuctionSpec, allocation: Allocation) -> Dict[int, float]:
        """Return ``{advertiser_id: price_per_click}`` for the winners."""

    def run(self, spec: AuctionSpec) -> AuctionOutcome:
        """Resolve the auction: winner determination, then pricing."""
        allocation = determine_winners(spec)
        prices = self.price(spec, allocation)
        return AuctionOutcome(spec, allocation, prices)


class FirstPrice(PricingRule):
    """Winners pay exactly what they bid."""

    def price(self, spec: AuctionSpec, allocation: Allocation) -> Dict[int, float]:
        return {
            advertiser_id: spec.advertiser_by_id(advertiser_id).bid
            for advertiser_id in allocation.winners()
        }


def _separable_ranking(spec: AuctionSpec) -> List[ScoredAdvertiser]:
    """All advertisers scored by ``b_i * c_i``, best first."""
    model = spec.ctr_model
    if not isinstance(model, SeparableCTRModel):
        raise InvalidAuctionError(
            "GSP and laddered-VCG pricing require separable CTRs"
        )
    scored = [
        ScoredAdvertiser(
            a.bid * model.advertiser_factor(a.advertiser_id), a.advertiser_id
        )
        for a in spec.advertisers
    ]
    scored.sort(key=lambda e: e.sort_key, reverse=True)
    return scored


class GeneralizedSecondPrice(PricingRule):
    """Generalized second pricing (GSP).

    The advertiser in slot ``j`` pays the smallest bid that would have
    kept its position: ``score_{j+1} / c_i`` where ``score_{j+1}`` is the
    ``(j+1)``-th highest ``b * c`` among participants (0 if none).  This
    never exceeds the winner's own bid because its own score is at least
    ``score_{j+1}``.
    """

    def price(self, spec: AuctionSpec, allocation: Allocation) -> Dict[int, float]:
        ranking = _separable_ranking(spec)
        model = spec.ctr_model
        assert isinstance(model, SeparableCTRModel)
        prices: Dict[int, float] = {}
        for j, advertiser_id in enumerate(allocation.slot_to_advertiser):
            if advertiser_id is None:
                continue
            next_score = ranking[j + 1].score if j + 1 < len(ranking) else 0.0
            c_i = model.advertiser_factor(advertiser_id)
            if c_i <= 0.0:
                prices[advertiser_id] = 0.0
            else:
                prices[advertiser_id] = min(
                    spec.advertiser_by_id(advertiser_id).bid, next_score / c_i
                )
        return prices


class LadderedVCG(PricingRule):
    """Truthful laddered pricing (Aggarwal-Goel-Motwani 2006).

    For the advertiser in slot ``j`` (1-indexed ranks here, with slots
    ordered by non-increasing slot factor ``d``), the expected payment per
    impression is the "ladder"::

        pay_j = sum_{t=j}^{min(K, n-1)} (d_t - d_{t+1}) * score_{t+1}

    with ``d_{K+1} = 0``, where ``score_{t+1}`` is the ``(t+1)``-th highest
    ``b * c``.  The per-click price divides by the winner's expected CTR in
    the slot, ``c_i * d_j``.  This rule is dominant-strategy truthful under
    separability.
    """

    def price(self, spec: AuctionSpec, allocation: Allocation) -> Dict[int, float]:
        ranking = _separable_ranking(spec)
        model = spec.ctr_model
        assert isinstance(model, SeparableCTRModel)
        k = spec.num_slots
        d = list(model.slot_factors[:k]) + [0.0]
        prices: Dict[int, float] = {}
        for j, advertiser_id in enumerate(allocation.slot_to_advertiser):
            if advertiser_id is None:
                continue
            expected_payment = 0.0
            for t in range(j, k):
                next_score = ranking[t + 1].score if t + 1 < len(ranking) else 0.0
                expected_payment += (d[t] - d[t + 1]) * next_score
            c_i = model.advertiser_factor(advertiser_id)
            denom = c_i * d[j]
            if denom <= 0.0:
                prices[advertiser_id] = 0.0
            else:
                prices[advertiser_id] = min(
                    spec.advertiser_by_id(advertiser_id).bid,
                    expected_payment / denom,
                )
        return prices
