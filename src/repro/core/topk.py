"""Bounded top-k lists and the binary top-k merge operator.

The paper's shared-aggregation machinery (Section II) is built on a single
primitive: the binary *top-k merge*, which takes two ``k``-lists (lists of
at most ``k`` scored advertisers) and returns the top ``k`` elements of
their union.  This operator is associative, commutative, and idempotent,
and has the empty list as identity -- the axioms A1-A4 that drive the
complexity results.

:class:`TopKList` is an immutable value type so it can be used as a node
label and hashed into caches.  Ties in score are broken by ascending
advertiser id, which makes the operator a *total, deterministic* function
and lets property tests assert the algebraic axioms exactly rather than up
to tie-order.

Note on idempotence: merging a list with itself deduplicates by
advertiser id (an advertiser cannot win two slots -- the integer program's
third constraint), so ``merge(a, a) == a`` holds exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import InvalidAuctionError
from repro.instrument import NULL, Collector, names as metric_names

__all__ = ["ScoredAdvertiser", "TopKList", "top_k_merge", "top_k_scan"]


@dataclass(frozen=True, order=True)
class ScoredAdvertiser:
    """An advertiser id paired with its ranking score ``b_i * c_i``.

    Ordering: higher score first; ties broken by *lower* advertiser id.
    The dataclass ordering is ascending on ``(score, advertiser_id)``, so
    ranking code uses :attr:`sort_key` which inverts the id tie-break.
    """

    score: float
    advertiser_id: int

    @property
    def sort_key(self) -> Tuple[float, int]:
        """Key under which *larger* means *ranked better*.

        ``(-score, advertiser_id)`` ascending is the canonical rank order;
        this property returns ``(score, -advertiser_id)`` so ``max`` picks
        the best element.
        """
        return (self.score, -self.advertiser_id)

    def beats(self, other: "ScoredAdvertiser") -> bool:
        """Return whether this entry ranks strictly above ``other``."""
        return self.sort_key > other.sort_key


class TopKList:
    """An immutable list of at most ``k`` scored advertisers, best first.

    Instances are canonical: entries are sorted best-first, deduplicated by
    advertiser id (keeping the best score per id), and truncated to ``k``.
    Two ``TopKList`` objects compare equal iff they have the same ``k`` and
    the same entries, so the type supports exact algebraic-axiom checks.

    Args:
        k: Capacity; the number of ad slots.  Must be positive.
        entries: Any iterable of :class:`ScoredAdvertiser` (or
            ``(score, advertiser_id)`` tuples).
    """

    __slots__ = ("_k", "_entries")

    def __init__(
        self,
        k: int,
        entries: Iterable[ScoredAdvertiser | Tuple[float, int]] = (),
    ) -> None:
        if k <= 0:
            raise InvalidAuctionError(f"k must be positive, got {k}")
        normalized: dict[int, ScoredAdvertiser] = {}
        for entry in entries:
            if not isinstance(entry, ScoredAdvertiser):
                score, advertiser_id = entry
                entry = ScoredAdvertiser(float(score), int(advertiser_id))
            previous = normalized.get(entry.advertiser_id)
            if previous is None or entry.beats(previous):
                normalized[entry.advertiser_id] = entry
        ranked = sorted(normalized.values(), key=lambda e: e.sort_key, reverse=True)
        self._k = k
        self._entries: Tuple[ScoredAdvertiser, ...] = tuple(ranked[:k])

    @property
    def k(self) -> int:
        """Capacity of the list (number of slots)."""
        return self._k

    @property
    def entries(self) -> Tuple[ScoredAdvertiser, ...]:
        """The retained entries, best first."""
        return self._entries

    @classmethod
    def empty(cls, k: int) -> "TopKList":
        """Return the identity element for ``top_k_merge`` at capacity k."""
        return cls(k)

    @classmethod
    def singleton(cls, k: int, score: float, advertiser_id: int) -> "TopKList":
        """A one-entry list, skipping the normalization pass.

        A single entry is trivially sorted, deduplicated, and within
        capacity, so the canonicalizing constructor is pure overhead.
        This is the leaf-materialization fast path: plan executors build
        one singleton per advertiser leaf per (re)computation, which
        makes it the hottest ``TopKList`` construction site in a round.

        Raises:
            InvalidAuctionError: If ``k`` is not positive.
        """
        if k <= 0:
            raise InvalidAuctionError(f"k must be positive, got {k}")
        result = cls.__new__(cls)
        result._k = k
        result._entries = (ScoredAdvertiser(float(score), int(advertiser_id)),)
        return result

    @classmethod
    def from_ranked(
        cls, k: int, entries: Tuple[ScoredAdvertiser, ...]
    ) -> "TopKList":
        """Trusted fast path over already-canonical entries.

        The caller guarantees ``entries`` are best-first under
        ``sort_key``, deduplicated by advertiser id, and at most ``k``
        long -- exactly what the vectorized columnar kernel
        (:func:`repro.core.columnar.columnar_top_k`) produces after its
        lexsort, where re-running the canonicalizing constructor would
        double the kernel's Python-side cost for nothing.

        Raises:
            InvalidAuctionError: If ``k`` is not positive.
        """
        if k <= 0:
            raise InvalidAuctionError(f"k must be positive, got {k}")
        result = cls.__new__(cls)
        result._k = k
        result._entries = entries
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScoredAdvertiser]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ScoredAdvertiser:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopKList):
            return NotImplemented
        return self._k == other._k and self._entries == other._entries

    def __hash__(self) -> int:
        return hash((self._k, self._entries))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{e.advertiser_id}:{e.score:g}" for e in self._entries
        )
        return f"TopKList(k={self._k}, [{body}])"

    def advertiser_ids(self) -> Tuple[int, ...]:
        """The advertiser ids in rank order."""
        return tuple(e.advertiser_id for e in self._entries)

    def threshold(self) -> float:
        """Score of the worst retained entry, or ``-inf`` if not full.

        An incoming entry can change the list only if it beats this value
        (or the list still has room).
        """
        if len(self._entries) < self._k:
            return float("-inf")
        return self._entries[-1].score

    def insert(self, entry: ScoredAdvertiser | Tuple[float, int]) -> "TopKList":
        """Return a new list with ``entry`` merged in."""
        if not isinstance(entry, ScoredAdvertiser):
            score, advertiser_id = entry
            entry = ScoredAdvertiser(float(score), int(advertiser_id))
        return TopKList(self._k, (*self._entries, entry))


def top_k_merge(
    left: TopKList, right: TopKList, collector: Collector = NULL
) -> TopKList:
    """The paper's binary top-k aggregation operator ``⊕``.

    Returns the top ``k`` of the union of the two input k-lists.  The
    operator is associative (A1), commutative (A4), idempotent (A3), and
    has :meth:`TopKList.empty` as identity (A2); those properties are what
    Section II-C abstracts into the semilattice-with-identity axioms.

    Args:
        left: One operand.
        right: The other operand (same capacity).
        collector: Counts one ``topk.merges`` per call.  Callers that
            already account merges at a higher level (the plan executor)
            leave the default no-op collector here to avoid double
            counting.

    Raises:
        InvalidAuctionError: If the two lists have different capacities.
    """
    if collector.enabled:
        collector.incr(metric_names.TOPK_MERGES)
    if left.k != right.k:
        raise InvalidAuctionError(
            f"cannot merge top-k lists with different k: {left.k} vs {right.k}"
        )
    # Linear merge of two sorted runs, dedup by advertiser id on the fly.
    merged: list[ScoredAdvertiser] = []
    seen: set[int] = set()
    li, ri = 0, 0
    lentries, rentries = left.entries, right.entries
    while len(merged) < left.k and (li < len(lentries) or ri < len(rentries)):
        if ri >= len(rentries):
            candidate = lentries[li]
            li += 1
        elif li >= len(lentries):
            candidate = rentries[ri]
            ri += 1
        elif lentries[li].sort_key >= rentries[ri].sort_key:
            candidate = lentries[li]
            li += 1
        else:
            candidate = rentries[ri]
            ri += 1
        if candidate.advertiser_id not in seen:
            seen.add(candidate.advertiser_id)
            merged.append(candidate)
    result = TopKList.__new__(TopKList)
    result._k = left.k  # type: ignore[attr-defined]
    result._entries = tuple(merged)  # type: ignore[attr-defined]
    return result


def top_k_scan(
    k: int,
    scored: Iterable[ScoredAdvertiser | Tuple[float, int]],
    collector: Collector = NULL,
) -> TopKList:
    """Single-scan top-k over a stream of scored advertisers.

    This is the unshared baseline of Section II-A: one pass keeping a
    size-k heap.  An advertiser appearing multiple times keeps only its
    best score (it can win at most one slot); duplicates are resolved by
    a best-score-per-id pre-pass, so the heap phase only ever sees
    distinct ids and the whole scan is ``O(n + u log k)`` for ``u``
    unique ids -- an earlier version rebuilt and re-heapified the whole
    heap on every repeated id, which made an all-duplicate stream
    ``O(n * k)``.

    Args:
        k: Capacity of the result.
        scored: The stream of scored advertisers.
        collector: Counts one ``topk.scans`` per call and one
            ``topk.scan_entries`` per stream element (flushed once at the
            end of the pass, so the disabled overhead is two no-op calls
            per scan, not per entry).
    """
    best: dict[int, ScoredAdvertiser] = {}
    entries_seen = 0
    for entry in scored:
        entries_seen += 1
        if not isinstance(entry, ScoredAdvertiser):
            score, advertiser_id = entry
            entry = ScoredAdvertiser(float(score), int(advertiser_id))
        previous = best.get(entry.advertiser_id)
        if previous is None or entry.sort_key > previous.sort_key:
            best[entry.advertiser_id] = entry
    heap: list[Tuple[Tuple[float, int], ScoredAdvertiser]] = []
    for entry in best.values():
        item = (entry.sort_key, entry)
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item > heap[0]:
            heapq.heapreplace(heap, item)
    collector.incr(metric_names.TOPK_SCANS)
    collector.incr(metric_names.TOPK_SCAN_ENTRIES, entries_seen)
    return TopKList(k, (entry for _, entry in heap))
