"""Maximum-weight bipartite matching via the Hungarian algorithm.

Section V of the paper describes the non-separable winner-determination
technique from Martin, Gehrke & Halpern (ICDE 2008): build the complete
advertiser-slot bipartite graph weighted by expected realized bid
``ctr_ij * b_i``, prune to the advertisers with the top-k weights per
slot, and run the Hungarian algorithm on the pruned ``O(k^2) x k`` graph.

This module implements the Hungarian algorithm from scratch (Kuhn 1955,
in the potential/augmenting-path formulation, ``O(n^3)``).  The solver
works on square matrices, so :func:`hungarian_max_weight` pads the
rectangular ``m x k`` advertiser-slot matrix to ``n x n`` with
``n = max(m, k)`` zero-weight dummy cells and converts weights to costs
(``big - weight``).  The padding argument: every weight is
non-negative, so a minimum-cost *perfect* matching on the padded square
matrix never loses value by routing a real vertex through a dummy cell
unless no positive-weight partner remains -- hence it restricts to a
maximum-weight matching of the original rectangle, with
``weight <= 0`` pairs reported as unassigned.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import InvalidAuctionError

__all__ = ["hungarian_max_weight", "hungarian_min_cost"]


def hungarian_min_cost(cost: Sequence[Sequence[float]]) -> List[int]:
    """Solve the square assignment problem, minimizing total cost.

    Args:
        cost: An ``n x n`` cost matrix; ``cost[i][j]`` is the cost of
            assigning row ``i`` to column ``j``.

    Returns:
        A list ``assignment`` of length ``n`` where ``assignment[i]`` is
        the column assigned to row ``i``.

    Raises:
        InvalidAuctionError: If the matrix is empty or not square.

    The implementation is the classic ``O(n^3)`` shortest-augmenting-path
    formulation with row/column potentials (sometimes presented as the
    Jonker-Volgenant variant of Kuhn's Hungarian method).
    """
    n = len(cost)
    if n == 0:
        raise InvalidAuctionError("cost matrix must be non-empty")
    for row in cost:
        if len(row) != n:
            raise InvalidAuctionError("cost matrix must be square")

    INF = float("inf")
    # Potentials and matching arrays are 1-indexed with a dummy 0 column.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    # way[j] = previous column on the alternating path to column j.
    match_col = [0] * (n + 1)  # match_col[j] = row matched to column j

    for i in range(1, n + 1):
        match_col[0] = i
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        way = [0] * (n + 1)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match_col[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        # Augment along the alternating path.
        while j0:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1

    assignment = [0] * n
    for j in range(1, n + 1):
        if match_col[j]:
            assignment[match_col[j] - 1] = j - 1
    return assignment


def hungarian_max_weight(
    weights: Sequence[Sequence[float]],
) -> Tuple[List[int | None], float]:
    """Maximum-weight matching of rows (advertisers) to columns (slots).

    The matrix may be rectangular with more rows than columns (more
    advertisers than slots) or vice versa.  Rows left unmatched get
    ``None``.  Negative weights are treated as "never assign" (clamped to
    a zero-value dummy), which is the right semantics for expected
    realized bids, all of which are non-negative.

    Args:
        weights: ``m x k`` weight matrix, ``weights[i][j]`` the value of
            assigning row ``i`` to column ``j``.

    Returns:
        ``(assignment, total)`` where ``assignment[i]`` is the column for
        row ``i`` or ``None``, and ``total`` is the matching's weight.
    """
    m = len(weights)
    if m == 0:
        raise InvalidAuctionError("weight matrix must be non-empty")
    k = len(weights[0])
    for row in weights:
        if len(row) != k:
            raise InvalidAuctionError("weight matrix rows must have equal length")
    n = max(m, k)
    big = 0.0
    for row in weights:
        for w in row:
            if w > big:
                big = w
    # Pad to a square matrix of costs: cost = big - weight so that
    # minimizing cost maximizes weight; dummy cells cost `big` (weight 0).
    cost = [[big] * n for _ in range(n)]
    for i in range(m):
        for j in range(k):
            w = weights[i][j]
            if w > 0.0:
                cost[i][j] = big - w
    assignment_sq = hungarian_min_cost(cost)
    assignment: List[int | None] = [None] * m
    total = 0.0
    for i in range(m):
        j = assignment_sq[i]
        if j < k and weights[i][j] > 0.0:
            assignment[i] = j
            total += weights[i][j]
    return assignment, total
