"""Struct-of-arrays advertiser store with a zero-copy object view.

Per-object Python loops over :class:`repro.core.advertiser.Advertiser`
instances are the dominant cost under the cached hot paths (ROADMAP
item 2): every round the engine re-reads ``bid`` / ``ctr_factor`` /
``daily_budget`` attribute-by-attribute, advertiser-by-advertiser.
:class:`ColumnarStore` transposes the population once into numpy columns
-- advertiser ids, bid cents, bids, CTR factors, budget cents -- plus
per-phrase membership (row-index arrays and packed bitmaps), so the hot
kernels become whole-array operations:

- effective scoring: ``min(m * bid, remaining) / m`` over the occurring
  rows in a handful of vectorized int64/float64 ops
  (:meth:`repro.engine.pipeline.SharedAuctionEngine` with
  ``layout="columnar"``);
- per-phrase top-k: :func:`columnar_top_k` via ``np.argpartition`` with
  the exact ``(-score, advertiser_id)`` tie-break of the object path;
- TA sorted access: presorted column indices
  (:class:`repro.sharedsort.columnar.ColumnarThresholdKernel`).

The object API is preserved as a *view*: :meth:`ColumnarStore.advertiser`
returns an :class:`AdvertiserView` that duck-types ``Advertiser`` --
every attribute read goes straight to the arrays, so a mutation through
the store (:meth:`ColumnarStore.set_bid`, phrase churn) is immediately
visible through the view, and a mutation expressed as an object
(``advertiser.with_bid(...)``) round-trips into the arrays through
:meth:`ColumnarStore.absorb`.  The round-trip property suite
(``tests/core/test_columnar_roundtrip.py``) locks both directions.

Float-determinism contract: the columnar kernels produce *bit-identical*
scores to the object path.  ``int64 / int64`` true division and Python
``int / int`` both produce the IEEE-754 correctly rounded float64 (all
operands here are far below 2**53), and ``effective / 100.0 *
ctr_factor`` is evaluated in the same operation order as the object
path, so the 50-seed layout differential can assert byte-identical
winners, prices, and budget trajectories rather than approximate ones.

numpy is an install-time dependency of the package, but the columnar
layout is the only subsystem that *requires* it, so the import is
guarded: object-layout runs work on a numpy-less interpreter and only
``layout="columnar"`` raises.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.advertiser import Advertiser
from repro.core.money import dollars_to_cents
from repro.core.topk import ScoredAdvertiser, TopKList
from repro.errors import InvalidAuctionError
from repro.instrument import NULL, Collector, names as metric_names

try:  # pragma: no cover - exercised implicitly on every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the package
    np = None  # type: ignore[assignment]

__all__ = [
    "AdvertiserView",
    "ArrayScoreMap",
    "ColumnarStore",
    "columnar_top_k",
    "require_numpy",
]

UNBUDGETED_CENTS = 10**12
"""Sentinel for an unlimited budget; mirrors
:attr:`repro.engine.budget_manager.BudgetManager.UNBUDGETED_CENTS` so
``budget_cents - spent`` in array space equals the manager's
``remaining_cents`` exactly."""


def require_numpy() -> None:
    """Raise a clear error when numpy is missing.

    The columnar layout is opt-in; every entry point that needs the
    arrays calls this first so a numpy-less interpreter fails with an
    actionable message instead of an ``AttributeError`` deep in a kernel.
    """
    if np is None:  # pragma: no cover - numpy ships with the package
        raise InvalidAuctionError(
            "layout='columnar' requires numpy; install numpy or run with "
            "layout='object'"
        )


class AdvertiserView:
    """Zero-copy, read-through view of one store row.

    Duck-types :class:`repro.core.advertiser.Advertiser`: same
    attributes, same methods, same id-based equality and hashing -- so
    existing callers (CTR models, auction specs, tests) keep working
    when handed a view.  Reads resolve against the store's arrays at
    access time, which is what makes store-side mutations immediately
    visible: ``store.set_bid(3, 2.5)`` changes ``view.bid`` with no
    copy and no notification.

    The view is keyed by advertiser id, not row index, so it survives
    churn that renumbers rows; reading a view whose advertiser left the
    market raises :class:`repro.errors.InvalidAuctionError`.

    ``with_bid`` / ``with_phrases`` return plain frozen ``Advertiser``
    copies (the object API's contract is value semantics); feed them
    back through :meth:`ColumnarStore.absorb` to make the mutation
    visible in the arrays -- the round-trip the property suite checks.
    """

    __slots__ = ("_store", "advertiser_id")

    def __init__(self, store: "ColumnarStore", advertiser_id: int) -> None:
        self._store = store
        self.advertiser_id = advertiser_id

    @property
    def _row(self) -> int:
        row = self._store._row_of.get(self.advertiser_id)
        if row is None:
            raise InvalidAuctionError(
                f"advertiser {self.advertiser_id} left the market"
            )
        return row

    @property
    def bid(self) -> float:
        return float(self._store.bids[self._row])

    @property
    def ctr_factor(self) -> float:
        return float(self._store.ctr_factors[self._row])

    @property
    def daily_budget(self) -> float:
        cents = int(self._store.budget_cents[self._row])
        if cents == UNBUDGETED_CENTS:
            return float("inf")
        return cents / 100.0

    @property
    def phrases(self) -> FrozenSet[str]:
        return frozenset(self._store._phrases_of[self.advertiser_id])

    @property
    def phrase_ctr_factors(self) -> Mapping[str, float]:
        return dict(self._store._overrides_of[self.advertiser_id])

    def ctr_factor_for(self, phrase: str) -> float:
        return self._store._overrides_of[self.advertiser_id].get(
            phrase, self.ctr_factor
        )

    def score(self, phrase: Optional[str] = None) -> float:
        factor = (
            self.ctr_factor if phrase is None else self.ctr_factor_for(phrase)
        )
        return self.bid * factor

    def interested_in(self, phrase: str) -> bool:
        return phrase in self._store._phrases_of[self.advertiser_id]

    def with_bid(self, bid: float) -> Advertiser:
        return self.materialize().with_bid(bid)

    def with_phrases(self, phrases: Iterable[str]) -> Advertiser:
        return self.materialize().with_phrases(phrases)

    def materialize(self) -> Advertiser:
        """An independent plain :class:`Advertiser` snapshot of this row."""
        return Advertiser(
            advertiser_id=self.advertiser_id,
            bid=self.bid,
            ctr_factor=self.ctr_factor,
            daily_budget=self.daily_budget,
            phrases=self.phrases,
            phrase_ctr_factors=dict(self.phrase_ctr_factors),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (AdvertiserView, Advertiser)):
            return self.advertiser_id == other.advertiser_id
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.advertiser_id)

    def __repr__(self) -> str:
        return (
            f"AdvertiserView(id={self.advertiser_id}, bid={self.bid:g}, "
            f"ctr={self.ctr_factor:g})"
        )


class ArrayScoreMap(Mapping):
    """Read-only ``Mapping[int, float]`` over parallel (ids, values) arrays.

    The columnar scoring stage produces its results as two arrays -- the
    occurring advertiser ids (ascending) and their values -- but the
    object-path consumers (the cross-round plan executor, the shared
    merge-sort network, GSP pricing) expect a mapping.  This adapter
    serves them without materializing a dict: ``__getitem__`` is a
    binary search, iteration and ``items()`` stream straight off the
    arrays.

    Args:
        ids: Strictly ascending int64 advertiser ids.
        values: Parallel float64 values.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self, ids, values) -> None:
        require_numpy()
        if len(ids) != len(values):
            raise InvalidAuctionError("ids and values must be parallel")
        self._ids = ids
        self._values = values

    def __getitem__(self, key: int) -> float:
        position = int(np.searchsorted(self._ids, key))
        if position == len(self._ids) or int(self._ids[position]) != key:
            raise KeyError(key)
        return float(self._values[position])

    def get(self, key: int, default=None):
        position = int(np.searchsorted(self._ids, key))
        if position == len(self._ids) or int(self._ids[position]) != key:
            return default
        return float(self._values[position])

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, int):
            return False
        position = int(np.searchsorted(self._ids, key))
        return position < len(self._ids) and int(self._ids[position]) == key

    def __iter__(self):
        return (int(i) for i in self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def items(self):
        return (
            (int(i), float(v)) for i, v in zip(self._ids, self._values)
        )

    def __repr__(self) -> str:
        return f"ArrayScoreMap({len(self._ids)} entries)"


def columnar_top_k(
    k: int,
    scores,
    ids,
    collector: Collector = NULL,
) -> TopKList:
    """Vectorized exact top-k with the object path's tie-break.

    Replaces :func:`repro.core.topk.top_k_scan`'s per-entry heap with
    ``np.argpartition``: partition pulls the ``k`` best scores in O(n),
    then every row whose score ties the partition boundary joins the
    candidate set so the ``(-score, advertiser_id)`` tie-break is
    applied over *all* contenders -- the result is byte-identical to the
    heap scan, not merely score-equivalent.

    Args:
        k: Result capacity (positive).
        scores: float64 score per row.
        ids: Parallel int64 advertiser ids; must be distinct (an
            advertiser appears at most once per phrase).
        collector: Counts one ``topk.scans`` and ``len(scores)``
            ``topk.scan_entries``, mirroring the object scan's
            accounting so work tables stay comparable across layouts.
    """
    require_numpy()
    if k <= 0:
        raise InvalidAuctionError(f"k must be positive, got {k}")
    n = int(scores.shape[0])
    if collector.enabled:
        collector.incr(metric_names.TOPK_SCANS)
        collector.incr(metric_names.TOPK_SCAN_ENTRIES, n)
    if n == 0:
        return TopKList(k)
    if n > k:
        part = np.argpartition(-scores, k - 1)[:k]
        boundary = scores[part].min()
        candidates = np.flatnonzero(scores >= boundary)
    else:
        candidates = np.arange(n)
    order = np.lexsort((ids[candidates], -scores[candidates]))
    selected = candidates[order[:k]]
    return TopKList.from_ranked(
        k,
        tuple(
            ScoredAdvertiser(float(scores[i]), int(ids[i]))
            for i in selected
        ),
    )


class ColumnarStore:
    """The struct-of-arrays advertiser population.

    Rows are ordered by ascending advertiser id, so any row subset
    selected by ascending row index carries ascending ids -- which is
    what lets :class:`ArrayScoreMap` binary-search and what makes the
    columnar change-feed publishes deterministic (sorted-id order).

    Attributes (all parallel, one row per advertiser):
        ids: int64 advertiser ids, ascending.
        bid_cents: int64 bids in cents
            (:func:`repro.core.money.dollars_to_cents` of ``bid``).
        bids: float64 bids in dollars.
        ctr_factors: float64 phrase-independent CTR factors ``c_i``.
        budget_cents: int64 daily budgets in cents;
            :data:`UNBUDGETED_CENTS` for unlimited.

    Phrase membership is kept two ways: per-phrase *row-index arrays*
    (ascending; the form every kernel consumes) and packed *bitmaps*
    (:meth:`membership_bits`; 1 bit per row, the compact interchange
    form).  Both are derived caches over the authoritative
    ``{advertiser: phrases}`` sets and are invalidated on churn and on
    change-feed events (:meth:`connect`).

    Mutations go through the store (:meth:`set_bid`, :meth:`set_budget`,
    :meth:`add_interest`, :meth:`remove_interest`, :meth:`absorb`,
    :meth:`add_advertiser`, :meth:`remove_advertiser`); views observe
    them instantly.  Structural churn (advertisers entering/leaving)
    renumbers rows and drops every derived cache.
    """

    def __init__(self, advertisers: Sequence[Advertiser] = ()) -> None:
        require_numpy()
        ordered = sorted(advertisers, key=lambda a: a.advertiser_id)
        seen: Set[int] = set()
        for advertiser in ordered:
            if advertiser.advertiser_id in seen:
                raise InvalidAuctionError(
                    f"duplicate advertiser id {advertiser.advertiser_id}"
                )
            seen.add(advertiser.advertiser_id)
        self._phrases_of: Dict[int, Set[str]] = {
            a.advertiser_id: set(a.phrases) for a in ordered
        }
        self._overrides_of: Dict[int, Dict[str, float]] = {
            a.advertiser_id: dict(a.phrase_ctr_factors) for a in ordered
        }
        self._rebuild_columns(ordered)
        self._drop_derived()

    # ------------------------------------------------------------------
    # construction / column maintenance
    # ------------------------------------------------------------------
    @classmethod
    def from_advertisers(
        cls, advertisers: Sequence[Advertiser]
    ) -> "ColumnarStore":
        """Transpose an advertiser population into columns."""
        return cls(advertisers)

    def _rebuild_columns(self, ordered: Sequence[Advertiser]) -> None:
        """(Re)build the numeric columns from object-shaped rows."""
        n = len(ordered)
        self.ids = np.fromiter(
            (a.advertiser_id for a in ordered), dtype=np.int64, count=n
        )
        self.bids = np.fromiter(
            (a.bid for a in ordered), dtype=np.float64, count=n
        )
        self.bid_cents = np.fromiter(
            (dollars_to_cents(a.bid) for a in ordered),
            dtype=np.int64,
            count=n,
        )
        self.ctr_factors = np.fromiter(
            (a.ctr_factor for a in ordered), dtype=np.float64, count=n
        )
        self.budget_cents = np.fromiter(
            (
                UNBUDGETED_CENTS
                if a.daily_budget == float("inf")
                else dollars_to_cents(a.daily_budget)
                for a in ordered
            ),
            dtype=np.int64,
            count=n,
        )
        self._row_of: Dict[int, int] = {
            int(advertiser_id): row
            for row, advertiser_id in enumerate(self.ids)
        }

    def _rebuild_from_objects(self) -> None:
        """Renumber rows after structural churn (add/remove advertiser)."""
        ordered = [
            self._materialize_id(advertiser_id)
            for advertiser_id in sorted(self._phrases_of)
        ]
        self._rebuild_columns(ordered)
        self._drop_derived()

    def _materialize_id(self, advertiser_id: int) -> Advertiser:
        row = self._row_of.get(advertiser_id)
        if row is None:
            raise InvalidAuctionError(f"unknown advertiser {advertiser_id}")
        return self.advertiser(advertiser_id).materialize()

    def _drop_derived(self) -> None:
        self._phrase_rows: Dict[str, "np.ndarray"] = {}
        self._phrase_masks: Dict[str, "np.ndarray"] = {}
        self._phrase_bits: Dict[str, "np.ndarray"] = {}
        self._phrase_ctrs: Dict[str, "np.ndarray"] = {}
        self._phrase_ctr_ranks: Dict[str, "np.ndarray"] = {}

    def _invalidate_phrase(self, phrase: str) -> None:
        """Drop one phrase's derived arrays (membership or CTRs moved)."""
        self._phrase_rows.pop(phrase, None)
        self._phrase_masks.pop(phrase, None)
        self._phrase_bits.pop(phrase, None)
        self._phrase_ctrs.pop(phrase, None)
        self._phrase_ctr_ranks.pop(phrase, None)

    def _invalidate_advertiser(self, advertiser_id: int) -> None:
        """Drop derived arrays for every phrase the advertiser is in."""
        for phrase in self._phrases_of.get(advertiser_id, ()):
            self._invalidate_phrase(phrase)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of rows (advertisers)."""
        return len(self.ids)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, advertiser_id: int) -> bool:
        return advertiser_id in self._row_of

    def row_of(self, advertiser_id: int) -> int:
        """The row index of one advertiser."""
        row = self._row_of.get(advertiser_id)
        if row is None:
            raise InvalidAuctionError(f"unknown advertiser {advertiser_id}")
        return row

    def rows_of(self, advertiser_ids) -> "np.ndarray":
        """Vectorized id -> row translation (ids must all exist).

        Exploits the ascending-id row order: a single ``searchsorted``
        translates any id array, which is how per-round spent snapshots
        and fragment member lists land in row space without a Python
        loop per entry.
        """
        wanted = np.asarray(advertiser_ids, dtype=np.int64)
        rows = np.searchsorted(self.ids, wanted)
        if len(wanted) and (
            rows.max(initial=0) >= self.size
            or not np.array_equal(self.ids[rows], wanted)
        ):
            missing = [
                int(a) for a in wanted if int(a) not in self._row_of
            ]
            raise InvalidAuctionError(f"unknown advertisers {missing!r}")
        return rows

    def advertiser(self, advertiser_id: int) -> AdvertiserView:
        """The zero-copy object view of one advertiser."""
        if advertiser_id not in self._row_of:
            raise InvalidAuctionError(f"unknown advertiser {advertiser_id}")
        return AdvertiserView(self, advertiser_id)

    def views(self) -> Tuple[AdvertiserView, ...]:
        """Views of every advertiser, ascending id order."""
        return tuple(
            AdvertiserView(self, int(advertiser_id))
            for advertiser_id in self.ids
        )

    def phrases(self) -> List[str]:
        """Every phrase with at least one interested advertiser, sorted."""
        alive: Set[str] = set()
        for phrases in self._phrases_of.values():
            alive |= phrases
        return sorted(alive)

    def phrase_rows(self, phrase: str) -> "np.ndarray":
        """Ascending row indices of the phrase's interested advertisers."""
        rows = self._phrase_rows.get(phrase)
        if rows is None:
            members = sorted(
                advertiser_id
                for advertiser_id, phrases in self._phrases_of.items()
                if phrase in phrases
            )
            rows = self.rows_of(members)
            self._phrase_rows[phrase] = rows
        return rows

    def membership(self, phrase: str) -> "np.ndarray":
        """Boolean membership mask over all rows."""
        mask = self._phrase_masks.get(phrase)
        if mask is None:
            mask = np.zeros(self.size, dtype=bool)
            mask[self.phrase_rows(phrase)] = True
            self._phrase_masks[phrase] = mask
        return mask

    def membership_bits(self, phrase: str) -> "np.ndarray":
        """Packed membership bitmap (1 bit per row, ``np.packbits``)."""
        bits = self._phrase_bits.get(phrase)
        if bits is None:
            bits = np.packbits(self.membership(phrase))
            self._phrase_bits[phrase] = bits
        return bits

    def phrase_ctr(self, phrase: str) -> "np.ndarray":
        """``c_i^q`` for the phrase's rows (parallel to ``phrase_rows``).

        The phrase-independent factor column with the advertiser's
        per-phrase override applied where present -- exactly
        :meth:`Advertiser.ctr_factor_for`, vectorized.
        """
        factors = self._phrase_ctrs.get(phrase)
        if factors is None:
            rows = self.phrase_rows(phrase)
            factors = self.ctr_factors[rows].copy()
            for position, row in enumerate(rows):
                advertiser_id = int(self.ids[row])
                override = self._overrides_of[advertiser_id].get(phrase)
                if override is not None:
                    factors[position] = override
            self._phrase_ctrs[phrase] = factors
        return factors

    def phrase_ctr_rank_rows(self, phrase: str) -> "np.ndarray":
        """The phrase's rows presorted by descending ``c_i^q``, ties by id.

        This is the columnar replacement for the engine's per-phrase
        ``_ctr_orders`` lists: the TA kernel walks this index array as
        its CTR-sorted list (Section III treats CTR factors as
        recalculated only occasionally, so the presort is cached).
        """
        ranked = self._phrase_ctr_ranks.get(phrase)
        if ranked is None:
            rows = self.phrase_rows(phrase)
            factors = self.phrase_ctr(phrase)
            order = np.lexsort((self.ids[rows], -factors))
            ranked = rows[order]
            self._phrase_ctr_ranks[phrase] = ranked
        return ranked

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def set_bid(self, advertiser_id: int, bid: float) -> None:
        """Change one advertiser's bid in place (views see it instantly)."""
        if bid < 0.0:
            raise InvalidAuctionError(f"bid must be non-negative, got {bid!r}")
        row = self.row_of(advertiser_id)
        self.bids[row] = bid
        self.bid_cents[row] = dollars_to_cents(bid)

    def set_budget(self, advertiser_id: int, daily_budget: float) -> None:
        """Change one advertiser's daily budget in place."""
        if daily_budget < 0.0:
            raise InvalidAuctionError("daily_budget must be non-negative")
        row = self.row_of(advertiser_id)
        self.budget_cents[row] = (
            UNBUDGETED_CENTS
            if daily_budget == float("inf")
            else dollars_to_cents(daily_budget)
        )

    def add_interest(self, advertiser_id: int, phrase: str) -> None:
        """Add ``advertiser_id`` to a phrase's membership."""
        self.row_of(advertiser_id)
        self._phrases_of[advertiser_id].add(phrase)
        self._invalidate_phrase(phrase)

    def remove_interest(self, advertiser_id: int, phrase: str) -> None:
        """Remove ``advertiser_id`` from a phrase's membership."""
        self.row_of(advertiser_id)
        self._phrases_of[advertiser_id].discard(phrase)
        self._overrides_of[advertiser_id].pop(phrase, None)
        self._invalidate_phrase(phrase)

    def absorb(self, advertiser: Advertiser) -> None:
        """Adopt an object-side mutation into the arrays.

        The inverse direction of the view: callers that produced a new
        value through the frozen object API (``with_bid``,
        ``with_phrases``, a rebuilt ``Advertiser``) push it back here.
        An unknown advertiser is added; a known one has its columns,
        phrase memberships, and per-phrase overrides synchronized.
        """
        advertiser_id = advertiser.advertiser_id
        if advertiser_id not in self._row_of:
            self.add_advertiser(advertiser)
            return
        row = self._row_of[advertiser_id]
        self.bids[row] = advertiser.bid
        self.bid_cents[row] = dollars_to_cents(advertiser.bid)
        self.ctr_factors[row] = advertiser.ctr_factor
        self.budget_cents[row] = (
            UNBUDGETED_CENTS
            if advertiser.daily_budget == float("inf")
            else dollars_to_cents(advertiser.daily_budget)
        )
        before = self._phrases_of[advertiser_id]
        after = set(advertiser.phrases)
        for phrase in before ^ after:
            self._invalidate_phrase(phrase)
        # CTR factor / override changes move the cached per-phrase CTR
        # arrays of every phrase the advertiser stays in.
        for phrase in before & after:
            self._invalidate_phrase(phrase)
        self._phrases_of[advertiser_id] = after
        self._overrides_of[advertiser_id] = dict(
            advertiser.phrase_ctr_factors
        )

    def add_advertiser(self, advertiser: Advertiser) -> None:
        """Add a new row (renumbers rows; derived caches drop)."""
        if advertiser.advertiser_id in self._row_of:
            raise InvalidAuctionError(
                f"duplicate advertiser id {advertiser.advertiser_id}"
            )
        self._phrases_of[advertiser.advertiser_id] = set(advertiser.phrases)
        self._overrides_of[advertiser.advertiser_id] = dict(
            advertiser.phrase_ctr_factors
        )
        ordered = sorted(
            [
                *(
                    self.advertiser(int(i)).materialize()
                    for i in self.ids
                ),
                advertiser,
            ],
            key=lambda a: a.advertiser_id,
        )
        self._rebuild_columns(ordered)
        self._drop_derived()

    def remove_advertiser(self, advertiser_id: int) -> None:
        """Drop a row (renumbers rows; derived caches drop)."""
        self.row_of(advertiser_id)
        ordered = [
            self.advertiser(int(i)).materialize()
            for i in self.ids
            if int(i) != advertiser_id
        ]
        del self._phrases_of[advertiser_id]
        del self._overrides_of[advertiser_id]
        self._rebuild_columns(ordered)
        self._drop_derived()

    # ------------------------------------------------------------------
    # change-feed integration
    # ------------------------------------------------------------------
    def connect(self, feed) -> None:
        """Subscribe to a change feed and keep derived arrays honest.

        The store attaches a push handler so invalidation happens at
        publish time, before any consumer can read a stale derived
        array:

        - ``bid_changed`` / ``budget_changed``: the advertiser's numeric
          inputs may have moved externally; its phrases' derived CTR /
          rank caches are dropped (cheap and sound -- over-invalidation
          only costs a rebuild).
        - ``phrase_added`` / ``phrase_removed``: membership churn is
          applied directly (the events carry the member ids).
        - ``advertiser_removed``: the row is dropped.
        - ``advertiser_added``: the event names the advertiser and its
          phrases but carries no bid or budget, so the store cannot
          build the row from the event alone; callers follow up with
          :meth:`absorb` of the full object (the property suite pins
          this contract).
        """
        feed.attach(
            self._on_event,
            kinds=(
                "bid_changed",
                "budget_changed",
                "advertiser_removed",
                "phrase_added",
                "phrase_removed",
            ),
        )

    def _on_event(self, event) -> None:
        kind = event.kind
        if kind in ("bid_changed", "budget_changed"):
            self._invalidate_advertiser(event.advertiser_id)
        elif kind == "advertiser_removed":
            if event.advertiser_id in self._row_of:
                self.remove_advertiser(event.advertiser_id)
        elif kind == "phrase_added":
            for advertiser_id in sorted(event.advertiser_ids):
                if advertiser_id in self._row_of:
                    self.add_interest(advertiser_id, event.phrase)
        elif kind == "phrase_removed":
            for advertiser_id, phrases in self._phrases_of.items():
                phrases.discard(event.phrase)
                self._overrides_of[advertiser_id].pop(event.phrase, None)
            self._invalidate_phrase(event.phrase)
