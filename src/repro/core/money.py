"""The one audited dollars-to-cents conversion.

Money is integer cents everywhere below the market-definition boundary:
the Section IV exact throttle is ``O(min(2^l, β))`` *"assuming that β is
written in the lowest denomination of currency"*, and integer arithmetic
keeps the DP exact.  Advertisers, however, state bids and daily budgets
in dollars (:class:`repro.core.advertiser.Advertiser`), so every path
into the engine has to cross the dollars→cents boundary exactly once --
and every crossing must round the same way, or the same market yields
different integer books depending on which door it came through.

The conversion rounds half-cents **up** (away from zero never arises:
amounts are non-negative).  ``int(round(x * 100))`` -- the expression
this helper replaced -- uses Python's banker's rounding, under which a
$0.125 bid becomes 12¢ while a $0.135 bid becomes 14¢: whether an
advertiser's half-cent survives depended on the parity of the adjacent
cent.  Half-up is the convention actual ad platforms and ledgers use,
and it is monotone: a strictly higher dollar amount never converts to a
lower cent amount.
"""

from __future__ import annotations

import math

from repro.errors import InvalidAuctionError

__all__ = ["dollars_to_cents"]


def dollars_to_cents(dollars: float) -> int:
    """Convert a non-negative dollar amount to integer cents, half-up.

    ``dollars_to_cents(0.125) == 13`` (banker's rounding would give 12).
    Values within one part in 10⁹ of a half-cent boundary are treated as
    sitting *on* the boundary, so amounts like ``0.145`` that decimal
    notation cannot represent exactly in binary (it is stored as
    ``0.14499999...``) still round up the way the advertiser wrote them.

    Raises:
        InvalidAuctionError: If ``dollars`` is negative, NaN, or infinite
            (infinite budgets are modeled by *omitting* the budget, not
            by converting infinity).
    """
    if math.isnan(dollars) or math.isinf(dollars):
        raise InvalidAuctionError(
            f"cannot convert {dollars!r} to cents; unbudgeted advertisers "
            "are modeled by omission, not by converting infinity"
        )
    if dollars < 0.0:
        raise InvalidAuctionError(
            f"money amounts must be non-negative, got {dollars!r}"
        )
    # The 1e-9 nudge absorbs binary representation error: the float
    # stored for a decimal literal like 0.145 is 14.499999999999998
    # cents, a hair *below* the half-cent boundary its author wrote, and
    # without the nudge it would round down instead of up.  No bid or
    # budget is ever specified to a precision where a true value within
    # 1e-11 dollars of a half-cent boundary means anything different.
    return int(math.floor(dollars * 100.0 + 0.5 + 1e-9))
