"""Single-auction winner determination.

Winner determination assigns the ``k`` ad slots to the ``n`` interested
advertisers so as to maximize the total expected amount of bids realized,
with no advertiser taking more than one slot (the integer program in the
paper's introduction).

Two regimes are implemented:

- **Separable** (Section II-A): when ``ctr_ij = c_i * d_j`` with the slots
  ordered by non-increasing ``d_j``, the optimum simply places the
  advertiser with the ``j``-th highest ``b_i * c_i`` in slot ``j``.  One
  scan, ``O(n log k)``.
- **Non-separable** (Section V, from Martin-Gehrke-Halpern 2008): build
  the advertiser-slot bipartite graph weighted by ``ctr_ij * b_i``, prune
  each slot to its top-k incident advertisers, and solve max-weight
  matching on the pruned graph with the Hungarian algorithm.  A
  brute-force exact matcher over the *unpruned* graph is also provided for
  cross-validation.

The non-separable path additionally has a *columnar* kernel
(:func:`determine_winners_nonseparable_columnar`): the ``n x k`` weight
matrix is built as one outer-product-shaped numpy op
(``ctr_matrix * bids[:, None]``), each slot's top-k prune is an
``np.argpartition`` column selection with the same boundary-tie
expansion discipline as :func:`repro.core.columnar.columnar_top_k`, and
the pruned ``O(k^2) x k`` graph feeds the *same*
:func:`repro.core.matching.hungarian_max_weight`.  Per-element float
products are IEEE-identical to the object path's
``model.ctr(i, j) * a.bid`` and the per-slot selection reproduces
``top_k_scan`` byte for byte, so the object path stays the exact
differential oracle, not an approximate one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.advertiser import Advertiser
from repro.core.auction import Allocation, AuctionSpec
from repro.core.columnar import columnar_top_k, require_numpy
from repro.core.ctr import CTRModel, MatrixCTRModel, SeparableCTRModel
from repro.core.matching import hungarian_max_weight
from repro.core.topk import ScoredAdvertiser, TopKList, top_k_scan
from repro.errors import InvalidAuctionError

try:  # pragma: no cover - numpy ships with the package
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "determine_winners",
    "determine_winners_separable",
    "determine_winners_nonseparable",
    "determine_winners_nonseparable_columnar",
    "nonseparable_weight_matrix",
    "allocation_from_topk",
    "prune_candidates",
]


def determine_winners(spec: AuctionSpec) -> Allocation:
    """Winner determination dispatching on the CTR model type.

    Uses the linear-scan separable algorithm when the spec carries a
    :class:`SeparableCTRModel`, and the pruned-Hungarian non-separable
    algorithm otherwise.
    """
    if isinstance(spec.ctr_model, SeparableCTRModel):
        return determine_winners_separable(spec)
    return determine_winners_nonseparable(spec)


def determine_winners_separable(spec: AuctionSpec) -> Allocation:
    """Separable winner determination: top-k by ``b_i * c_i``.

    The advertiser with the ``j``-th highest score is assigned slot ``j``
    (slots ordered by non-increasing ``d_j``).  Ties in score are broken
    by ascending advertiser id.
    """
    model = spec.ctr_model
    if not isinstance(model, SeparableCTRModel):
        raise InvalidAuctionError(
            "determine_winners_separable requires a SeparableCTRModel"
        )
    k = spec.num_slots
    scored = (
        ScoredAdvertiser(
            a.bid * model.advertiser_factor(a.advertiser_id), a.advertiser_id
        )
        for a in spec.advertisers
    )
    ranking = top_k_scan(k, scored)
    return allocation_from_topk(ranking, model, k)


def allocation_from_topk(
    ranking: TopKList, model: SeparableCTRModel, num_slots: int
) -> Allocation:
    """Convert a top-k ranking of ``b_i * c_i`` scores into an allocation.

    This is the bridge the shared machinery uses: shared plans and shared
    sorts produce :class:`TopKList` rankings; this function turns one into
    the slot assignment and objective value for a concrete auction.
    """
    slots: List[int | None] = [None] * num_slots
    value = 0.0
    for j, entry in enumerate(ranking.entries[:num_slots]):
        slots[j] = entry.advertiser_id
        value += entry.score * model.slot_factors[j]
    return Allocation(tuple(slots), value)


def prune_candidates(
    advertisers: Sequence[Advertiser], model: CTRModel, num_slots: int
) -> List[Advertiser]:
    """Keep only advertisers among the top-k of some slot (Section V).

    For each slot ``j``, the ``k`` advertisers with the highest
    ``ctr_ij * b_i`` are retained; the union over slots (at most ``k^2``
    advertisers) provably contains an optimal assignment, because an
    optimal matching assigns each slot to somebody, and replacing a
    non-retained advertiser in slot ``j`` with an unused retained one
    never lowers the objective.
    """
    keep: Dict[int, Advertiser] = {}
    by_id = {a.advertiser_id: a for a in advertisers}
    for j in range(num_slots):
        scored = (
            ScoredAdvertiser(model.ctr(a.advertiser_id, j) * a.bid, a.advertiser_id)
            for a in advertisers
        )
        for entry in top_k_scan(num_slots, scored):
            keep[entry.advertiser_id] = by_id[entry.advertiser_id]
    return [keep[i] for i in sorted(keep)]


def determine_winners_nonseparable(
    spec: AuctionSpec, prune: bool = True
) -> Allocation:
    """Non-separable winner determination via pruned max-weight matching.

    Args:
        spec: The auction; its CTR model may be any :class:`CTRModel`.
        prune: When ``True`` (default), apply the top-k-per-slot pruning of
            Section V before matching; when ``False``, match the full
            bipartite graph (used by tests to validate the pruning).
    """
    model = spec.ctr_model
    k = spec.num_slots
    candidates = list(spec.advertisers)
    if prune and len(candidates) > k * k:
        candidates = prune_candidates(candidates, model, k)
    if not candidates:
        return Allocation(tuple([None] * k), 0.0)
    weights = [
        [model.ctr(a.advertiser_id, j) * a.bid for j in range(k)]
        for a in candidates
    ]
    assignment, total = hungarian_max_weight(weights)
    slots: List[int | None] = [None] * k
    for row, j in enumerate(assignment):
        if j is not None:
            slots[j] = candidates[row].advertiser_id
    return Allocation(tuple(slots), total)


def nonseparable_weight_matrix(
    spec: AuctionSpec,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """The Section V bipartite weights as arrays (advertisers in spec order).

    Returns:
        ``(ids, weights)``: the advertiser ids (int64, spec order) and
        the ``n x k`` float64 matrix with ``weights[i, j] =
        ctr_ij * b_i``.  The CTR matrix is gathered row-wise from a
        :class:`MatrixCTRModel` (one C-level conversion) or through
        ``model.ctr`` calls for any other model; the bid product is one
        vectorized broadcast, elementwise IEEE-identical to the object
        path's per-cell ``model.ctr(i, j) * a.bid``.

    The matrix is static market data (bids and CTRs, not budgets), so
    callers serving repeated auctions can build it once and hand it to
    :func:`determine_winners_nonseparable_columnar` -- that is what the
    Section V kernel benchmark measures.
    """
    require_numpy()
    model = spec.ctr_model
    k = spec.num_slots
    ads = spec.advertisers
    ids = np.fromiter(
        (a.advertiser_id for a in ads), dtype=np.int64, count=len(ads)
    )
    bids = np.fromiter(
        (a.bid for a in ads), dtype=np.float64, count=len(ads)
    )
    if isinstance(model, MatrixCTRModel):
        rows = model.rows
        ctr = np.array(
            [rows[a.advertiser_id][:k] for a in ads], dtype=np.float64
        ).reshape(len(ads), k)
    else:
        ctr = np.empty((len(ads), k), dtype=np.float64)
        for row, a in enumerate(ads):
            for j in range(k):
                ctr[row, j] = model.ctr(a.advertiser_id, j)
    return ids, ctr * bids[:, None]


def _prune_candidate_rows(
    ids: "np.ndarray", weights: "np.ndarray", num_slots: int
) -> List[int]:
    """Vectorized Section V prune: union of each slot's exact top-k rows.

    Each slot's selection is :func:`repro.core.columnar.columnar_top_k`
    over its weight column -- ``np.argpartition`` plus the boundary-tie
    expansion that reproduces ``top_k_scan``'s ``(-weight, id)``
    selection byte for byte -- so the union equals
    :func:`prune_candidates`' exactly.  Returned row indices are in
    ascending-id order, matching the object prune's candidate order
    (which fixes the Hungarian input row order, hence the assignment).
    """
    keep: Dict[int, int] = {}
    for j in range(num_slots):
        for entry in columnar_top_k(num_slots, weights[:, j], ids):
            keep.setdefault(entry.advertiser_id, 0)
    row_of = {int(advertiser_id): row for row, advertiser_id in enumerate(ids)}
    return [row_of[advertiser_id] for advertiser_id in sorted(keep)]


def determine_winners_nonseparable_columnar(
    spec: AuctionSpec,
    prune: bool = True,
    precomputed: Optional[Tuple["np.ndarray", "np.ndarray"]] = None,
) -> Allocation:
    """Vectorized non-separable winner determination (Section V).

    Exactly :func:`determine_winners_nonseparable` -- same prune gate,
    same candidate set and order, same Hungarian call on bitwise-equal
    weights -- with the graph built and pruned in array space.  The
    object path is the differential oracle
    (``tests/core/test_columnar_matching.py`` asserts allocation
    equality including ``expected_value`` bit-for-bit).

    Args:
        spec: The auction; its CTR model may be any :class:`CTRModel`.
        prune: Apply the top-k-per-slot pruning when the population
            exceeds ``k * k`` (the object path's gate).
        precomputed: Optional ``(ids, weights)`` from
            :func:`nonseparable_weight_matrix` for the same spec, so
            repeated auctions over static bids/CTRs skip the matrix
            build.
    """
    require_numpy()
    k = spec.num_slots
    if precomputed is not None:
        ids, weights = precomputed
    else:
        ids, weights = nonseparable_weight_matrix(spec)
    n = len(ids)
    if not n:
        return Allocation(tuple([None] * k), 0.0)
    if prune and n > k * k:
        candidate_rows = _prune_candidate_rows(ids, weights, k)
        ids = ids[candidate_rows]
        weights = weights[candidate_rows]
    assignment, total = hungarian_max_weight(weights.tolist())
    slots: List[int | None] = [None] * k
    for row, j in enumerate(assignment):
        if j is not None:
            slots[j] = int(ids[row])
    return Allocation(tuple(slots), total)


def brute_force_winner_determination(spec: AuctionSpec) -> Allocation:
    """Exhaustive winner determination for validation on tiny instances.

    Enumerates all one-to-one slot assignments; exponential, so only use
    with a handful of advertisers and slots.
    """
    from itertools import permutations

    model = spec.ctr_model
    k = spec.num_slots
    ads = list(spec.advertisers)
    n = len(ads)
    best_value = 0.0
    best_slots: Tuple[int | None, ...] = tuple([None] * k)
    # Choose up to min(n, k) advertisers and an injection into slots.
    indices = list(range(n))
    for r in range(0, min(n, k) + 1):
        for perm in permutations(indices, r):
            from itertools import combinations

            for slot_choice in combinations(range(k), r):
                value = 0.0
                slots: List[int | None] = [None] * k
                for ad_index, j in zip(perm, slot_choice):
                    a = ads[ad_index]
                    slots[j] = a.advertiser_id
                    value += model.ctr(a.advertiser_id, j) * a.bid
                if value > best_value:
                    best_value = value
                    best_slots = tuple(slots)
    return Allocation(best_slots, best_value)
