"""Single-auction winner determination.

Winner determination assigns the ``k`` ad slots to the ``n`` interested
advertisers so as to maximize the total expected amount of bids realized,
with no advertiser taking more than one slot (the integer program in the
paper's introduction).

Two regimes are implemented:

- **Separable** (Section II-A): when ``ctr_ij = c_i * d_j`` with the slots
  ordered by non-increasing ``d_j``, the optimum simply places the
  advertiser with the ``j``-th highest ``b_i * c_i`` in slot ``j``.  One
  scan, ``O(n log k)``.
- **Non-separable** (Section V, from Martin-Gehrke-Halpern 2008): build
  the advertiser-slot bipartite graph weighted by ``ctr_ij * b_i``, prune
  each slot to its top-k incident advertisers, and solve max-weight
  matching on the pruned graph with the Hungarian algorithm.  A
  brute-force exact matcher over the *unpruned* graph is also provided for
  cross-validation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.advertiser import Advertiser
from repro.core.auction import Allocation, AuctionSpec
from repro.core.ctr import CTRModel, MatrixCTRModel, SeparableCTRModel
from repro.core.matching import hungarian_max_weight
from repro.core.topk import ScoredAdvertiser, TopKList, top_k_scan
from repro.errors import InvalidAuctionError

__all__ = [
    "determine_winners",
    "determine_winners_separable",
    "determine_winners_nonseparable",
    "allocation_from_topk",
    "prune_candidates",
]


def determine_winners(spec: AuctionSpec) -> Allocation:
    """Winner determination dispatching on the CTR model type.

    Uses the linear-scan separable algorithm when the spec carries a
    :class:`SeparableCTRModel`, and the pruned-Hungarian non-separable
    algorithm otherwise.
    """
    if isinstance(spec.ctr_model, SeparableCTRModel):
        return determine_winners_separable(spec)
    return determine_winners_nonseparable(spec)


def determine_winners_separable(spec: AuctionSpec) -> Allocation:
    """Separable winner determination: top-k by ``b_i * c_i``.

    The advertiser with the ``j``-th highest score is assigned slot ``j``
    (slots ordered by non-increasing ``d_j``).  Ties in score are broken
    by ascending advertiser id.
    """
    model = spec.ctr_model
    if not isinstance(model, SeparableCTRModel):
        raise InvalidAuctionError(
            "determine_winners_separable requires a SeparableCTRModel"
        )
    k = spec.num_slots
    scored = (
        ScoredAdvertiser(
            a.bid * model.advertiser_factor(a.advertiser_id), a.advertiser_id
        )
        for a in spec.advertisers
    )
    ranking = top_k_scan(k, scored)
    return allocation_from_topk(ranking, model, k)


def allocation_from_topk(
    ranking: TopKList, model: SeparableCTRModel, num_slots: int
) -> Allocation:
    """Convert a top-k ranking of ``b_i * c_i`` scores into an allocation.

    This is the bridge the shared machinery uses: shared plans and shared
    sorts produce :class:`TopKList` rankings; this function turns one into
    the slot assignment and objective value for a concrete auction.
    """
    slots: List[int | None] = [None] * num_slots
    value = 0.0
    for j, entry in enumerate(ranking.entries[:num_slots]):
        slots[j] = entry.advertiser_id
        value += entry.score * model.slot_factors[j]
    return Allocation(tuple(slots), value)


def prune_candidates(
    advertisers: Sequence[Advertiser], model: CTRModel, num_slots: int
) -> List[Advertiser]:
    """Keep only advertisers among the top-k of some slot (Section V).

    For each slot ``j``, the ``k`` advertisers with the highest
    ``ctr_ij * b_i`` are retained; the union over slots (at most ``k^2``
    advertisers) provably contains an optimal assignment, because an
    optimal matching assigns each slot to somebody, and replacing a
    non-retained advertiser in slot ``j`` with an unused retained one
    never lowers the objective.
    """
    keep: Dict[int, Advertiser] = {}
    by_id = {a.advertiser_id: a for a in advertisers}
    for j in range(num_slots):
        scored = (
            ScoredAdvertiser(model.ctr(a.advertiser_id, j) * a.bid, a.advertiser_id)
            for a in advertisers
        )
        for entry in top_k_scan(num_slots, scored):
            keep[entry.advertiser_id] = by_id[entry.advertiser_id]
    return [keep[i] for i in sorted(keep)]


def determine_winners_nonseparable(
    spec: AuctionSpec, prune: bool = True
) -> Allocation:
    """Non-separable winner determination via pruned max-weight matching.

    Args:
        spec: The auction; its CTR model may be any :class:`CTRModel`.
        prune: When ``True`` (default), apply the top-k-per-slot pruning of
            Section V before matching; when ``False``, match the full
            bipartite graph (used by tests to validate the pruning).
    """
    model = spec.ctr_model
    k = spec.num_slots
    candidates = list(spec.advertisers)
    if prune and len(candidates) > k * k:
        candidates = prune_candidates(candidates, model, k)
    if not candidates:
        return Allocation(tuple([None] * k), 0.0)
    weights = [
        [model.ctr(a.advertiser_id, j) * a.bid for j in range(k)]
        for a in candidates
    ]
    assignment, total = hungarian_max_weight(weights)
    slots: List[int | None] = [None] * k
    for row, j in enumerate(assignment):
        if j is not None:
            slots[j] = candidates[row].advertiser_id
    return Allocation(tuple(slots), total)


def brute_force_winner_determination(spec: AuctionSpec) -> Allocation:
    """Exhaustive winner determination for validation on tiny instances.

    Enumerates all one-to-one slot assignments; exponential, so only use
    with a handful of advertisers and slots.
    """
    from itertools import permutations

    model = spec.ctr_model
    k = spec.num_slots
    ads = list(spec.advertisers)
    n = len(ads)
    best_value = 0.0
    best_slots: Tuple[int | None, ...] = tuple([None] * k)
    # Choose up to min(n, k) advertisers and an injection into slots.
    indices = list(range(n))
    for r in range(0, min(n, k) + 1):
        for perm in permutations(indices, r):
            from itertools import combinations

            for slot_choice in combinations(range(k), r):
                value = 0.0
                slots: List[int | None] = [None] * k
                for ad_index, j in zip(perm, slot_choice):
                    a = ads[ad_index]
                    slots[j] = a.advertiser_id
                    value += model.ctr(a.advertiser_id, j) * a.bid
                if value > best_value:
                    best_value = value
                    best_slots = tuple(slots)
    return Allocation(best_slots, best_value)
