"""Click-through-rate models.

The paper's central modeling assumption (Section II-A) is *separability*:
the probability that advertiser ``i``'s ad is clicked when shown in slot
``j`` factors as ``ctr_ij = c_i * d_j`` where ``c_i`` depends only on the
advertiser and ``d_j`` only on the slot.  :class:`SeparableCTRModel`
implements that; :class:`MatrixCTRModel` holds an arbitrary (possibly
non-separable) matrix, used by the Section V winner-determination path.

The module also provides :func:`is_separable`, which tests whether a
matrix admits a rank-one factorization, and
:func:`separable_factors`, which recovers the ``c_i`` / ``d_j`` factors of
a separable matrix (up to the usual scaling ambiguity, resolved by
normalizing ``d_1 = ctr_11 / c_1`` with ``c_1 = 1``... see the function
docstring for the exact convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, Tuple

from repro.errors import InvalidAuctionError

__all__ = [
    "CTRModel",
    "SeparableCTRModel",
    "MatrixCTRModel",
    "is_separable",
    "separable_factors",
]


class CTRModel(Protocol):
    """Protocol for click-through-rate models.

    A CTR model answers one question: the probability that a given
    advertiser's ad is clicked when displayed in a given slot.
    """

    def ctr(self, advertiser_id: int, slot: int) -> float:
        """Return ``ctr_ij`` for advertiser ``advertiser_id`` in ``slot``.

        Slots are 0-indexed here (the paper uses 1-indexed slots).
        """
        ...

    @property
    def num_slots(self) -> int:
        """Number of advertisement slots ``k`` on the result page."""
        ...


@dataclass(frozen=True)
class SeparableCTRModel:
    """Separable click-through rates: ``ctr_ij = c_i * d_j``.

    Attributes:
        advertiser_factors: Mapping from advertiser id to ``c_i``.
        slot_factors: Sequence of ``d_j`` values, one per slot.  The paper
            assumes slots are ordered so that slot ``j`` has the ``j``-th
            highest ``d_j``; the constructor enforces a non-increasing
            order because winner determination relies on it.
    """

    advertiser_factors: Mapping[int, float]
    slot_factors: Tuple[float, ...]

    def __init__(
        self,
        advertiser_factors: Mapping[int, float],
        slot_factors: Sequence[float],
    ) -> None:
        factors = tuple(float(d) for d in slot_factors)
        if not factors:
            raise InvalidAuctionError("at least one slot factor is required")
        if any(d < 0.0 or d > 1.0 for d in factors):
            raise InvalidAuctionError(f"slot factors must be in [0, 1]: {factors!r}")
        if any(factors[j] < factors[j + 1] for j in range(len(factors) - 1)):
            raise InvalidAuctionError(
                "slot factors must be non-increasing (slot 1 is most clickable); "
                f"got {factors!r}"
            )
        if any(c < 0.0 for c in advertiser_factors.values()):
            raise InvalidAuctionError("advertiser factors must be non-negative")
        object.__setattr__(self, "advertiser_factors", dict(advertiser_factors))
        object.__setattr__(self, "slot_factors", factors)

    @property
    def num_slots(self) -> int:
        """Number of advertisement slots ``k``."""
        return len(self.slot_factors)

    def ctr(self, advertiser_id: int, slot: int) -> float:
        """Return ``c_i * d_j`` (0-indexed slot)."""
        if not 0 <= slot < len(self.slot_factors):
            raise InvalidAuctionError(
                f"slot {slot} out of range for {len(self.slot_factors)} slots"
            )
        try:
            c_i = self.advertiser_factors[advertiser_id]
        except KeyError:
            raise InvalidAuctionError(
                f"no CTR factor known for advertiser {advertiser_id}"
            ) from None
        return c_i * self.slot_factors[slot]

    def advertiser_factor(self, advertiser_id: int) -> float:
        """Return ``c_i`` for an advertiser."""
        try:
            return self.advertiser_factors[advertiser_id]
        except KeyError:
            raise InvalidAuctionError(
                f"no CTR factor known for advertiser {advertiser_id}"
            ) from None

    def as_matrix(self, advertiser_ids: Sequence[int]) -> "MatrixCTRModel":
        """Materialize the separable model as an explicit matrix model.

        Useful for cross-checking the separable winner-determination path
        against the general non-separable path in tests.
        """
        rows = {
            i: tuple(self.advertiser_factors[i] * d for d in self.slot_factors)
            for i in advertiser_ids
        }
        return MatrixCTRModel(rows)


@dataclass(frozen=True)
class MatrixCTRModel:
    """Explicit per-(advertiser, slot) click-through rates.

    Attributes:
        rows: Mapping from advertiser id to the tuple
            ``(ctr_i1, ..., ctr_ik)``.  All rows must have the same length.
    """

    rows: Mapping[int, Tuple[float, ...]]

    def __init__(self, rows: Mapping[int, Sequence[float]]) -> None:
        if not rows:
            raise InvalidAuctionError("matrix CTR model needs at least one row")
        converted = {i: tuple(float(x) for x in row) for i, row in rows.items()}
        lengths = {len(row) for row in converted.values()}
        if len(lengths) != 1:
            raise InvalidAuctionError(
                f"all CTR rows must have the same number of slots, got {lengths!r}"
            )
        for i, row in converted.items():
            if any(x < 0.0 or x > 1.0 for x in row):
                raise InvalidAuctionError(
                    f"CTRs must be probabilities in [0, 1]; row {i} is {row!r}"
                )
        object.__setattr__(self, "rows", converted)

    @property
    def num_slots(self) -> int:
        """Number of advertisement slots ``k``."""
        return len(next(iter(self.rows.values())))

    def ctr(self, advertiser_id: int, slot: int) -> float:
        """Return ``ctr_ij`` (0-indexed slot)."""
        try:
            row = self.rows[advertiser_id]
        except KeyError:
            raise InvalidAuctionError(
                f"no CTR row known for advertiser {advertiser_id}"
            ) from None
        if not 0 <= slot < len(row):
            raise InvalidAuctionError(
                f"slot {slot} out of range for {len(row)} slots"
            )
        return row[slot]


def is_separable(model: MatrixCTRModel, tolerance: float = 1e-9) -> bool:
    """Return whether a CTR matrix is separable (rank one).

    A matrix ``ctr_ij`` is separable iff every 2x2 minor vanishes:
    ``ctr_ij * ctr_i'j' == ctr_ij' * ctr_i'j`` for all advertiser pairs
    ``i, i'`` and slot pairs ``j, j'``.  Comparing every pair against a
    fixed reference row/column suffices.

    Args:
        model: The matrix to test.
        tolerance: Absolute tolerance for the minor test, scaled by the
            magnitude of the entries involved.
    """
    ids = sorted(model.rows)
    k = model.num_slots
    ref = ids[0]
    for i in ids[1:]:
        for j in range(k):
            for j2 in range(j + 1, k):
                lhs = model.ctr(ref, j) * model.ctr(i, j2)
                rhs = model.ctr(ref, j2) * model.ctr(i, j)
                scale = max(1.0, abs(lhs), abs(rhs))
                if abs(lhs - rhs) > tolerance * scale:
                    return False
    return True


def separable_factors(
    model: MatrixCTRModel, tolerance: float = 1e-9
) -> SeparableCTRModel:
    """Recover separable factors ``c_i``, ``d_j`` from a rank-one matrix.

    The factorization is unique only up to scaling ``(c_i / t, d_j * t)``.
    We fix the convention that ``max_j d_j`` equals the largest entry of
    the row with the largest leading entry, i.e. we scale so that
    ``c = row_max / d_max`` keeps all ``d_j <= 1``.  Concretely we set
    ``d_j`` to the first nonzero row normalized so its maximum is the
    matrix's maximum first-column share -- see the implementation; tests
    only rely on ``c_i * d_j`` reproducing the matrix.

    Raises:
        InvalidAuctionError: If the matrix is not separable within
            ``tolerance``, or is identically zero.
    """
    if not is_separable(model, tolerance=tolerance):
        raise InvalidAuctionError("CTR matrix is not separable")
    ids = sorted(model.rows)
    k = model.num_slots
    # Find a reference row with a nonzero entry to define the slot profile.
    ref_row = None
    for i in ids:
        if any(model.ctr(i, j) > tolerance for j in range(k)):
            ref_row = i
            break
    if ref_row is None:
        raise InvalidAuctionError("cannot factor an all-zero CTR matrix")
    ref = [model.ctr(ref_row, j) for j in range(k)]
    ref_max = max(ref)
    # Normalize slot factors so the largest is <= 1 and equals ref_max /
    # ref_max = 1 scaled back by the advertiser factor of the reference row.
    d = tuple(x / ref_max for x in ref)
    c: dict[int, float] = {}
    # c_i = ctr_ij / d_j evaluated at the slot where d_j is largest.
    j_star = ref.index(ref_max)
    for i in ids:
        c[i] = model.ctr(i, j_star) / d[j_star]
    # Slot factors must be non-increasing for SeparableCTRModel; if not,
    # the matrix is a valid rank-one CTR but with shuffled slot quality.
    order = sorted(range(k), key=lambda j: -d[j])
    if order != list(range(k)):
        raise InvalidAuctionError(
            "separable factors recovered, but slot factors are not "
            "non-increasing; reorder slots by clickability first"
        )
    return SeparableCTRModel(c, d)
