"""Advertisers and bid phrases.

An :class:`Advertiser` owns a current bid (the maximum it will pay for a
click), a daily budget, an advertiser-specific click-through-rate factor,
and a set of bid phrases it is interested in.  A :class:`BidPhrase` is the
normalized keyword string an auction is keyed on, together with its
*search rate* -- the probability that the phrase occurs in a given round
(Section II-B of the paper).

Both types are intentionally plain: the sharing machinery in
:mod:`repro.plans` and :mod:`repro.sharedsort` treats advertisers as opaque
variables carrying a score, and only the auction engine reads budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, Mapping

from repro.errors import InvalidAuctionError

__all__ = ["Advertiser", "BidPhrase"]


@dataclass(frozen=True, order=True)
class BidPhrase:
    """A bid phrase that search queries are matched against.

    Attributes:
        text: The normalized phrase, e.g. ``"hiking boots"``.  Phrases are
            compared and hashed by this text.
        search_rate: Probability that this phrase occurs in a round
            (``sr_q`` in the paper).  Must lie in ``[0, 1]``.
    """

    text: str
    search_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.text:
            raise InvalidAuctionError("bid phrase text must be non-empty")
        if not 0.0 <= self.search_rate <= 1.0:
            raise InvalidAuctionError(
                f"search rate must be in [0, 1], got {self.search_rate!r}"
            )

    def with_search_rate(self, search_rate: float) -> "BidPhrase":
        """Return a copy of this phrase with a different search rate."""
        return replace(self, search_rate=search_rate)


@dataclass(frozen=True)
class Advertiser:
    """An advertiser participating in sponsored-search auctions.

    Attributes:
        advertiser_id: Unique identifier; ties in scores are broken by it
            so that winner determination is deterministic.
        bid: Current bid ``b_i`` -- the maximum payment for one click.
        ctr_factor: Advertiser-specific click-through-rate factor ``c_i``
            under the separability assumption (Section II-A).
        daily_budget: Maximum total spend per day; ``float('inf')`` means
            unbudgeted.
        phrases: The set of bid-phrase texts this advertiser bids on.
        phrase_ctr_factors: Optional per-phrase override of ``ctr_factor``
            (``c_i^q`` in Section III).  Phrases absent from this mapping
            fall back to ``ctr_factor``.
    """

    advertiser_id: int
    bid: float
    ctr_factor: float = 1.0
    daily_budget: float = float("inf")
    phrases: FrozenSet[str] = field(default_factory=frozenset)
    phrase_ctr_factors: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.advertiser_id < 0:
            raise InvalidAuctionError("advertiser_id must be non-negative")
        if self.bid < 0.0:
            raise InvalidAuctionError(f"bid must be non-negative, got {self.bid!r}")
        if self.ctr_factor < 0.0:
            raise InvalidAuctionError(
                f"ctr_factor must be non-negative, got {self.ctr_factor!r}"
            )
        if self.daily_budget < 0.0:
            raise InvalidAuctionError("daily_budget must be non-negative")
        bad = [c for c in self.phrase_ctr_factors.values() if c < 0.0]
        if bad:
            raise InvalidAuctionError(
                f"phrase ctr factors must be non-negative, got {bad!r}"
            )

    def __hash__(self) -> int:
        return hash(self.advertiser_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Advertiser):
            return NotImplemented
        return self.advertiser_id == other.advertiser_id

    def ctr_factor_for(self, phrase: str) -> float:
        """Return ``c_i^q`` -- the CTR factor for a specific phrase.

        Falls back to the phrase-independent :attr:`ctr_factor` when no
        per-phrase override is present, matching Section II's assumption
        that the advertiser factor is shared across phrases.
        """
        return self.phrase_ctr_factors.get(phrase, self.ctr_factor)

    def score(self, phrase: str | None = None) -> float:
        """Return the ranking score ``b_i * c_i`` (or ``b_i * c_i^q``).

        Winner determination under separability ranks advertisers by this
        product (Section II-A).
        """
        factor = self.ctr_factor if phrase is None else self.ctr_factor_for(phrase)
        return self.bid * factor

    def interested_in(self, phrase: str) -> bool:
        """Return whether this advertiser bids on ``phrase``."""
        return phrase in self.phrases

    def with_bid(self, bid: float) -> "Advertiser":
        """Return a copy of this advertiser with a new bid.

        Bids change rapidly between rounds (Section II-C); plans are built
        over advertiser *identities*, so re-binding a bid must not disturb
        identity-based hashing.
        """
        return replace(self, bid=bid)

    def with_phrases(self, phrases: Iterable[str]) -> "Advertiser":
        """Return a copy of this advertiser interested in ``phrases``."""
        return replace(self, phrases=frozenset(phrases))
