"""The worked examples from the paper's text.

- :func:`paper_example_auction` -- the Figures 1-3 example: three
  advertisers A, B, C with separable CTRs (``c = 1.2, 1.1, 1.3``;
  ``d = 0.3, 0.2``).  Figure 3's bid values are not legible in the
  source; the bids here (A: 1.00, B: 1.00, C: 0.80) are chosen to yield
  the outcome the text states -- slot 1 to A, slot 2 to B -- and the
  derived ``ctr_ij`` match Figure 1 exactly.
- :func:`shoe_store_instance` -- the Section II-B sharing example: 200
  general shoe stores bidding on both "hiking boots" and "high-heels",
  40 sports stores on "hiking boots" only, 30 fashion stores on
  "high-heels" only.  Resolving the phrases separately scans 240 + 230 =
  470 advertisers; sharing the general-store aggregate scans 270 -- about
  40% fewer.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.advertiser import Advertiser
from repro.core.auction import AuctionSpec
from repro.core.ctr import SeparableCTRModel
from repro.plans.instance import AggregateQuery, SharedAggregationInstance

__all__ = ["paper_example_auction", "shoe_store_instance", "SHOE_COUNTS"]

SHOE_COUNTS = {"general": 200, "sports": 40, "fashion": 30}
"""Store counts in the Section II-B example."""


def paper_example_auction() -> AuctionSpec:
    """The Figures 1-3 auction (slot 1 -> A, slot 2 -> B).

    Advertiser ids: A=0, B=1, C=2.
    """
    model = SeparableCTRModel({0: 1.2, 1: 1.1, 2: 1.3}, [0.3, 0.2])
    advertisers = (
        Advertiser(0, bid=1.00, ctr_factor=1.2),
        Advertiser(1, bid=1.00, ctr_factor=1.1),
        Advertiser(2, bid=0.80, ctr_factor=1.3),
    )
    return AuctionSpec("example", advertisers, model)


def shoe_store_instance(
    general: int = SHOE_COUNTS["general"],
    sports: int = SHOE_COUNTS["sports"],
    fashion: int = SHOE_COUNTS["fashion"],
    hiking_rate: float = 1.0,
    heels_rate: float = 1.0,
) -> Tuple[SharedAggregationInstance, dict]:
    """The hiking-boots / high-heels sharing instance.

    Returns:
        ``(instance, groups)`` where ``groups`` maps the store kinds to
        their advertiser-id lists (general stores first, ids are dense).
    """
    general_ids = list(range(general))
    sports_ids = list(range(general, general + sports))
    fashion_ids = list(range(general + sports, general + sports + fashion))
    instance = SharedAggregationInstance(
        [
            AggregateQuery(
                "hiking boots", general_ids + sports_ids, hiking_rate
            ),
            AggregateQuery("high-heels", general_ids + fashion_ids, heels_rate),
        ]
    )
    groups = {
        "general": general_ids,
        "sports": sports_ids,
        "fashion": fashion_ids,
    }
    return instance, groups
