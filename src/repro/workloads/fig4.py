"""The Fig. 4 experiment protocol.

The paper's only quantitative experiment: "Figure 4 shows an example of
the savings provided in a set of 10 top-k queries over 20 advertisers.
The queries were chosen by flipping coins to determine whether each
advertiser would be in the list of top-k contenders, discarding
duplicate queries."  The x-axis is the (common) query probability, the
y-axis the expected cost of the plan.

:func:`fig4_instance` builds one such instance; the benchmark sweeps the
query probability and compares the greedy shared plan's expected cost
against the no-sharing baseline, averaged over seeds.
"""

from __future__ import annotations

import random
from typing import List

from repro.plans.instance import AggregateQuery, SharedAggregationInstance

__all__ = ["fig4_instance"]


def fig4_instance(
    query_probability: float,
    num_queries: int = 10,
    num_advertisers: int = 20,
    membership_probability: float = 0.5,
    seed: int = 0,
) -> SharedAggregationInstance:
    """One Fig. 4 instance.

    Args:
        query_probability: The common search rate given to every query
            (the figure's x-axis).
        num_queries: Distinct queries to draw (10 in the paper).
        num_advertisers: Variable universe size (20 in the paper).
        membership_probability: Coin-flip probability that an advertiser
            is in a query (a fair coin in the paper).
        seed: Drawing seed.

    Returns:
        The instance; duplicate draws are discarded and redrawn, and
        queries with fewer than two advertisers are redrawn too (the
        planning problem drops single-variable queries, so keeping them
        would silently shrink the instance).

    Determinism contract: the draw is fully determined by the arguments
    (all randomness comes from ``random.Random(seed)``; membership sets
    are ``frozenset`` but only ever compared/stored, never iterated), so
    the same ``(query_probability, ..., seed)`` tuple reproduces the
    identical instance on any platform and ``PYTHONHASHSEED``.
    """
    rng = random.Random(seed)
    seen: set[frozenset[int]] = set()
    queries: List[AggregateQuery] = []
    attempts = 0
    while len(queries) < num_queries:
        attempts += 1
        if attempts > 10_000:
            raise RuntimeError(
                "could not draw enough distinct queries; loosen parameters"
            )
        members = frozenset(
            advertiser
            for advertiser in range(num_advertisers)
            if rng.random() < membership_probability
        )
        if len(members) < 2 or members in seen:
            continue
        seen.add(members)
        queries.append(
            AggregateQuery(f"q{len(queries)}", members, query_probability)
        )
    return SharedAggregationInstance(queries)
