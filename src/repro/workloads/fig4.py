"""The Fig. 4 experiment protocol.

The paper's only quantitative experiment: "Figure 4 shows an example of
the savings provided in a set of 10 top-k queries over 20 advertisers.
The queries were chosen by flipping coins to determine whether each
advertiser would be in the list of top-k contenders, discarding
duplicate queries."  The x-axis is the (common) query probability, the
y-axis the expected cost of the plan.

:func:`fig4_instance` builds one such instance; the benchmark sweeps the
query probability and compares the greedy shared plan's expected cost
against the no-sharing baseline, averaged over seeds.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.advertiser import Advertiser
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.workloads.distributions import lognormal_cents

__all__ = ["fig4_instance", "fig4_market"]


def fig4_instance(
    query_probability: float,
    num_queries: int = 10,
    num_advertisers: int = 20,
    membership_probability: float = 0.5,
    seed: int = 0,
) -> SharedAggregationInstance:
    """One Fig. 4 instance.

    Args:
        query_probability: The common search rate given to every query
            (the figure's x-axis).
        num_queries: Distinct queries to draw (10 in the paper).
        num_advertisers: Variable universe size (20 in the paper).
        membership_probability: Coin-flip probability that an advertiser
            is in a query (a fair coin in the paper).
        seed: Drawing seed.

    Returns:
        The instance; duplicate draws are discarded and redrawn, and
        queries with fewer than two advertisers are redrawn too (the
        planning problem drops single-variable queries, so keeping them
        would silently shrink the instance).

    Determinism contract: the draw is fully determined by the arguments
    (all randomness comes from ``random.Random(seed)``; membership sets
    are ``frozenset`` but only ever compared/stored, never iterated), so
    the same ``(query_probability, ..., seed)`` tuple reproduces the
    identical instance on any platform and ``PYTHONHASHSEED``.
    """
    rng = random.Random(seed)
    seen: set[frozenset[int]] = set()
    queries: List[AggregateQuery] = []
    attempts = 0
    while len(queries) < num_queries:
        attempts += 1
        if attempts > 10_000:
            raise RuntimeError(
                "could not draw enough distinct queries; loosen parameters"
            )
        members = frozenset(
            advertiser
            for advertiser in range(num_advertisers)
            if rng.random() < membership_probability
        )
        if len(members) < 2 or members in seen:
            continue
        seen.add(members)
        queries.append(
            AggregateQuery(f"q{len(queries)}", members, query_probability)
        )
    return SharedAggregationInstance(queries)


def fig4_market(
    query_probability: float = 0.5,
    num_queries: int = 10,
    num_advertisers: int = 20,
    membership_probability: float = 0.5,
    median_bid_cents: int = 120,
    median_budget_cents: int = 1500,
    num_components: int = 1,
    seed: int = 0,
) -> Tuple[List[Advertiser], Dict[str, float]]:
    """An engine-ready market over a Fig. 4 sharing structure.

    :func:`fig4_instance` gives the paper's *sharing topology* (which
    advertisers each query aggregates); this helper fleshes it out into
    live :class:`~repro.core.advertiser.Advertiser` objects so the same
    topology can be auctioned end to end -- in particular by the serving
    benchmark, which replays Zipf-weighted Fig. 4 queries against the
    cross-round caches.

    Bids are log-normal around ``median_bid_cents`` and budgets around
    ``median_budget_cents`` (``median_budget_cents <= 0`` means
    unlimited), drawn from a dedicated string-seeded RNG so the market
    fleshing never perturbs the topology draw.  Advertisers the coin
    flips left out of every query are dropped: the engine has no phrase
    to auction them under.

    Args:
        num_components: Number of disjoint Fig. 4 sub-markets to tile.
            ``1`` (the default) reproduces the original single draw
            byte-for-byte.  ``c > 1`` draws ``c`` independent topologies
            (seeds ``seed*1000 + component``), each with its own
            advertiser-id range (offset by ``num_advertisers``) and
            phrase namespace (``c0q0``, ``c1q0``, ...).  Coin-flip
            membership keeps each sub-market internally connected with
            overwhelming probability, so the tiled market has ``c``
            phrase-advertiser connected components -- the scaled shape
            the sharded engine partitions across workers.  Per-component
            query/advertiser counts are the other knobs unchanged, so
            ``num_queries=60, num_advertisers=250, num_components=8``
            yields a 2000-advertiser, 480-phrase market.

    Returns:
        ``(advertisers, search_rates)`` where ``search_rates`` maps each
        query phrase (``q0``.., or ``c0q0``.. when tiling) to its common
        ``query_probability`` -- the shape
        :meth:`TrafficGenerator.from_search_rates` and
        :class:`~repro.engine.pipeline.SharedAuctionEngine` both accept.
    """
    if num_components < 1:
        raise ValueError(
            f"num_components must be >= 1, got {num_components}"
        )
    if num_components > 1:
        advertisers: List[Advertiser] = []
        search_rates: Dict[str, float] = {}
        for component in range(num_components):
            sub_advertisers, sub_rates = fig4_market(
                query_probability,
                num_queries=num_queries,
                num_advertisers=num_advertisers,
                membership_probability=membership_probability,
                median_bid_cents=median_bid_cents,
                median_budget_cents=median_budget_cents,
                num_components=1,
                seed=seed * 1000 + component,
            )
            offset = component * num_advertisers
            for advertiser in sub_advertisers:
                advertisers.append(
                    Advertiser(
                        advertiser.advertiser_id + offset,
                        bid=advertiser.bid,
                        ctr_factor=advertiser.ctr_factor,
                        daily_budget=advertiser.daily_budget,
                        phrases=frozenset(
                            f"c{component}{phrase}"
                            for phrase in advertiser.phrases
                        ),
                    )
                )
            for phrase, rate in sub_rates.items():
                search_rates[f"c{component}{phrase}"] = rate
        return advertisers, search_rates
    instance = fig4_instance(
        query_probability,
        num_queries=num_queries,
        num_advertisers=num_advertisers,
        membership_probability=membership_probability,
        seed=seed,
    )
    rng = random.Random(f"fig4-market-{seed}")
    phrases_by_advertiser: Dict[int, set] = {}
    search_rates = {}
    for query in instance.queries:
        search_rates[query.name] = query.search_rate
        for advertiser_id in sorted(query.variables):
            phrases_by_advertiser.setdefault(advertiser_id, set()).add(
                query.name
            )
    advertisers: List[Advertiser] = []
    for advertiser_id in sorted(phrases_by_advertiser):
        bid = lognormal_cents(rng, median_bid_cents) / 100.0
        budget = (
            float("inf")
            if median_budget_cents <= 0
            else lognormal_cents(rng, median_budget_cents) / 100.0
        )
        advertisers.append(
            Advertiser(
                advertiser_id,
                bid=bid,
                ctr_factor=round(rng.uniform(0.5, 1.5), 3),
                daily_budget=budget,
                phrases=frozenset(phrases_by_advertiser[advertiser_id]),
            )
        )
    return advertisers, search_rates
