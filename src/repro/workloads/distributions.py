"""Seeded distribution helpers for workload generation.

Search-phrase popularity follows a heavy-tailed (Zipf-like) law; bids and
budgets are positively skewed.  Everything takes an explicit random
source so workloads are reproducible.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import List, Sequence

from repro.errors import WorkloadError

__all__ = [
    "zipf_weights",
    "zipf_search_rates",
    "lognormal_cents",
    "sample_subset",
    "cumulative_weights",
    "sample_rank",
    "exponential_interarrival",
]


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalized Zipf weights ``w_r ∝ 1 / r^exponent`` for ranks 1..n."""
    if n <= 0:
        raise WorkloadError(f"need a positive count, got {n}")
    if exponent < 0.0:
        raise WorkloadError(f"Zipf exponent must be >= 0, got {exponent}")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_search_rates(
    n: int, exponent: float = 1.0, top_rate: float = 0.9
) -> List[float]:
    """Per-phrase search rates decaying Zipf-style from ``top_rate``.

    Unlike :func:`zipf_weights` these are independent Bernoulli
    probabilities, not a distribution: the most popular phrase occurs in
    a round with probability ``top_rate`` and rank ``r`` with probability
    ``top_rate / r^exponent``.
    """
    if not 0.0 < top_rate <= 1.0:
        raise WorkloadError(f"top rate must be in (0, 1], got {top_rate}")
    weights = zipf_weights(n, exponent)
    scale = top_rate / weights[0]
    return [min(1.0, w * scale) for w in weights]


def lognormal_cents(
    rng: random.Random, median_cents: int, sigma: float = 0.6
) -> int:
    """A log-normally distributed amount of money, at least one cent."""
    if median_cents <= 0:
        raise WorkloadError(f"median must be positive, got {median_cents}")
    if sigma < 0.0:
        raise WorkloadError(f"sigma must be >= 0, got {sigma}")
    value = median_cents * math.exp(rng.gauss(0.0, sigma))
    return max(1, int(round(value)))


def sample_subset(
    rng: random.Random, items: Sequence, probability: float
) -> List:
    """Independent Bernoulli subsample of ``items``."""
    if not 0.0 <= probability <= 1.0:
        raise WorkloadError(f"probability must be in [0, 1], got {probability}")
    return [item for item in items if rng.random() < probability]


def cumulative_weights(weights: Sequence[float]) -> List[float]:
    """Running totals of non-negative ``weights`` for categorical draws.

    The returned list is strictly increasing up to the total; pair with
    :func:`sample_rank` for an O(log n) seeded categorical sample.
    """
    if not weights:
        raise WorkloadError("need at least one weight")
    total = 0.0
    cumulative: List[float] = []
    for weight in weights:
        if weight < 0.0:
            raise WorkloadError(f"weights must be >= 0, got {weight}")
        total += weight
        cumulative.append(total)
    if total <= 0.0:
        raise WorkloadError("weights must sum to a positive total")
    return cumulative


def sample_rank(rng: random.Random, cumulative: Sequence[float]) -> int:
    """One categorical draw over :func:`cumulative_weights` output.

    Returns the 0-based rank; draws are uniform in ``[0, total)`` so a
    zero-weight rank is never selected.
    """
    return min(
        bisect_right(cumulative, rng.random() * cumulative[-1]),
        len(cumulative) - 1,
    )


def exponential_interarrival(rng: random.Random, rate: float) -> float:
    """One Poisson-process inter-arrival gap (seconds) at ``rate`` per second.

    Inverse-CDF sampling (``-ln(1-u)/rate``) rather than
    ``rng.expovariate`` so the draw consumes exactly one ``random()``
    call -- keeping traffic traces draw-for-draw reproducible even if
    the stdlib's internal sampling changes across versions.
    """
    if rate <= 0.0:
        raise WorkloadError(f"arrival rate must be positive, got {rate}")
    return -math.log(1.0 - rng.random()) / rate
