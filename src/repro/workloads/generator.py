"""Category-structured synthetic advertiser markets.

The generator produces the overlap structure that makes sharing
worthwhile: phrases belong to *categories* (e.g. footwear, music), most
advertisers are specialists bidding inside one category, and a tunable
fraction are generalists bidding across several -- the generalization of
the paper's shoe-store example (general stores bid on both "hiking
boots" and "high-heels"; sports and fashion stores bid on one each).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.advertiser import Advertiser
from repro.errors import WorkloadError
from repro.workloads.distributions import (
    lognormal_cents,
    zipf_search_rates,
)

__all__ = ["MarketConfig", "Market", "generate_market"]


@dataclass(frozen=True)
class MarketConfig:
    """Parameters of a synthetic market.

    Attributes:
        num_categories: Number of phrase categories.
        phrases_per_category: Phrases in each category.
        specialists_per_category: Advertisers bidding only inside one
            category.
        generalists: Advertisers bidding across several categories.
        generalist_categories: Categories each generalist spans.
        phrase_interest: Probability a store bids on a given phrase of a
            category it covers.
        median_bid_cents: Median per-click bid.
        median_budget_cents: Median daily budget (0 means unbudgeted).
        zipf_exponent: Popularity skew of phrase search rates.
        top_search_rate: Search rate of the most popular phrase.
        seed: Generator seed.
    """

    num_categories: int = 4
    phrases_per_category: int = 5
    specialists_per_category: int = 20
    generalists: int = 10
    generalist_categories: int = 2
    phrase_interest: float = 0.8
    median_bid_cents: int = 100
    median_budget_cents: int = 0
    zipf_exponent: float = 1.0
    top_search_rate: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_categories <= 0 or self.phrases_per_category <= 0:
            raise WorkloadError("need at least one category and phrase")
        if self.specialists_per_category < 0 or self.generalists < 0:
            raise WorkloadError("advertiser counts must be non-negative")
        if not 1 <= self.generalist_categories <= self.num_categories:
            raise WorkloadError(
                "generalists must span between 1 and num_categories categories"
            )
        if not 0.0 < self.phrase_interest <= 1.0:
            raise WorkloadError("phrase_interest must be in (0, 1]")


@dataclass(frozen=True)
class Market:
    """A generated market.

    Attributes:
        advertisers: The advertiser population.
        search_rates: ``{phrase: sr_q}``.
        phrase_advertisers: ``{phrase: sorted advertiser ids}``.
    """

    advertisers: Tuple[Advertiser, ...]
    search_rates: Dict[str, float]
    phrase_advertisers: Dict[str, Tuple[int, ...]]


def generate_market(config: MarketConfig) -> Market:
    """Generate a reproducible market from a config.

    Determinism contract: all randomness flows from
    ``random.Random(config.seed)``; the same config yields a
    bit-identical market -- same advertisers, bids, budgets, interests,
    and search rates -- independent of process, platform, and
    ``PYTHONHASHSEED`` (phrase iteration is over ordered lists, and
    ``phrase_advertisers`` is keyed and sorted deterministically).  There
    is no other stochastic entry point in this module; callers wanting
    distinct markets vary ``config.seed`` explicitly.
    """
    rng = random.Random(config.seed)
    phrases: List[str] = []
    category_phrases: List[List[str]] = []
    for category in range(config.num_categories):
        names = [
            f"c{category}p{index}"
            for index in range(config.phrases_per_category)
        ]
        category_phrases.append(names)
        phrases.extend(names)
    rates = dict(
        zip(
            phrases,
            zipf_search_rates(
                len(phrases), config.zipf_exponent, config.top_search_rate
            ),
        )
    )

    advertisers: List[Advertiser] = []
    next_id = 0

    def make_advertiser(categories: List[int]) -> Advertiser:
        nonlocal next_id
        interests: List[str] = []
        for category in categories:
            for phrase in category_phrases[category]:
                if rng.random() < config.phrase_interest:
                    interests.append(phrase)
        if not interests:
            # Guarantee participation in at least one phrase.
            category = rng.choice(categories)
            interests.append(rng.choice(category_phrases[category]))
        bid = lognormal_cents(rng, config.median_bid_cents) / 100.0
        budget = (
            float("inf")
            if config.median_budget_cents <= 0
            else lognormal_cents(rng, config.median_budget_cents) / 100.0
        )
        advertiser = Advertiser(
            next_id,
            bid=bid,
            ctr_factor=round(rng.uniform(0.5, 1.5), 3),
            daily_budget=budget,
            phrases=frozenset(interests),
        )
        next_id += 1
        return advertiser

    for category in range(config.num_categories):
        for _ in range(config.specialists_per_category):
            advertisers.append(make_advertiser([category]))
    for _ in range(config.generalists):
        spanned = rng.sample(
            range(config.num_categories), config.generalist_categories
        )
        advertisers.append(make_advertiser(spanned))

    phrase_map: Dict[str, List[int]] = {phrase: [] for phrase in phrases}
    for advertiser in advertisers:
        for phrase in advertiser.phrases:
            phrase_map[phrase].append(advertiser.advertiser_id)
    phrase_advertisers = {
        phrase: tuple(sorted(ids))
        for phrase, ids in phrase_map.items()
        if ids
    }
    search_rates = {
        phrase: rates[phrase] for phrase in phrase_advertisers
    }
    return Market(tuple(advertisers), search_rates, phrase_advertisers)
