"""Synthetic workload generators.

The paper's data (production query logs and advertiser bids) is
proprietary; these generators are the documented substitution (see
DESIGN.md): they produce advertiser populations, phrase popularity, and
query-to-phrase interest structure with controllable overlap, which is
all the sharing machinery observes.

- :mod:`repro.workloads.distributions` -- seeded Zipf and log-normal
  helpers.
- :mod:`repro.workloads.generator` -- category-structured markets.
- :mod:`repro.workloads.fig4` -- the exact protocol of the paper's
  Fig. 4 (coin-flip query membership over 20 advertisers).
- :mod:`repro.workloads.scenarios` -- the worked examples from the text
  (Figures 1-3 and the shoe-store example of Section II-B).
"""

from repro.workloads.distributions import (
    cumulative_weights,
    exponential_interarrival,
    lognormal_cents,
    sample_rank,
    zipf_weights,
)
from repro.workloads.fig4 import fig4_instance, fig4_market
from repro.workloads.generator import MarketConfig, generate_market
from repro.workloads.scenarios import (
    paper_example_auction,
    shoe_store_instance,
)

__all__ = [
    "MarketConfig",
    "cumulative_weights",
    "exponential_interarrival",
    "fig4_instance",
    "fig4_market",
    "generate_market",
    "lognormal_cents",
    "paper_example_auction",
    "sample_rank",
    "shoe_store_instance",
    "zipf_weights",
]
