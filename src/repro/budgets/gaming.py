"""The Section IV gaming attack and its mitigation.

If the system ignores budget uncertainty -- letting an advertiser bid his
full remaining budget in every auction and simply forgiving clicks that
arrive after the budget is exhausted -- then an advertiser interested in
a popular keyword can win ``m`` simultaneous auctions while only able to
pay for ``m' < m`` clicks.  The extra clicks are free, and the slots they
occupied could have gone to competitors able to pay: lost revenue for the
search provider.

:func:`simulate_gaming` runs a controlled head-to-head: the same stream
of rounds is resolved under a *naive* policy (ignore outstanding ads)
and under the paper's *throttled* policy (rank by ``b̂``), with clicks
arriving with a configurable delay.  The attacker is a nearly exhausted
advertiser on a high-volume phrase; honest competitors have ample
budgets.  The report quantifies forgiven click value and provider
revenue under each policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.core.advertiser import Advertiser
from repro.errors import BudgetError

__all__ = [
    "AtScaleGamingMarket",
    "GamingAdvertiser",
    "GamingReport",
    "forgiven_fraction",
    "gaming_market_at_scale",
    "simulate_gaming",
]


@dataclass
class GamingAdvertiser:
    """One advertiser in the gaming simulation.

    Attributes:
        advertiser_id: Identifier.
        bid_cents: Per-click bid.
        budget_cents: Daily budget.
        ctr: Probability a shown ad is eventually clicked.
    """

    advertiser_id: int
    bid_cents: int
    budget_cents: int
    ctr: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.ctr <= 1.0:
            raise BudgetError(f"CTR must be in [0, 1], got {self.ctr}")


@dataclass
class GamingReport:
    """Outcome of one policy run.

    Attributes:
        policy: ``"naive"`` or ``"throttled"``.
        revenue_cents: Total paid to the provider.
        forgiven_cents: Value of clicks delivered but not charged because
            the clicker's budget was exhausted.
        wins: Auctions won, per advertiser.
        paid_clicks: Clicks fully charged, per advertiser.
        free_clicks: Clicks wholly or partly forgiven, per advertiser.
    """

    policy: str
    revenue_cents: int = 0
    forgiven_cents: int = 0
    wins: Dict[int, int] = field(default_factory=dict)
    paid_clicks: Dict[int, int] = field(default_factory=dict)
    free_clicks: Dict[int, int] = field(default_factory=dict)


@dataclass
class _Shown:
    """One displayed ad: a potential future click and a potential debt."""

    advertiser_id: int
    price_cents: int
    shown_round: int
    will_click: bool


def simulate_gaming(
    advertisers: Sequence[GamingAdvertiser],
    rounds: int,
    auctions_per_round: int,
    click_delay_rounds: int,
    policy: str,
    seed: int,
) -> GamingReport:
    """Run one policy over a stream of single-slot auctions.

    Every auction sells one slot (first-price -- the pricing rule is
    orthogonal to the attack); all advertisers participate in every
    auction of the round.  A shown ad is clicked with the advertiser's
    CTR, and the click arrives exactly ``click_delay_rounds`` later; only
    then is payment attempted, and any shortfall beyond the remaining
    budget is forgiven.  Ads older than the delay that were not clicked
    stop being outstanding.

    Args:
        advertisers: The population (attacker plus honest competitors).
        rounds: Number of rounds to simulate.
        auctions_per_round: ``m`` -- simultaneous auctions per round.
        click_delay_rounds: Delay between display and click arrival.
        policy: ``"naive"`` ranks by raw bid while any *settled* budget
            remains; ``"throttled"`` ranks by the throttled bid ``b̂``
            accounting for outstanding ads.
        seed: RNG seed; use the same seed across policies to compare on
            identical click fortunes.
    """
    if policy not in ("naive", "throttled"):
        raise BudgetError(f"unknown policy {policy!r}")
    if click_delay_rounds < 0:
        raise BudgetError("click delay must be non-negative")
    rng = random.Random(seed)
    report = GamingReport(policy=policy)
    remaining: Dict[int, int] = {
        a.advertiser_id: a.budget_cents for a in advertisers
    }
    shown: List[_Shown] = []
    by_id = {a.advertiser_id: a for a in advertisers}
    for a in advertisers:
        report.wins[a.advertiser_id] = 0
        report.paid_clicks[a.advertiser_id] = 0
        report.free_clicks[a.advertiser_id] = 0

    def settle(ad: _Shown) -> None:
        """Deliver the click for a shown ad (if any) and charge it."""
        if not ad.will_click:
            return
        charge = min(ad.price_cents, remaining[ad.advertiser_id])
        remaining[ad.advertiser_id] -= charge
        report.revenue_cents += charge
        shortfall = ad.price_cents - charge
        if shortfall > 0:
            report.forgiven_cents += shortfall
            report.free_clicks[ad.advertiser_id] += 1
        else:
            report.paid_clicks[ad.advertiser_id] += 1

    for round_index in range(rounds):
        # Resolve ads whose click window has closed.
        matured = [
            ad
            for ad in shown
            if round_index - ad.shown_round >= click_delay_rounds
        ]
        shown = [
            ad
            for ad in shown
            if round_index - ad.shown_round < click_delay_rounds
        ]
        for ad in matured:
            settle(ad)

        # Rank advertisers for this round under the chosen policy.
        effective: Dict[int, float] = {}
        for a in advertisers:
            capped_bid = min(a.bid_cents, remaining[a.advertiser_id])
            if capped_bid <= 0:
                effective[a.advertiser_id] = 0.0
                continue
            if policy == "naive":
                effective[a.advertiser_id] = float(capped_bid)
            else:
                outstanding = [
                    (ad.price_cents, by_id[ad.advertiser_id].ctr)
                    for ad in shown
                    if ad.advertiser_id == a.advertiser_id
                ]
                problem = ThrottleProblem(
                    bid_cents=capped_bid,
                    budget_cents=remaining[a.advertiser_id],
                    num_auctions=auctions_per_round,
                    outstanding=outstanding,
                )
                effective[a.advertiser_id] = exact_throttled_bid(problem)

        for _ in range(auctions_per_round):
            contenders = sorted(
                (
                    (value, advertiser_id)
                    for advertiser_id, value in effective.items()
                    if value > 0.0
                ),
                key=lambda pair: (-pair[0], pair[1]),
            )
            if not contenders:
                continue
            value, winner_id = contenders[0]
            price = max(1, int(round(value)))
            report.wins[winner_id] += 1
            shown.append(
                _Shown(
                    winner_id,
                    price,
                    round_index,
                    rng.random() < by_id[winner_id].ctr,
                )
            )

    for ad in shown:
        settle(ad)
    return report


@dataclass(frozen=True)
class AtScaleGamingMarket:
    """A gaming population sized for the full engine.

    The mini-simulation above isolates the attack mechanics with one
    attacker; this market reproduces it *at scale* -- thousands of
    near-exhausted advertisers crowding a handful of always-occurring
    phrases -- as real :class:`repro.core.advertiser.Advertiser` objects
    the :class:`repro.engine.SharedAuctionEngine` consumes directly.

    Attributes:
        advertisers: The full population, attackers then honest.
        search_rates: ``{phrase: 1.0}`` -- every phrase occurs every
            round, so auction multiplicities stay constant and the only
            thing moving throttled bids is the books.
        attacker_ids: Ids of the near-exhausted advertisers.
        honest_ids: Ids of the deep-budget competitors.
    """

    advertisers: Tuple[Advertiser, ...]
    search_rates: Dict[str, float]
    attacker_ids: frozenset
    honest_ids: frozenset


def gaming_market_at_scale(
    num_attackers: int = 2000,
    num_honest: int = 200,
    num_phrases: int = 8,
    phrases_per_advertiser: int = 2,
    seed: int = 0,
) -> AtScaleGamingMarket:
    """Build the Section IV attack population at engine scale.

    Every attacker is the paper's nearly exhausted advertiser: a budget
    only ~1.5-2x its bid, a moderate CTR, and two popular phrases -- so
    under a naive policy it keeps winning slots whose eventual clicks it
    cannot pay for.  Honest competitors bid comparably but carry budgets
    that absorb every click.  All phrases have search rate 1.0: the
    auction multiplicity ``m_i`` never moves, which both matches the
    attack setting (high-volume keywords) and makes the workload a clean
    probe of book-driven throttle work.

    Args:
        num_attackers: Near-exhausted advertisers (the paper's attack is
            interesting from one; the benchmark runs thousands).
        num_honest: Deep-budget competitors.
        num_phrases: Distinct always-occurring phrases.  Raising this
            (hundreds of phrases over thousands of advertisers) is the
            size knob the columnar/sharded benchmarks turn: per-phrase
            member counts stay ``~(attackers + honest) *
            phrases_per_advertiser / num_phrases``.
        phrases_per_advertiser: Phrases each advertiser bids on (2 in
            the classic attack shape; must not exceed ``num_phrases``).
            The default reproduces the original draw sequence
            byte-for-byte.
        seed: Draw seed; the population is a pure function of the
            arguments.
    """
    if num_attackers <= 0 or num_honest <= 0 or num_phrases <= 0:
        raise BudgetError("at-scale market sizes must be positive")
    if not 0 < phrases_per_advertiser <= num_phrases:
        raise BudgetError(
            f"phrases_per_advertiser must be in [1, {num_phrases}], got "
            f"{phrases_per_advertiser}"
        )
    rng = random.Random(seed)
    phrases = [f"hot{i}" for i in range(num_phrases)]
    advertisers: List[Advertiser] = []
    # Attackers outrank the honest field on score (high bid, high CTR)
    # but carry budgets worth only ~1.5-2 clicks: a naive policy keeps
    # showing them while clicks are in flight, and the late arrivals are
    # forgiven.  Honest competitors score below every fresh attacker and
    # absorb any click they take.
    for i in range(num_attackers):
        bid = round(rng.uniform(1.00, 1.30), 2)
        advertisers.append(
            Advertiser(
                advertiser_id=i,
                bid=bid,
                daily_budget=round(bid * rng.uniform(1.5, 2.0), 2),
                ctr_factor=round(rng.uniform(0.45, 0.65), 3),
                phrases=frozenset(rng.sample(phrases, phrases_per_advertiser)),
            )
        )
    for j in range(num_honest):
        advertisers.append(
            Advertiser(
                advertiser_id=num_attackers + j,
                bid=round(rng.uniform(0.50, 0.90), 2),
                daily_budget=round(rng.uniform(40.0, 80.0), 2),
                ctr_factor=round(rng.uniform(0.25, 0.45), 3),
                phrases=frozenset(rng.sample(phrases, phrases_per_advertiser)),
            )
        )
    return AtScaleGamingMarket(
        advertisers=tuple(advertisers),
        search_rates={phrase: 1.0 for phrase in phrases},
        attacker_ids=frozenset(range(num_attackers)),
        honest_ids=frozenset(
            range(num_attackers, num_attackers + num_honest)
        ),
    )


def forgiven_fraction(revenue_cents: int, forgiven_cents: int) -> float:
    """The provider's revenue loss: forgiven value over delivered value.

    Zero when every click was paid in full; a naive policy on the
    at-scale market forgives a visible fraction, and throttling drives
    it toward zero -- the single number the E19 table tracks.
    """
    delivered = revenue_cents + forgiven_cents
    if delivered <= 0:
        return 0.0
    return forgiven_cents / delivered
