"""Bound-driven comparison and top-k selection of throttled bids.

Winner determination needs only the *order* of throttled bids, not their
values.  :class:`BoundedBid` wraps one advertiser's throttle problem and
lazily tightens its interval by expanding one more outstanding ad at each
refinement; :func:`compare_throttled_bids` refines the two contenders --
widest interval first -- until their intervals separate (or both are
exact); :func:`top_k_throttled` runs a selection over many advertisers,
reusing each advertiser's cached bounds across comparisons, exactly the
caching the paper describes.

After selection, the precise ``b̂`` of the (at most ``k``) winners is
computed exactly for pricing -- cheap compared to computing all ``n``
exactly, which is the point of Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.budgets.hoeffding import Interval, throttled_bid_bounds
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.errors import BudgetError

__all__ = ["BoundedBid", "compare_throttled_bids", "top_k_throttled", "SelectionStats"]


class BoundedBid:
    """An advertiser's throttled bid with lazily refined bounds.

    Attributes:
        advertiser_id: Used for deterministic tie-breaking.
        problem: The underlying throttle inputs.
        depth: Outstanding ads expanded so far.
        refinements: Total refinement steps performed (for benchmarks).
    """

    def __init__(self, advertiser_id: int, problem: ThrottleProblem) -> None:
        self.advertiser_id = advertiser_id
        self.problem = problem
        self.depth = 0
        self.refinements = 0
        self._bounds = throttled_bid_bounds(problem, depth=0)

    @property
    def bounds(self) -> Interval:
        """The current interval around ``b̂`` (in cents)."""
        return self._bounds

    @property
    def exact(self) -> bool:
        """Whether the interval has collapsed (all ads expanded or width 0)."""
        return (
            self.depth >= len(self.problem.outstanding)
            or self._bounds.width <= 1e-9
        )

    def refine(self) -> bool:
        """Expand one more outstanding ad; returns ``False`` if already exact."""
        if self.exact:
            return False
        self.depth += 1
        self.refinements += 1
        refined = throttled_bid_bounds(self.problem, depth=self.depth)
        # Bounds can only tighten; intersect to enforce monotonicity in
        # the face of floating-point wobble.
        self._bounds = Interval(
            max(self._bounds.lo, refined.lo), min(self._bounds.hi, refined.hi)
        )
        return True

    def collapse(self, value: float) -> None:
        """Adopt an externally computed exact ``b̂`` (no DP runs here).

        Used by the incremental throttle cache, which computes (and
        memoizes) exact values itself and must not pay the exact
        computation a second time just to shut this interval.
        """
        self._bounds = Interval(value, value)
        self.depth = len(self.problem.outstanding)

    def resolve_exact(self) -> float:
        """The precise ``b̂`` (used for pricing the winners).

        Jumping straight to the exact value is equivalent to expanding
        every remaining outstanding ad at once, so the skipped depths
        count toward :attr:`refinements` -- otherwise selection-work
        accounting would under-report exactly the expensive resolutions.
        """
        remaining_depth = len(self.problem.outstanding) - self.depth
        if remaining_depth > 0:
            self.refinements += remaining_depth
        value = exact_throttled_bid(self.problem)
        self._bounds = Interval(value, value)
        self.depth = len(self.problem.outstanding)
        return value


def compare_throttled_bids(
    first: BoundedBid,
    second: BoundedBid,
    scheduler=None,
) -> int:
    """Order two throttled bids, refining bounds only as far as needed.

    Returns ``1`` if ``first`` ranks above ``second`` (higher ``b̂``, ties
    by lower advertiser id), ``-1`` for the converse.  Never returns 0:
    ties in value are broken by id so that rankings are total.

    Args:
        first: One contender.
        second: The other contender.
        scheduler: Optional refinement policy
            ``(first, second, step) -> BoundedBid`` choosing which
            contender expands next (see
            :mod:`repro.budgets.schedulers`); defaults to widest-first.
            Schedulers affect only the work done, never the answer.
    """
    if first.advertiser_id == second.advertiser_id:
        raise BudgetError("cannot compare an advertiser with itself")
    step = 0
    while True:
        a, b = first.bounds, second.bounds
        # Separation must clear the same 1e-9 near-tie margin used
        # below: a collapsed interval's endpoints carry float noise
        # from a different summation order than the exact DP, so two
        # mathematically equal values can land strictly disjoint by a
        # few ulps -- which must resolve by id, not by that noise.
        if a.lo > b.hi + 1e-9:
            return 1
        if b.lo > a.hi + 1e-9:
            return -1
        refinable = [bid for bid in (first, second) if not bid.exact]
        if not refinable:
            # Both exact and overlapping => equal values; break by id.
            if abs(a.midpoint - b.midpoint) > 1e-9:
                return 1 if a.midpoint > b.midpoint else -1
            return 1 if first.advertiser_id < second.advertiser_id else -1
        if len(refinable) == 1:
            target = refinable[0]
        elif scheduler is None:
            target = (
                first if first.bounds.width >= second.bounds.width else second
            )
        else:
            target = scheduler(first, second, step)
            if target.exact:
                target = refinable[0]
        target.refine()
        step += 1


@dataclass
class SelectionStats:
    """Work counters for one top-k selection under uncertainty.

    Attributes:
        comparisons: Pairwise comparisons resolved.
        refinements: Total bound-refinement (expansion) steps across all
            advertisers.
        exact_fallbacks: Advertisers whose value had to be computed
            exactly during selection (ties).
    """

    comparisons: int = 0
    refinements: int = 0
    exact_fallbacks: int = 0


def top_k_throttled(
    bids: Sequence[BoundedBid], k: int
) -> Tuple[List[BoundedBid], SelectionStats]:
    """Select the advertisers with the top-k throttled bids.

    A simple bound-aware selection: maintain the current top-k as a
    sorted list and insert each contender by binary search using
    :func:`compare_throttled_bids`; a contender whose upper bound is
    below the current k-th lower bound is rejected without any
    comparison, which is where the bounds save most of the work.

    Returns:
        The winners in rank order plus work counters.
    """
    if k <= 0:
        raise BudgetError(f"k must be positive, got {k}")
    stats = SelectionStats()
    top: List[BoundedBid] = []
    # Bids already exact on arrival (trivially unthrottled, or no
    # outstanding ads) never *fell back*; only a bid whose interval the
    # selection itself drove to exactness counts.
    fell_back = {
        bid.advertiser_id for bid in bids if bid.exact
    }

    def note_fallbacks(*contenders: BoundedBid) -> None:
        for contender in contenders:
            if contender.exact and contender.advertiser_id not in fell_back:
                fell_back.add(contender.advertiser_id)
                stats.exact_fallbacks += 1

    def insert(bid: BoundedBid) -> None:
        lo, hi = 0, len(top)
        while lo < hi:
            mid = (lo + hi) // 2
            stats.comparisons += 1
            before = bid.refinements + top[mid].refinements
            outcome = compare_throttled_bids(bid, top[mid])
            stats.refinements += (bid.refinements + top[mid].refinements) - before
            note_fallbacks(bid, top[mid])
            if outcome > 0:
                hi = mid
            else:
                lo = mid + 1
        top.insert(lo, bid)

    for bid in bids:
        if len(top) >= k and bid.bounds.hi < top[-1].bounds.lo:
            continue  # Provably out of the running; zero comparisons.
        insert(bid)
        if len(top) > k:
            top.pop()
    return top, stats
