"""Budget uncertainty (Section IV).

Advertisers pay per click, and clicks arrive after the ad is shown, so an
advertiser's remaining budget is uncertain whenever ads are outstanding.
This package implements the paper's principled treatment:

- :mod:`repro.budgets.outstanding` -- outstanding ads, click-probability
  decay models, and the per-advertiser ledger.
- :mod:`repro.budgets.throttle` -- the throttled bid
  ``b̂_i = E[min(b_i, max(0, β_i - S_l) / m_i)]``: exact computation by
  dynamic programming over currency units (``O(l·β)``) or enumeration
  (``O(2^l)``), plus a Monte-Carlo estimator.
- :mod:`repro.budgets.hoeffding` -- interval bounds on ``Pr(S_l < x)``,
  ``E(S_l · 1[x ≤ S_l < y])``, and hence on ``b̂_i``; bounds tighten by
  *expanding out* the largest-price outstanding ads exactly.
- :mod:`repro.budgets.comparison` -- deciding ``b̂_i`` vs ``b̂_i'`` with
  successive refinement, and top-k selection under uncertainty.
- :mod:`repro.budgets.incremental` -- the change-feed-backed throttle
  cache: clean advertisers reuse their last ``b̂`` in O(1); selection
  refines bounds lazily and falls back to the exact DP only for
  genuinely incomparable contenders.
- :mod:`repro.budgets.gaming` -- the Section IV gaming attack: what a
  nearly-exhausted advertiser gains when the system ignores budget
  uncertainty, and how throttling removes the exploit.
"""

from repro.budgets.comparison import (
    BoundedBid,
    compare_throttled_bids,
    top_k_throttled,
)
from repro.budgets.incremental import (
    IncrementalThrottleCache,
    ThrottleCacheStats,
)
from repro.budgets.hoeffding import (
    Interval,
    expected_masked_sum_bounds,
    prob_sum_less_than,
    throttled_bid_bounds,
)
from repro.budgets.outstanding import (
    ExponentialDecay,
    GeometricDecay,
    NoDecay,
    OutstandingAd,
    OutstandingLedger,
)
from repro.budgets.throttle import (
    ThrottleProblem,
    exact_throttled_bid,
    monte_carlo_throttled_bid,
)

__all__ = [
    "BoundedBid",
    "ExponentialDecay",
    "GeometricDecay",
    "IncrementalThrottleCache",
    "Interval",
    "NoDecay",
    "OutstandingAd",
    "OutstandingLedger",
    "ThrottleCacheStats",
    "ThrottleProblem",
    "compare_throttled_bids",
    "exact_throttled_bid",
    "expected_masked_sum_bounds",
    "monte_carlo_throttled_bid",
    "prob_sum_less_than",
    "throttled_bid_bounds",
    "top_k_throttled",
]
