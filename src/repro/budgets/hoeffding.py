"""Hoeffding-bound engine for throttled bids (Section IV-B).

Rather than computing every advertiser's throttled bid exactly, winner
determination only needs to *compare* throttled bids.  This module
provides interval bounds on ``b̂`` that tighten by *expanding out*
outstanding ads one at a time:

- With no ads expanded, ``Pr(S_l < x)`` is bounded by Hoeffding's
  inequality using ``μ_l``, ``ω_l`` and ``sum π_j²``.
- Expanding the ad with the largest price ``π_l`` conditions on its
  click outcome exactly::

      Pr(S_l < x) = ctr_l Pr(S_{l-1} < x - π_l) + (1 - ctr_l) Pr(S_{l-1} < x)

  (and the analogous expansion for ``E(S_l · 1[x <= S_l < y])``),
  shrinking the Hoeffding term's variance proxy fastest -- the paper's
  rationale for the largest-``π``-first order.
- Expanding *all* ads gives width-zero intervals (the exact value).

Deviation from the paper, documented in DESIGN.md: the published bounds
clamp the Hoeffding terms with ``max(0.5, ...)`` / ``min(0.5, ...)``,
implicitly assuming the median of ``S_l`` is at its mean.  That is not
true for skewed sums, so we omit the 0.5 clamps; our bounds are the
strictly sound versions and are validated against exact values by
property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.budgets.throttle import ThrottleProblem
from repro.errors import BudgetError

__all__ = [
    "Interval",
    "prob_sum_less_than",
    "expected_masked_sum_bounds",
    "throttled_bid_bounds",
]

Ad = Tuple[int, float]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with the arithmetic bounds need.

    Raises:
        BudgetError: If ``lo > hi`` beyond floating-point noise.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi + 1e-9:
            raise BudgetError(f"invalid interval [{self.lo}, {self.hi}]")

    @property
    def width(self) -> float:
        """``hi - lo`` -- zero means the value is known exactly."""
        return max(0.0, self.hi - self.lo)

    @property
    def midpoint(self) -> float:
        """The interval's center."""
        return (self.lo + self.hi) / 2.0

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a non-negative scalar."""
        if factor < 0.0:
            raise BudgetError("interval scaling expects a non-negative factor")
        return Interval(self.lo * factor, self.hi * factor)

    def clamp(self, lo: float, hi: float) -> "Interval":
        """Intersect with ``[lo, hi]`` (used for probabilities and bids)."""
        new_lo = min(max(self.lo, lo), hi)
        new_hi = max(min(self.hi, hi), lo)
        if new_lo > new_hi:
            # Disjoint from the clamp range; collapse to the nearer edge.
            edge = lo if self.hi < lo else hi
            return Interval(edge, edge)
        return Interval(new_lo, new_hi)

    def definitely_less_than(self, other: "Interval") -> bool:
        """Whether every value here is below every value of ``other``."""
        return self.hi < other.lo

    def __contains__(self, value: float) -> bool:
        return self.lo - 1e-12 <= value <= self.hi + 1e-12


def _tail_bound_hoeffding(ads: Sequence[Ad], t: float) -> float:
    """Hoeffding bound on ``Pr(|S - mu| >= t)`` one-sided: ``exp(-2t²/Σπ²)``."""
    ssq = sum(price * price for price, _ in ads)
    if ssq <= 0.0:
        return 0.0
    return math.exp(-2.0 * t * t / ssq)


def _tail_bound_bernstein(ads: Sequence[Ad], t: float) -> float:
    """Bernstein bound on the one-sided deviation ``Pr(S - mu >= t)``.

    ``exp(-t² / (2σ² + (2/3) M t))`` with ``σ² = Σ π² ctr (1 - ctr)`` and
    ``M = max π``.  Tighter than Hoeffding when click probabilities are
    small (low variance), looser for ``ctr ≈ 0.5``; the bound engine can
    intersect both.
    """
    variance = sum(
        price * price * ctr * (1.0 - ctr) for price, ctr in ads
    )
    max_price = max((price for price, _ in ads), default=0)
    denominator = 2.0 * variance + (2.0 / 3.0) * max_price * t
    if denominator <= 0.0:
        return 0.0
    return math.exp(-t * t / denominator)


def _tail_bound(ads: Sequence[Ad], t: float, method: str) -> float:
    if method == "hoeffding":
        return _tail_bound_hoeffding(ads, t)
    if method == "bernstein":
        return _tail_bound_bernstein(ads, t)
    if method == "combined":
        return min(
            _tail_bound_hoeffding(ads, t), _tail_bound_bernstein(ads, t)
        )
    raise BudgetError(f"unknown bound method {method!r}")


def _hoeffding_prob_less(
    ads: Sequence[Ad], x: float, method: str = "hoeffding"
) -> Interval:
    """Concentration bounds on ``Pr(S < x)`` with no ads expanded."""
    omega = sum(price for price, _ in ads)
    if x <= 0:
        return Interval(0.0, 0.0)
    if x > omega:
        return Interval(1.0, 1.0)
    mu = sum(price * ctr for price, ctr in ads)
    if all(price == 0 for price, _ in ads):
        # All prices zero: S is identically 0 < x.
        return Interval(1.0, 1.0)
    if x >= mu:
        lo = max(0.0, 1.0 - _tail_bound(ads, x - mu, method))
        hi = 1.0
    else:
        lo = 0.0
        hi = min(1.0, _tail_bound(ads, mu - x, method))
    # S = 0 with probability prod(1 - ctr), and 0 < x here.
    none_click = 1.0
    for _, ctr in ads:
        none_click *= 1.0 - ctr
    lo = max(lo, none_click)
    return Interval(lo, hi)


def prob_sum_less_than(
    ads: Sequence[Ad], x: float, depth: int = 0, method: str = "hoeffding"
) -> Interval:
    """Interval bounds on ``Pr(S < x)``.

    Args:
        ads: ``(π_j, ctr_j)`` pairs sorted by **ascending** price; the
            expansion peels ads off the end (largest price first).
        x: The threshold.
        depth: Number of largest-price ads to expand exactly.  ``depth >=
            len(ads)`` yields the exact probability (width zero).
        method: Base concentration bound for the unexpanded remainder:
            ``"hoeffding"`` (the paper's), ``"bernstein"`` (variance-
            aware; tighter for small click probabilities), or
            ``"combined"`` (intersection of both, always at least as
            tight).
    """
    if not ads:
        return Interval(1.0, 1.0) if x > 0 else Interval(0.0, 0.0)
    if x <= 0:
        return Interval(0.0, 0.0)
    if depth <= 0:
        return _hoeffding_prob_less(ads, x, method)
    price, ctr = ads[-1]
    rest = ads[:-1]
    clicked = prob_sum_less_than(rest, x - price, depth - 1, method)
    missed = prob_sum_less_than(rest, x, depth - 1, method)
    combined = clicked.scale(ctr) + missed.scale(1.0 - ctr)
    return combined.clamp(0.0, 1.0)


def _prob_in_range(
    ads: Sequence[Ad], x: float, y: float, depth: int, method: str = "hoeffding"
) -> Interval:
    """Bounds on ``Pr(x <= S < y)`` from the two one-sided bounds."""
    below_y = prob_sum_less_than(ads, y, depth, method)
    below_x = prob_sum_less_than(ads, x, depth, method)
    return (below_y - below_x).clamp(0.0, 1.0)


def expected_masked_sum_bounds(
    ads: Sequence[Ad], x: float, y: float, depth: int = 0,
    method: str = "hoeffding",
) -> Interval:
    """Interval bounds on ``E(S · 1[x <= S < y])`` for ``0 <= x < y``.

    With no expansion, ``x * Pr <= E <= y * Pr`` bounds the conditional
    value; expanding the largest-price ad applies the paper's recursion::

        E(S_l 1[x<=S_l<y]) = ctr_l E(S_{l-1} 1[x-π<=S_{l-1}<y-π])
                           + ctr_l π Pr(x-π <= S_{l-1} < y-π)
                           + (1-ctr_l) E(S_{l-1} 1[x <= S_{l-1} < y])
    """
    x = max(0.0, x)
    if y <= x or not ads:
        return Interval(0.0, 0.0)
    if depth <= 0:
        probability = _prob_in_range(ads, x, y, 0, method)
        omega = float(sum(price for price, _ in ads))
        upper_value = min(y, omega)
        return Interval(x * probability.lo, upper_value * probability.hi)
    price, ctr = ads[-1]
    rest = ads[:-1]
    shifted = expected_masked_sum_bounds(
        rest, x - price, y - price, depth - 1, method
    )
    shifted_prob = _prob_in_range(
        rest, max(0.0, x - price), y - price, depth - 1, method
    )
    unshifted = expected_masked_sum_bounds(rest, x, y, depth - 1, method)
    combined = (
        shifted.scale(ctr)
        + shifted_prob.scale(ctr * price)
        + unshifted.scale(1.0 - ctr)
    )
    omega = float(sum(p for p, _ in ads))
    return combined.clamp(0.0, min(y, omega))


def throttled_bid_bounds(
    problem: ThrottleProblem, depth: int = 0, method: str = "hoeffding"
) -> Interval:
    """Interval bounds on the throttled bid ``b̂`` (in cents).

    Decomposition (Section IV-B)::

        m b̂ = m b Pr(S < β - m b) + β Pr(β - m b <= S < β)
             - E(S · 1[β - m b <= S < β])

    Args:
        problem: The throttle inputs.
        depth: Ads expanded exactly, largest price first;
            ``depth >= l`` makes the interval exact.
        method: Base concentration bound (``"hoeffding"``,
            ``"bernstein"``, or ``"combined"``); see
            :func:`prob_sum_less_than`.
    """
    bid = float(problem.bid_cents)
    if problem.trivially_unthrottled():
        return Interval(bid, bid)
    ads = tuple(sorted(problem.outstanding, key=lambda ad: (ad[0], ad[1])))
    beta = float(problem.budget_cents)
    m = float(problem.num_auctions)
    x0 = beta - m * bid
    full_value = prob_sum_less_than(ads, x0, depth, method).scale(m * bid)
    partial_prob = _prob_in_range(ads, max(0.0, x0), beta, depth, method)
    partial_value = partial_prob.scale(beta)
    partial_debt = expected_masked_sum_bounds(
        ads, max(0.0, x0), beta, depth, method
    )
    total = full_value + partial_value - partial_debt
    return total.scale(1.0 / m).clamp(0.0, bid)
