"""Refinement scheduling policies for bound-driven comparisons.

The paper's future-work section asks how to *schedule* the refinement of
throttled-bid bounds so comparisons resolve with as little work as
possible.  A scheduler decides, given two contenders with overlapping
intervals, which one expands its next outstanding ad.  Implemented
policies:

- :func:`widest_first` -- refine the wider interval (default; the widest
  interval is the biggest obstacle to separation).
- :func:`round_robin` -- alternate strictly, ignoring interval state.
- :func:`largest_price_first` -- refine the contender whose *next*
  expansion removes the largest outstanding price from its Hoeffding
  term (the paper's intuition for the expansion order, applied across
  contenders).
- :func:`most_uncertain_mass` -- refine the contender with the larger
  product of interval width and remaining unexpanded liability.

All schedulers are exact: they only change how fast the comparison
resolves, never its answer (tests enforce this).
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.budgets.comparison import BoundedBid

__all__ = [
    "Scheduler",
    "widest_first",
    "round_robin",
    "largest_price_first",
    "most_uncertain_mass",
    "NAMED_SCHEDULERS",
]

Scheduler = Callable[[BoundedBid, BoundedBid, int], BoundedBid]
"""Given the two contenders and the refinement step index, pick which to
refine next.  Contenders passed to a scheduler always both have
refinement capacity left (non-exact)."""


def widest_first(first: BoundedBid, second: BoundedBid, _step: int) -> BoundedBid:
    """Refine the contender with the wider current interval."""
    return first if first.bounds.width >= second.bounds.width else second


def round_robin(first: BoundedBid, second: BoundedBid, step: int) -> BoundedBid:
    """Alternate strictly between the two contenders."""
    return first if step % 2 == 0 else second


def _next_unexpanded_price(bid: BoundedBid) -> int:
    """Price of the next ad the contender would expand (0 if none).

    Expansion order is largest price first over the ads sorted by
    ascending price, so the next ad is at index ``-(depth + 1)``.
    """
    ads = sorted(bid.problem.outstanding, key=lambda ad: (ad[0], ad[1]))
    index = len(ads) - bid.depth - 1
    if index < 0:
        return 0
    return ads[index][0]


def largest_price_first(
    first: BoundedBid, second: BoundedBid, _step: int
) -> BoundedBid:
    """Refine whichever contender's next expansion removes more price mass."""
    if _next_unexpanded_price(first) >= _next_unexpanded_price(second):
        return first
    return second


def _uncertain_mass(bid: BoundedBid) -> float:
    ads = sorted(bid.problem.outstanding, key=lambda ad: (ad[0], ad[1]))
    remaining = sum(price for price, _ctr in ads[: len(ads) - bid.depth])
    return bid.bounds.width * max(1, remaining)


def most_uncertain_mass(
    first: BoundedBid, second: BoundedBid, _step: int
) -> BoundedBid:
    """Refine the contender with more width times unexpanded liability."""
    return first if _uncertain_mass(first) >= _uncertain_mass(second) else second


NAMED_SCHEDULERS: dict[str, Scheduler] = {
    "widest-first": widest_first,
    "round-robin": round_robin,
    "largest-price-first": largest_price_first,
    "most-uncertain-mass": most_uncertain_mass,
}
"""The built-in schedulers, keyed by the names benchmarks report."""
