"""Incremental Section IV throttling on the engine's change feed.

The seed engine recomputed ``b̂_i`` -- the ``O(min(2^l, l·β))`` exact
throttle DP -- for every advertiser on every round and every served
query, even though an advertiser's throttle inputs only move when its
*books* move: a click settles, a display becomes outstanding debt, or an
outstanding ad expires.  All three already announce themselves as
``BudgetChanged`` events on the unified change feed (PR 6), which makes
throttling just another cross-round cache problem:

- :class:`IncrementalThrottleCache` memoizes, per advertiser, the last
  :class:`repro.budgets.throttle.ThrottleProblem` together with its
  exact value and/or its lazily refined
  :class:`repro.budgets.comparison.BoundedBid`.  An entry is reusable
  while (a) no drained event touched the advertiser, (b) the cache key
  ``(bid_cents, num_auctions)`` is unchanged (multiplicity ``m_i`` feeds
  the problem, so it is part of the key rather than an event), and
  (c) the decay model does not re-weigh debt each round
  (:attr:`repro.engine.budget_manager.BudgetManager.decay_varies`;
  when it does, entries are valid only within the round they were
  built).  Clean advertisers reuse their last b̂ in O(1).

- :meth:`IncrementalThrottleCache.select_top` is the paper's Section
  IV-B selection, CTR-scaled for the engine's ranking order: depth-0
  Hoeffding bounds first, refining by the largest-π expand-out only
  when two throttled bids are actually incomparable inside top-k
  selection, and falling back to the exact DP only for the survivors
  (whose precise b̂ GSP pricing needs anyway).

Soundness contract (the verify mode cross-checks it): the cache assumes
``expire_outstanding(round_index)`` ran before scoring each round -- the
engine's stage 1 guarantees this -- so that under a non-varying decay
model every snapshot change is covered by a published event.  With
``verify=True`` every reuse rebuilds the problem fresh and raises
:class:`repro.errors.BudgetError` on any mismatch, the same
declared-vs-diffed contract the exec and sort caches enforce.

Float identity: a reused or memoized value is the *same float* an
uncached run computes, because equal :class:`ThrottleProblem` inputs go
through the identical code path.  Bound-driven selection decides an
order from intervals only when they are separated by more than the
bounds' own floating-point noise; anything closer resolves both sides
exactly and compares the engine's own score expression
(``value / 100.0 * ctr_factor``, ties by lower id).  That is why the
50-seed differential can demand bit-identical winners, prices, and
budget trajectories rather than winners "up to epsilon".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.budgets.comparison import BoundedBid
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.errors import BudgetError
from repro.instrument import NULL, Collector, names as metric_names

__all__ = ["IncrementalThrottleCache", "ThrottleCacheStats"]

_SUBSCRIBED_KINDS = ("budget_changed", "advertiser_removed")

# Interval separation margin, in score units (b̂/100 · c).  Bounds carry
# floating-point noise around 1e-12 of their magnitude; real score gaps
# in generated markets sit at 1e-4 and above.  Two intervals closer than
# this margin are treated as incomparable and resolved exactly, which
# can only cost work, never change an outcome.
_SCORE_EPS = 1e-9

# Expansion ceiling during selection.  One expand-out step at depth d
# recurses over every click pattern of the d expanded ads, so its cost
# grows like 2^d while the exact DP is a flat O(l·β): past a few levels
# the "lazy" bound is dearer than the value it brackets.  Depth 0-3
# resolves the well-separated comparisons (the common case); anything
# still overlapping at the ceiling goes straight to the DP.
_MAX_EXPAND_DEPTH = 3


@dataclass
class ThrottleCacheStats:
    """Work counters for the incremental throttle layer.

    Attributes:
        problems_reused: Clean advertisers whose cached problem (and
            value/bounds) was served in O(1).
        problems_rebuilt: Throttle problems rebuilt from the budget
            manager (dirty, key moved, round-scoped, or never cached).
        invalidations: Cache entries marked dirty by drained events.
        exact_fallbacks: Non-trivial exact b̂ computations -- the DP or
            enumeration actually ran.  Trivially unthrottled problems
            and zero bids short-circuit for free and are not counted.
        bounds_comparisons: Interval comparisons made during
            bound-driven top-k selection.
        expansions: Largest-π expand-out steps taken to separate
            incomparable intervals.
    """

    problems_reused: int = 0
    problems_rebuilt: int = 0
    invalidations: int = 0
    exact_fallbacks: int = 0
    bounds_comparisons: int = 0
    expansions: int = 0


class _Entry:
    """One advertiser's cached throttle state."""

    __slots__ = ("advertiser_id", "key", "round_index", "problem", "bid",
                 "exact_value")

    def __init__(
        self,
        advertiser_id: int,
        key: Tuple[int, int],
        round_index: int,
        problem: ThrottleProblem,
    ) -> None:
        self.advertiser_id = advertiser_id
        self.key = key
        self.round_index = round_index
        self.problem = problem
        self.bid: Optional[BoundedBid] = None
        self.exact_value: Optional[float] = None


class _Contender:
    """A cache entry scaled into ranking-score space for one phrase."""

    __slots__ = ("entry", "factor", "scaled_lo", "scaled_hi")

    def __init__(self, entry: _Entry, factor: float) -> None:
        self.entry = entry
        self.factor = factor
        self.rescale()

    def rescale(self) -> None:
        if self.entry.exact_value is not None:
            value = self.entry.exact_value / 100.0 * self.factor
            self.scaled_lo = value
            self.scaled_hi = value
            return
        bounds = self.entry.bid.bounds
        self.scaled_lo = bounds.lo / 100.0 * self.factor
        self.scaled_hi = bounds.hi / 100.0 * self.factor

    @property
    def refinable(self) -> bool:
        return (
            self.entry.exact_value is None
            and not self.entry.bid.exact
            and self.entry.bid.depth < _MAX_EXPAND_DEPTH
        )

    @property
    def width(self) -> float:
        return self.scaled_hi - self.scaled_lo


class IncrementalThrottleCache:
    """Per-advertiser throttled-bid cache fed by the change-feed bus.

    Args:
        manager: The budget manager owning the books this cache mirrors.
        collector: Receives the ``throttle.*`` counters.
        verify: Cross-check every reuse against a freshly built problem
            and raise :class:`repro.errors.BudgetError` on mismatch (an
            undeclared book movement means the change feed is unsound).
            Costs an O(l) problem build per reuse -- the debugging
            posture, exactly like the other caches' ``cache_verify``.
        memoize: ``False`` runs the identical code paths (and counters)
            but never reuses an entry across accesses -- the honest
            "per-access exact recompute" baseline the benchmark and the
            differential tests compare against.

    An instance with ``memoize=True`` must be :meth:`connect`-ed to the
    engine's :class:`repro.engine.changefeed.ChangeFeed` before first
    use; without a subscription it could never learn about settlements
    and would serve stale b̂ values.
    """

    def __init__(
        self,
        manager,
        collector: Collector = NULL,
        verify: bool = False,
        memoize: bool = True,
    ) -> None:
        self._manager = manager
        self._collector = collector
        self._verify = verify
        self._memoize = memoize
        self._entries: Dict[int, _Entry] = {}
        self._dirty: Set[int] = set()
        self._subscription = None
        self.stats = ThrottleCacheStats()

    # ------------------------------------------------------------------
    # change-feed plumbing
    # ------------------------------------------------------------------
    def connect(self, feed) -> None:
        """Subscribe to the book movements that invalidate entries.

        ``BudgetChanged`` covers every settlement, display, and expiry
        (the budget manager publishes them at the source);
        ``AdvertiserRemoved`` evicts.  Auction-multiplicity changes need
        no event because ``num_auctions`` is part of the cache key, and
        decay re-weighing needs none because a varying decay model makes
        entries round-scoped.
        """
        self._subscription = feed.subscribe(
            "throttle-cache", kinds=_SUBSCRIBED_KINDS
        )

    def drain(self) -> None:
        """Consume pending events, marking touched entries dirty.

        The engine calls this once per scoring pass (round or served
        query); standalone users call it whenever they are about to read
        bids after mutating books.
        """
        subscription = self._subscription
        if subscription is None or not subscription.pending:
            return
        invalidated = 0
        for event in subscription.drain():
            if event.kind == "advertiser_removed":
                for advertiser_id in event.dirty_advertisers:
                    if self._entries.pop(advertiser_id, None) is not None:
                        invalidated += 1
                    self._dirty.discard(advertiser_id)
                continue
            for advertiser_id in event.dirty_advertisers:
                if (
                    advertiser_id in self._entries
                    and advertiser_id not in self._dirty
                ):
                    self._dirty.add(advertiser_id)
                    invalidated += 1
        if invalidated:
            self.stats.invalidations += invalidated
            if self._collector.enabled:
                self._collector.incr(
                    metric_names.THROTTLE_CACHE_INVALIDATIONS, invalidated
                )

    # ------------------------------------------------------------------
    # entry lifecycle
    # ------------------------------------------------------------------
    def _entry(
        self,
        advertiser_id: int,
        bid_cents: int,
        num_auctions: int,
        round_index: int,
    ) -> _Entry:
        self.drain()
        key = (bid_cents, num_auctions)
        if self._memoize:
            if self._subscription is None:
                raise BudgetError(
                    "IncrementalThrottleCache must be connect()-ed to a "
                    "change feed before caching; without events it would "
                    "serve stale throttled bids"
                )
            entry = self._entries.get(advertiser_id)
            if (
                entry is not None
                and advertiser_id not in self._dirty
                and entry.key == key
                and (
                    entry.round_index == round_index
                    or not self._manager.decay_varies
                )
            ):
                if self._verify:
                    fresh = self._manager.throttle_problem(
                        advertiser_id, bid_cents, num_auctions, round_index
                    )
                    if fresh != entry.problem:
                        raise BudgetError(
                            "unsound change feed: throttle inputs for "
                            f"advertiser {advertiser_id} moved with no "
                            f"covering event ({entry.problem} -> {fresh})"
                        )
                entry.round_index = round_index
                self.stats.problems_reused += 1
                if self._collector.enabled:
                    self._collector.incr(metric_names.THROTTLE_PROBLEMS_REUSED)
                return entry
        problem = self._manager.throttle_problem(
            advertiser_id, bid_cents, num_auctions, round_index
        )
        entry = _Entry(advertiser_id, key, round_index, problem)
        if self._memoize:
            self._entries[advertiser_id] = entry
            self._dirty.discard(advertiser_id)
        self.stats.problems_rebuilt += 1
        if self._collector.enabled:
            self._collector.incr(metric_names.THROTTLE_PROBLEMS_REBUILT)
        return entry

    def _resolve(self, entry: _Entry) -> float:
        """The exact b̂ for an entry, memoized, with honest work counts.

        The two short-circuits return the same float
        :func:`exact_throttled_bid` would: a zero capped bid integrates
        to exactly ``0.0``, and a trivially unthrottled problem returns
        ``float(bid_cents)`` by the paper's quick test -- in both cases
        no DP runs, so neither counts as an exact fallback.
        """
        if entry.exact_value is not None:
            return entry.exact_value
        problem = entry.problem
        if problem.bid_cents == 0:
            value = 0.0
        elif problem.trivially_unthrottled():
            value = float(problem.bid_cents)
        else:
            self.stats.exact_fallbacks += 1
            if self._collector.enabled:
                self._collector.incr(metric_names.THROTTLE_EXACT_FALLBACKS)
            value = exact_throttled_bid(problem)
        entry.exact_value = value
        if entry.bid is not None:
            entry.bid.collapse(value)
        return value

    def _bounded(self, entry: _Entry) -> BoundedBid:
        if entry.bid is None:
            entry.bid = BoundedBid(entry.advertiser_id, entry.problem)
            if entry.exact_value is not None:
                entry.bid.collapse(entry.exact_value)
        return entry.bid

    # ------------------------------------------------------------------
    # public scoring API
    # ------------------------------------------------------------------
    def exact_bid(
        self,
        advertiser_id: int,
        bid_cents: int,
        num_auctions: int,
        round_index: int,
    ) -> float:
        """The exact b̂ in cents -- the drop-in for the per-round DP.

        Bit-identical to
        ``exact_throttled_bid(manager.throttle_problem(...))`` on the
        same books; cheaper whenever the advertiser is clean.
        """
        return self._resolve(
            self._entry(advertiser_id, bid_cents, num_auctions, round_index)
        )

    def cached_advertisers(self) -> int:
        """Entries currently resident (for reports and tests)."""
        return len(self._entries)

    def select_top(
        self,
        contenders: Sequence[Tuple[int, int, int, float]],
        k: int,
        round_index: int,
    ) -> List[Tuple[int, float, float]]:
        """Bound-driven top-k selection in the engine's ranking order.

        Args:
            contenders: ``(advertiser_id, bid_cents, num_auctions,
                ctr_factor)`` per advertiser bidding on the phrase.
            k: Entries to select (the engine asks for slots + 1 so GSP
                can see the runner-up).
            round_index: The scoring round.

        Returns:
            At most ``k`` tuples ``(advertiser_id, exact_bid_cents,
            score)`` in rank order -- score descending, ties by lower
            advertiser id -- where ``score`` is the engine's own float
            expression ``exact_bid_cents / 100.0 * ctr_factor``.  Every
            returned advertiser is resolved exactly (pricing needs it);
            everyone else stays at whatever bound depth selection
            reached.
        """
        if k <= 0:
            raise BudgetError(f"k must be positive, got {k}")
        stats = self.stats
        collector = self._collector
        top: List[_Contender] = []

        def refine(contender: _Contender) -> bool:
            if not contender.refinable:
                return False
            contender.entry.bid.refine()
            stats.expansions += 1
            if collector.enabled:
                collector.incr(metric_names.THROTTLE_EXPANSIONS)
            contender.rescale()
            return True

        def exact_score(contender: _Contender) -> float:
            value = self._resolve(contender.entry)
            contender.rescale()
            return value / 100.0 * contender.factor

        def ranks_above(a: _Contender, b: _Contender) -> bool:
            """Engine order: score descending, ties by lower id."""
            while True:
                stats.bounds_comparisons += 1
                if collector.enabled:
                    collector.incr(metric_names.THROTTLE_BOUNDS_COMPARISONS)
                if a.scaled_lo > b.scaled_hi + _SCORE_EPS:
                    return True
                if b.scaled_lo > a.scaled_hi + _SCORE_EPS:
                    return False
                # Incomparable: expand the wider interval out one more
                # ad (the largest-π-first order lives in BoundedBid).
                target, other = (a, b) if a.width >= b.width else (b, a)
                if refine(target) or refine(other):
                    continue
                # Both at their final bounds and still overlapping:
                # resolve exactly and compare the engine's own floats.
                score_a, score_b = exact_score(a), exact_score(b)
                if score_a != score_b:
                    return score_a > score_b
                return a.entry.advertiser_id < b.entry.advertiser_id

        for advertiser_id, bid_cents, num_auctions, factor in contenders:
            entry = self._entry(
                advertiser_id, bid_cents, num_auctions, round_index
            )
            self._bounded(entry)
            contender = _Contender(entry, factor)
            if (
                len(top) >= k
                and contender.scaled_hi < top[-1].scaled_lo - _SCORE_EPS
            ):
                # Provably below the current k-th: rejected for the cost
                # of one bounds look, no comparisons at all.
                stats.bounds_comparisons += 1
                if collector.enabled:
                    collector.incr(metric_names.THROTTLE_BOUNDS_COMPARISONS)
                continue
            lo, hi = 0, len(top)
            while lo < hi:
                mid = (lo + hi) // 2
                if ranks_above(contender, top[mid]):
                    hi = mid
                else:
                    lo = mid + 1
            top.insert(lo, contender)
            if len(top) > k:
                top.pop()

        return [
            (
                contender.entry.advertiser_id,
                self._resolve(contender.entry),
                exact_score(contender),
            )
            for contender in top
        ]
