"""Outstanding ads and click-probability decay.

An *outstanding ad* has been displayed but neither clicked nor expired:
the advertiser may still owe its price ``π_j`` with probability
``ctr_j``.  The paper makes no assumption about ``ctr_j`` but notes it is
reasonable to model it as decreasing with the time since display and
reaching zero after a limit, which lets old outstanding ads be discarded.
Three decay models are provided; all satisfy that contract.

Money is handled in integer *cents* throughout this package: the paper's
exact algorithm is ``O(min(2^l, β))`` "assuming that β is written in the
lowest denomination of currency", and integer arithmetic keeps the DP
exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Protocol, Tuple

from repro.errors import BudgetError

__all__ = [
    "ClickDecayModel",
    "NoDecay",
    "GeometricDecay",
    "ExponentialDecay",
    "OutstandingAd",
    "OutstandingLedger",
]


class ClickDecayModel(Protocol):
    """Maps a base click probability and elapsed time to current ``ctr_j``."""

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        """Current probability the outstanding ad still gets clicked."""
        ...

    @property
    def horizon(self) -> int:
        """Rounds after which the probability is exactly zero.

        A horizon lets the ledger discard ads that have received no
        click in a long time, as the paper suggests.
        """
        ...


@dataclass(frozen=True)
class NoDecay:
    """Click probability stays at the base CTR until the horizon."""

    horizon: int = 1_000_000

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        if elapsed_rounds >= self.horizon:
            return 0.0
        return base_ctr


@dataclass(frozen=True)
class GeometricDecay:
    """Each elapsed round multiplies the click probability by ``ratio``."""

    ratio: float = 0.5
    horizon: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise BudgetError(f"decay ratio must be in [0, 1], got {self.ratio}")
        if self.horizon <= 0:
            raise BudgetError("decay horizon must be positive")

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        if elapsed_rounds >= self.horizon:
            return 0.0
        return base_ctr * self.ratio**elapsed_rounds


@dataclass(frozen=True)
class ExponentialDecay:
    """Continuous-rate decay ``exp(-rate * elapsed)`` with a hard horizon."""

    rate: float = 0.3
    horizon: int = 32

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise BudgetError(f"decay rate must be non-negative, got {self.rate}")
        if self.horizon <= 0:
            raise BudgetError("decay horizon must be positive")

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        if elapsed_rounds >= self.horizon:
            return 0.0
        return base_ctr * math.exp(-self.rate * elapsed_rounds)


@dataclass(frozen=True)
class OutstandingAd:
    """One displayed-but-unresolved ad.

    Attributes:
        price_cents: ``π_j`` -- the price (in cents) the advertiser will
            pay if the ad is clicked.
        base_ctr: Click probability at display time.
        displayed_round: Round index when the ad was shown.
    """

    price_cents: int
    base_ctr: float
    displayed_round: int = 0

    def __post_init__(self) -> None:
        if self.price_cents < 0:
            raise BudgetError(f"price must be non-negative, got {self.price_cents}")
        if not 0.0 <= self.base_ctr <= 1.0:
            raise BudgetError(f"CTR must be in [0, 1], got {self.base_ctr}")

    def current_ctr(self, decay: ClickDecayModel, current_round: int) -> float:
        """``ctr_j`` given the time elapsed since display."""
        elapsed = max(0, current_round - self.displayed_round)
        return decay.probability(self.base_ctr, elapsed)


@dataclass
class OutstandingLedger:
    """Per-advertiser bookkeeping of outstanding ads.

    Attributes:
        decay: The click-decay model applied to all ads in the ledger.
        ads: The live outstanding ads, oldest first.
    """

    decay: ClickDecayModel = field(default_factory=NoDecay)
    ads: List[OutstandingAd] = field(default_factory=list)

    def record_display(
        self, price_cents: int, base_ctr: float, round_index: int
    ) -> OutstandingAd:
        """Add a newly displayed ad and return it."""
        ad = OutstandingAd(price_cents, base_ctr, round_index)
        self.ads.append(ad)
        return ad

    def resolve(self, ad: OutstandingAd) -> None:
        """Remove an ad that was clicked (debt settled) or cancelled."""
        try:
            self.ads.remove(ad)
        except ValueError:
            raise BudgetError("ad is not outstanding in this ledger") from None

    def prune(self, current_round: int) -> int:
        """Drop ads whose click probability has decayed to zero.

        Returns the number of ads discarded.
        """
        before = len(self.ads)
        self.ads = [
            ad
            for ad in self.ads
            if ad.current_ctr(self.decay, current_round) > 0.0
        ]
        return before - len(self.ads)

    def snapshot(self, current_round: int) -> List[Tuple[int, float]]:
        """The ``(π_j, ctr_j)`` pairs for the throttling computation.

        Ads with zero current probability are omitted (they contribute
        nothing to ``S_l``).
        """
        out: List[Tuple[int, float]] = []
        for ad in self.ads:
            ctr = ad.current_ctr(self.decay, current_round)
            if ctr > 0.0:
                out.append((ad.price_cents, ctr))
        return out

    def max_liability_cents(self, current_round: int) -> int:
        """``ω_l`` -- the worst-case total still owed."""
        return sum(price for price, _ in self.snapshot(current_round))

    def expected_liability_cents(self, current_round: int) -> float:
        """``μ_l = E[S_l]`` -- the expected total still owed."""
        return sum(price * ctr for price, ctr in self.snapshot(current_round))

    def __len__(self) -> int:
        return len(self.ads)
