"""Outstanding ads and click-probability decay.

An *outstanding ad* has been displayed but neither clicked nor expired:
the advertiser may still owe its price ``π_j`` with probability
``ctr_j``.  The paper makes no assumption about ``ctr_j`` but notes it is
reasonable to model it as decreasing with the time since display and
reaching zero after a limit, which lets old outstanding ads be discarded.
Three decay models are provided; all satisfy that contract.

Money is handled in integer *cents* throughout this package: the paper's
exact algorithm is ``O(min(2^l, β))`` "assuming that β is written in the
lowest denomination of currency", and integer arithmetic keeps the DP
exact.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Protocol, Tuple

from repro.errors import BudgetError

__all__ = [
    "ClickDecayModel",
    "NoDecay",
    "GeometricDecay",
    "ExponentialDecay",
    "OutstandingAd",
    "OutstandingLedger",
]


class ClickDecayModel(Protocol):
    """Maps a base click probability and elapsed time to current ``ctr_j``."""

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        """Current probability the outstanding ad still gets clicked."""
        ...

    @property
    def horizon(self) -> int:
        """Rounds after which the probability is exactly zero.

        A horizon lets the ledger discard ads that have received no
        click in a long time, as the paper suggests.
        """
        ...


@dataclass(frozen=True)
class NoDecay:
    """Click probability stays at the base CTR until the horizon."""

    horizon: int = 1_000_000

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        if elapsed_rounds >= self.horizon:
            return 0.0
        return base_ctr


@dataclass(frozen=True)
class GeometricDecay:
    """Each elapsed round multiplies the click probability by ``ratio``."""

    ratio: float = 0.5
    horizon: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise BudgetError(f"decay ratio must be in [0, 1], got {self.ratio}")
        if self.horizon <= 0:
            raise BudgetError("decay horizon must be positive")

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        if elapsed_rounds >= self.horizon:
            return 0.0
        return base_ctr * self.ratio**elapsed_rounds


@dataclass(frozen=True)
class ExponentialDecay:
    """Continuous-rate decay ``exp(-rate * elapsed)`` with a hard horizon."""

    rate: float = 0.3
    horizon: int = 32

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise BudgetError(f"decay rate must be non-negative, got {self.rate}")
        if self.horizon <= 0:
            raise BudgetError("decay horizon must be positive")

    def probability(self, base_ctr: float, elapsed_rounds: int) -> float:
        if elapsed_rounds >= self.horizon:
            return 0.0
        return base_ctr * math.exp(-self.rate * elapsed_rounds)


@dataclass(frozen=True)
class OutstandingAd:
    """One displayed-but-unresolved ad.

    Attributes:
        price_cents: ``π_j`` -- the price (in cents) the advertiser will
            pay if the ad is clicked.
        base_ctr: Click probability at display time.
        displayed_round: Round index when the ad was shown.
        handle: Ledger-assigned identity (``compare=False``: two ads
            with the same price/CTR/round are still *equal as values*;
            the handle exists so settlement can name one of them
            unambiguously).  ``-1`` for ads constructed outside a
            ledger.
    """

    price_cents: int
    base_ctr: float
    displayed_round: int = 0
    handle: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.price_cents < 0:
            raise BudgetError(f"price must be non-negative, got {self.price_cents}")
        if not 0.0 <= self.base_ctr <= 1.0:
            raise BudgetError(f"CTR must be in [0, 1], got {self.base_ctr}")

    def current_ctr(self, decay: ClickDecayModel, current_round: int) -> float:
        """``ctr_j`` given the time elapsed since display."""
        elapsed = max(0, current_round - self.displayed_round)
        return decay.probability(self.base_ctr, elapsed)


class OutstandingLedger:
    """Per-advertiser bookkeeping of outstanding ads.

    Ads live in an insertion-ordered table keyed by a monotonically
    increasing *handle*.  :meth:`record_display` returns the ad carrying
    its handle, and :meth:`resolve_handle` removes exactly that ad in
    O(1) -- the identity settlement needs when an advertiser holds two
    value-equal ads (same price, CTR, and display round) of which only
    one was clicked.  :meth:`resolve` remains for callers holding an ad
    *value*: it prefers the carried handle and falls back to a
    first-equal scan for hand-constructed ads.

    Attributes:
        decay: The click-decay model applied to all ads in the ledger.
    """

    def __init__(self, decay: ClickDecayModel | None = None) -> None:
        self.decay: ClickDecayModel = decay if decay is not None else NoDecay()
        self._ads: "OrderedDict[int, OutstandingAd]" = OrderedDict()
        self._next_handle = 0

    @property
    def ads(self) -> List[OutstandingAd]:
        """The live outstanding ads, oldest first (a fresh list)."""
        return list(self._ads.values())

    def record_display(
        self, price_cents: int, base_ctr: float, round_index: int
    ) -> OutstandingAd:
        """Add a newly displayed ad and return it (carrying its handle)."""
        handle = self._next_handle
        self._next_handle += 1
        ad = OutstandingAd(price_cents, base_ctr, round_index, handle=handle)
        self._ads[handle] = ad
        return ad

    def has_handle(self, handle: int) -> bool:
        """Whether an ad with this identity is still outstanding."""
        return handle in self._ads

    def resolve_handle(self, handle: int) -> OutstandingAd:
        """Remove and return the ad with this identity, in O(1).

        Raises:
            BudgetError: If no outstanding ad has this handle (already
                settled, expired, or never recorded here).
        """
        ad = self._ads.pop(handle, None)
        if ad is None:
            raise BudgetError(
                f"no outstanding ad with handle {handle} in this ledger"
            )
        return ad

    def resolve(self, ad: OutstandingAd) -> None:
        """Remove an ad that was clicked (debt settled) or cancelled.

        An ad returned by :meth:`record_display` resolves by its handle;
        a hand-constructed ad (``handle == -1`` or foreign) falls back
        to removing the first value-equal entry -- ambiguous when
        duplicates exist, which is exactly why the engine threads
        handles instead.
        """
        if ad.handle in self._ads:
            del self._ads[ad.handle]
            return
        for handle, candidate in self._ads.items():
            if candidate == ad:
                del self._ads[handle]
                return
        raise BudgetError("ad is not outstanding in this ledger")

    def prune(self, current_round: int) -> int:
        """Drop ads whose click probability has decayed to zero.

        Returns the number of ads discarded.
        """
        dead = [
            handle
            for handle, ad in self._ads.items()
            if ad.current_ctr(self.decay, current_round) <= 0.0
        ]
        for handle in dead:
            del self._ads[handle]
        return len(dead)

    def snapshot(self, current_round: int) -> List[Tuple[int, float]]:
        """The ``(π_j, ctr_j)`` pairs for the throttling computation.

        Ads with zero current probability are omitted (they contribute
        nothing to ``S_l``).
        """
        out: List[Tuple[int, float]] = []
        for ad in self._ads.values():
            ctr = ad.current_ctr(self.decay, current_round)
            if ctr > 0.0:
                out.append((ad.price_cents, ctr))
        return out

    def max_liability_cents(self, current_round: int) -> int:
        """``ω_l`` -- the worst-case total still owed."""
        return sum(price for price, _ in self.snapshot(current_round))

    def expected_liability_cents(self, current_round: int) -> float:
        """``μ_l = E[S_l]`` -- the expected total still owed."""
        return sum(price * ctr for price, ctr in self.snapshot(current_round))

    def __len__(self) -> int:
        return len(self._ads)
