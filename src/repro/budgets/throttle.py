"""Exact and Monte-Carlo throttled-bid computation (Section IV-A/B).

The throttled bid of advertiser ``i`` taking part in ``m_i`` auctions
this round, with remaining budget ``β_i`` and outstanding debt
``S = sum_j X_j`` (``X_j = π_j`` w.p. ``ctr_j`` else 0), is::

    b̂_i = E[ min(b_i, max(0, β_i - S) / m_i) ]
        = E[ min(m_i b_i, β_i - min(β_i, S)) ] / m_i

Exact computation goes through the distribution of ``min(β_i, S)``:

- **DP over currency units** -- convolve the ads one at a time over the
  value range ``0..β`` (everything at or above ``β`` collapses into one
  saturated bucket), ``O(l·β)`` time;
- **enumeration** -- sum over all ``2^l`` outcomes, preferable when the
  budget is large but few ads are outstanding.

:func:`exact_throttled_bid` picks whichever is cheaper, matching the
paper's ``O(min(2^l, β))`` bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import BudgetError

__all__ = [
    "ThrottleProblem",
    "exact_throttled_bid",
    "throttled_bid_via_dp",
    "throttled_bid_via_enumeration",
    "monte_carlo_throttled_bid",
    "min_beta_s_distribution",
]


@dataclass(frozen=True)
class ThrottleProblem:
    """Inputs to one throttled-bid computation.

    Attributes:
        bid_cents: The advertiser's stated per-click bid ``b_i``.
        budget_cents: Remaining budget ``β_i`` (budget minus settled
            charges; outstanding debts are *not* subtracted here -- they
            are what ``outstanding`` models).
        num_auctions: ``m_i`` -- auctions the advertiser takes part in
            this round.  Must be positive.
        outstanding: ``(π_j, ctr_j)`` pairs for the outstanding ads.
    """

    bid_cents: int
    budget_cents: int
    num_auctions: int
    outstanding: Tuple[Tuple[int, float], ...] = ()

    def __init__(
        self,
        bid_cents: int,
        budget_cents: int,
        num_auctions: int,
        outstanding: Sequence[Tuple[int, float]] = (),
    ) -> None:
        if bid_cents < 0:
            raise BudgetError(f"bid must be non-negative, got {bid_cents}")
        if budget_cents < 0:
            raise BudgetError(f"budget must be non-negative, got {budget_cents}")
        if num_auctions <= 0:
            raise BudgetError(
                f"the advertiser must be in at least one auction, got "
                f"{num_auctions}"
            )
        cleaned: List[Tuple[int, float]] = []
        for price, ctr in outstanding:
            if price < 0:
                raise BudgetError(f"outstanding price must be >= 0, got {price}")
            if not 0.0 <= ctr <= 1.0:
                raise BudgetError(f"outstanding CTR must be in [0, 1], got {ctr}")
            if price > 0 and ctr > 0.0:
                cleaned.append((int(price), float(ctr)))
        object.__setattr__(self, "bid_cents", int(bid_cents))
        object.__setattr__(self, "budget_cents", int(budget_cents))
        object.__setattr__(self, "num_auctions", int(num_auctions))
        object.__setattr__(self, "outstanding", tuple(cleaned))

    @property
    def max_liability(self) -> int:
        """``ω_l`` -- sum of outstanding prices."""
        return sum(price for price, _ in self.outstanding)

    @property
    def expected_liability(self) -> float:
        """``μ_l = E[S_l]``."""
        return sum(price * ctr for price, ctr in self.outstanding)

    def trivially_unthrottled(self) -> bool:
        """The paper's quick test: ``ω_l <= β - m·b`` implies ``b̂ = b``."""
        return (
            self.max_liability
            <= self.budget_cents - self.num_auctions * self.bid_cents
        )


def min_beta_s_distribution(problem: ThrottleProblem) -> Dict[int, float]:
    """Distribution of ``min(β, S)`` via DP over currency units.

    Returns a sparse mapping ``value -> probability``; all mass at or
    above ``β`` is collapsed into the ``β`` bucket, which is why the
    state space stays ``O(β)``.
    """
    beta = problem.budget_cents
    dist: Dict[int, float] = {0: 1.0}
    for price, ctr in problem.outstanding:
        nxt: Dict[int, float] = {}
        for value, probability in dist.items():
            hit = min(beta, value + price)
            nxt[hit] = nxt.get(hit, 0.0) + probability * ctr
            nxt[value] = nxt.get(value, 0.0) + probability * (1.0 - ctr)
        dist = nxt
    return dist


def _value_given_spent(problem: ThrottleProblem, spent: float) -> float:
    """``min(m·b, β - min(β, S)) / m`` for a realized ``S = spent``."""
    headroom = problem.budget_cents - min(problem.budget_cents, spent)
    capped = min(problem.num_auctions * problem.bid_cents, headroom)
    return capped / problem.num_auctions


def throttled_bid_via_dp(problem: ThrottleProblem) -> float:
    """Exact ``b̂`` using the currency-unit DP (``O(l·β)``)."""
    if problem.trivially_unthrottled():
        return float(problem.bid_cents)
    dist = min_beta_s_distribution(problem)
    return sum(
        probability * _value_given_spent(problem, value)
        for value, probability in dist.items()
    )


def throttled_bid_via_enumeration(problem: ThrottleProblem) -> float:
    """Exact ``b̂`` by enumerating all ``2^l`` click outcomes."""
    if problem.trivially_unthrottled():
        return float(problem.bid_cents)
    ads = problem.outstanding
    total = 0.0
    for mask in range(1 << len(ads)):
        probability = 1.0
        spent = 0
        for index, (price, ctr) in enumerate(ads):
            if mask >> index & 1:
                probability *= ctr
                spent += price
            else:
                probability *= 1.0 - ctr
        total += probability * _value_given_spent(problem, spent)
    return total


def exact_throttled_bid(problem: ThrottleProblem) -> float:
    """Exact ``b̂``, choosing the cheaper of DP and enumeration.

    The paper's ``O(min(2^l, β))``: enumeration wins for few outstanding
    ads with huge budgets; the DP wins otherwise.
    """
    ads = len(problem.outstanding)
    if ads <= 16 and (1 << ads) <= max(4, problem.budget_cents):
        return throttled_bid_via_enumeration(problem)
    return throttled_bid_via_dp(problem)


def monte_carlo_throttled_bid(
    problem: ThrottleProblem, samples: int, rng: random.Random
) -> float:
    """Monte-Carlo estimate of ``b̂`` (used by property tests as an oracle)."""
    if samples <= 0:
        raise BudgetError(f"samples must be positive, got {samples}")
    total = 0.0
    for _ in range(samples):
        spent = 0
        for price, ctr in problem.outstanding:
            if rng.random() < ctr:
                spent += price
        total += _value_given_spent(problem, spent)
    return total / samples
