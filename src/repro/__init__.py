"""Reproduction of *Shared Winner Determination in Sponsored Search Auctions*.

This package reimplements the system described by Martin and Halpern
(ICDE 2009).  It provides:

- :mod:`repro.core` -- the sponsored-search auction substrate: advertisers,
  bid phrases, click-through-rate models, single-auction winner
  determination (separable and non-separable), pricing rules, and the
  top-k merge operator that the sharing machinery aggregates with.
- :mod:`repro.algebra` -- the abstract-aggregation-operator framework of
  Sections II-C and VII: expressions over an abstract binary operator, the
  axioms A1-A5, equivalence checking, and classification of algebraic
  structures (Fig. 5 of the paper).
- :mod:`repro.plans` -- shared top-k aggregation plans (Section II): the
  plan DAG, the expected-materialization cost model, fragment
  identification, greedy set cover, the paper's two-stage greedy planner,
  baseline planners, an exhaustive optimal planner for small instances, the
  Theorem 2/3 set-cover reductions, and a plan executor.
- :mod:`repro.sharedsort` -- shared sorting (Section III): the threshold
  algorithm, on-demand merge operators with caching, and the greedy shared
  merge-sort plan builder.
- :mod:`repro.budgets` -- budget uncertainty (Section IV): outstanding-ad
  models, exact and bounded throttled-bid computation, the Hoeffding bound
  refinement engine, bound-driven top-k, and the gaming-attack simulation.
- :mod:`repro.engine` -- a round-based auction engine tying everything
  together: query batching, shared winner determination, budget
  management, and a delayed-click process.
- :mod:`repro.workloads` -- synthetic workload generators standing in for
  proprietary search/bid logs (see DESIGN.md for the substitution notes).
- :mod:`repro.metrics` -- operation counters and experiment-table helpers
  used by the benchmark harness.
"""

from repro.core.advertiser import Advertiser, BidPhrase
from repro.core.auction import Allocation, AuctionOutcome, AuctionSpec
from repro.core.ctr import MatrixCTRModel, SeparableCTRModel
from repro.core.pricing import (
    FirstPrice,
    GeneralizedSecondPrice,
    LadderedVCG,
    PricingRule,
)
from repro.core.topk import TopKList, top_k_merge
from repro.core.winner_determination import (
    determine_winners,
    determine_winners_nonseparable,
    determine_winners_separable,
)

__all__ = [
    "Advertiser",
    "Allocation",
    "AuctionOutcome",
    "AuctionSpec",
    "BidPhrase",
    "FirstPrice",
    "GeneralizedSecondPrice",
    "LadderedVCG",
    "MatrixCTRModel",
    "PricingRule",
    "SeparableCTRModel",
    "TopKList",
    "determine_winners",
    "determine_winners_nonseparable",
    "determine_winners_separable",
    "top_k_merge",
]

__version__ = "0.1.0"
