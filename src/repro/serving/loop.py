"""The query-at-a-time serving loop.

:class:`ServingEngine` drives a :class:`repro.engine.SharedAuctionEngine`
the way live search traffic would: queries arrive one at a time from a
seeded :class:`repro.serving.traffic.TrafficGenerator`, each query
triggers winner determination for *just its phrase* through
:meth:`SharedAuctionEngine.serve_query`, and clicks/budget events stream
back through the engine's :class:`repro.engine.changefeed.ChangeFeed`
asynchronously relative to query processing -- a click settles some
ticks after the display that earned it, and whichever cross-round cache
is attached (:class:`repro.plans.executor.CrossRoundPlanExecutor` or
:class:`repro.sharedsort.cache.CrossRoundSortCache`) drains the
resulting events at its next per-query drain.  The batch engine's
cross-round caches are thereby the serving engine's *steady-state*
caches: between consecutive queries almost nothing moves, so the dirty
cone per query is tiny and reuse dominates.

Equivalence contract: serving a trace is outcome-identical -- winners,
prices, clicks, and the full budget trajectory -- to replaying the same
trace through the batch engine as single-phrase rounds
(:func:`repro.engine.rounds.singleton_rounds` is that replay's
vocabulary), with and without the caches.  The 50-seed differential
suite in ``tests/serving`` enforces this; the serving loop changes
*when* work happens and *how much* of it there is, never the auction's
outcomes.

Latency is recorded per query into an exact
:class:`repro.serving.latency.LatencyRecorder`; the session's p50/p99
and sustained QPS surface as ``serve.*`` gauges, while everything
counted (``serve.queries`` and all engine/plan/sort counters) stays
deterministic for a fixed configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.changefeed import QueryServed
from repro.engine.pipeline import RoundReport, SharedAuctionEngine
from repro.errors import InvalidAuctionError
from repro.instrument import Collector, names as metric_names
from repro.serving.latency import LatencyRecorder, LatencySummary
from repro.serving.traffic import QueryArrival, TrafficGenerator

__all__ = ["ServingEngine", "ServingReport", "QueryReport"]


@dataclass(frozen=True)
class QueryReport:
    """Outcome and timing of one served query.

    Attributes:
        query_index: Arrival order in the trace.
        tick: The engine tick (round index) that served the query.
        phrase: The query's bid phrase.
        arrival_time: The trace-clock arrival time in seconds.
        allocation: Displayed ads as ``(slot, advertiser_id,
            price_cents)`` triples in slot order -- same shape as
            :attr:`repro.engine.pipeline.RoundReport.allocations`
            values, so differential tests compare them directly.
        revenue_cents: Click payments settled during the tick.
        forgiven_cents: Click value forgiven during the tick.
        clicks: Clicks that arrived during the tick.
        displays: Ads displayed for this query.
        latency_seconds: Wall time spent resolving the query.
    """

    query_index: int
    tick: int
    phrase: str
    arrival_time: float
    allocation: Tuple[Tuple[int, int, int], ...]
    revenue_cents: int
    forgiven_cents: int
    clicks: int
    displays: int
    latency_seconds: float


@dataclass
class ServingReport:
    """Aggregate outcome of one serving session.

    Attributes:
        queries: Queries served.
        displays: Ads displayed.
        clicks: Clicks settled (including the end-of-session flush).
        revenue_cents: Click payments collected (including the flush).
        forgiven_cents: Click value forgiven (including the flush).
        latency: Exact percentile/throughput summary of the session.
        history: Per-query reports, in arrival order (empty when the
            session ran with ``keep_history=False``).
        counters: Cumulative counter increments over the session when
            the engine ran with an enabled collector, ``None`` otherwise.
    """

    queries: int = 0
    displays: int = 0
    clicks: int = 0
    revenue_cents: int = 0
    forgiven_cents: int = 0
    latency: LatencySummary = field(
        default_factory=lambda: LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
    )
    history: List[QueryReport] = field(default_factory=list)
    counters: Optional[Dict[str, int]] = None


class ServingEngine:
    """Serves seeded query traffic through a shared auction engine.

    Args:
        engine: The auction engine to drive.  Any mode and cache
            configuration works; with ``exec_cache``/``sort_cache`` the
            cross-round caches become the steady-state serving caches
            and drain the change feed once per query.
        traffic: The arrival source.  Its phrase universe must be a
            subset of the engine's bid phrases (checked up front --
            a serving session must not die mid-trace on a typo).
        keep_history: Keep a :class:`QueryReport` per query on the
            session report.  Differential tests need the history; long
            benchmark sessions can turn it off to bound memory.
        clock: Monotonic time source used for latency measurement
            (injectable for deterministic tests); defaults to
            :func:`time.perf_counter`.

    Attributes:
        engine: The driven engine.
        traffic: The arrival source.
        latency: The session's :class:`LatencyRecorder`.
        queries_served: Queries resolved so far across all ``serve_*``
            calls.
    """

    def __init__(
        self,
        engine: SharedAuctionEngine,
        traffic: TrafficGenerator,
        keep_history: bool = True,
        clock=time.perf_counter,
    ) -> None:
        unknown = sorted(
            set(traffic.phrases) - set(engine.phrase_advertisers)
        )
        if unknown:
            raise InvalidAuctionError(
                f"traffic phrases unknown to the engine: {unknown!r}"
            )
        self.engine = engine
        self.traffic = traffic
        self.keep_history = keep_history
        self.latency = LatencyRecorder()
        self.queries_served = 0
        self._clock = clock

    @property
    def collector(self) -> Collector:
        """The engine's collector (the loop never has its own)."""
        return self.engine.collector

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_one(self, arrival: QueryArrival) -> QueryReport:
        """Resolve one arrival end to end and record its latency."""
        engine = self.engine
        collector = self.collector
        started = self._clock()
        with collector.timer(metric_names.SERVE_QUERY_TIMER):
            round_report: RoundReport = engine.serve_query(arrival.phrase)
        elapsed = max(0.0, self._clock() - started)
        self.latency.record(elapsed)
        self.queries_served += 1
        collector.incr(metric_names.SERVE_QUERIES)
        if engine.changefeed.active:
            engine.changefeed.publish(
                QueryServed(arrival.index, arrival.phrase)
            )
        return QueryReport(
            query_index=arrival.index,
            tick=round_report.round_index,
            phrase=arrival.phrase,
            arrival_time=arrival.arrival_time,
            allocation=round_report.allocations[arrival.phrase],
            revenue_cents=round_report.revenue_cents,
            forgiven_cents=round_report.forgiven_cents,
            clicks=round_report.clicks,
            displays=round_report.displays,
            latency_seconds=elapsed,
        )

    def run(self, num_queries: int) -> ServingReport:
        """Serve ``num_queries`` arrivals, then settle pending clicks.

        Returns:
            The session report: money/click totals (flush included),
            the exact latency summary, per-query history (when kept),
            and -- with an enabled collector -- the session's cumulative
            counter deltas.
        """
        if num_queries < 0:
            raise InvalidAuctionError(
                f"num_queries must be >= 0, got {num_queries}"
            )
        collector = self.collector
        snapshot = collector.snapshot() if collector.enabled else None
        report = ServingReport()
        for arrival in self.traffic.take(num_queries):
            query_report = self.serve_one(arrival)
            report.queries += 1
            report.displays += query_report.displays
            report.clicks += query_report.clicks
            report.revenue_cents += query_report.revenue_cents
            report.forgiven_cents += query_report.forgiven_cents
            if self.keep_history:
                report.history.append(query_report)
        revenue, forgiven, clicks = self.engine.settle_remaining_clicks()
        report.revenue_cents += revenue
        report.forgiven_cents += forgiven
        report.clicks += clicks
        report.latency = self.flush_latency()
        if snapshot is not None:
            report.counters = collector.delta_since(snapshot)
        return report

    def flush_latency(self) -> LatencySummary:
        """Summarize recorded latencies and flush the ``serve.*`` gauges.

        Wall-derived figures go to *gauges* only; counters must stay
        identical across identical runs (the determinism test's
        contract).
        """
        summary = self.latency.summary()
        collector = self.collector
        if collector.enabled and summary.count:
            collector.gauge(
                metric_names.SERVE_P50_MS, summary.p50_seconds * 1000.0
            )
            collector.gauge(
                metric_names.SERVE_P99_MS, summary.p99_seconds * 1000.0
            )
            collector.gauge(metric_names.SERVE_QPS, summary.qps)
        return summary
