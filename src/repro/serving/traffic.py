"""Seeded query traffic for the serving engine.

The batch engine samples each phrase independently per round from its
``sr_q`` search rate (Section II-B).  The serving regime needs the same
popularity structure expressed as *traffic*: individual queries arriving
one at a time.  :class:`TrafficGenerator` makes the paper's search rates
concrete as a marked Poisson process -- exponential inter-arrival gaps
at a configured rate, each arrival marked with a phrase drawn from a
Zipf popularity law over the phrase list (rank 1 = most popular), built
on the seeded distribution helpers in
:mod:`repro.workloads.distributions`.

Determinism contract: the whole trace is a pure function of
``(phrases, rate_qps, zipf_exponent, seed)``.  Every draw flows from one
``random.Random(seed)`` in a fixed order (gap, then phrase, per query),
so two generators with equal parameters yield identical arrival
sequences on any platform and ``PYTHONHASHSEED`` -- the property suite
asserts exactly this, plus the Zipf-rank monotonicity of empirical
phrase frequencies and the mean-consistency of the gaps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Sequence

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    cumulative_weights,
    exponential_interarrival,
    sample_rank,
    zipf_weights,
)

__all__ = ["QueryArrival", "TrafficGenerator"]


@dataclass(frozen=True)
class QueryArrival:
    """One query of the serving trace.

    Attributes:
        index: 0-based arrival order.
        arrival_time: Seconds since the trace started (non-decreasing).
        phrase: The bid phrase the query resolved to (query-to-phrase
            rewriting happens upstream, as in
            :mod:`repro.engine.rounds`).
    """

    index: int
    arrival_time: float
    phrase: str


class TrafficGenerator:
    """An endless seeded stream of :class:`QueryArrival` objects.

    Args:
        phrases: The phrase universe in *popularity-rank order*: the
            first phrase gets Zipf rank 1 (most traffic).  Must be
            non-empty.
        rate_qps: Mean arrival rate of the Poisson process, queries per
            second.  Must be positive.
        zipf_exponent: Popularity skew; 0 makes every phrase equally
            likely.  Must be >= 0 (validated by
            :func:`repro.workloads.distributions.zipf_weights`).
        seed: Seed of the single ``random.Random`` behind the trace.

    Attributes:
        phrases: The phrase universe, rank order, as a tuple.
        weights: The normalized per-rank popularity weights (monotone
            non-increasing by construction).
        generated: Queries produced so far across all iterators.
    """

    def __init__(
        self,
        phrases: Sequence[str],
        rate_qps: float,
        zipf_exponent: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.phrases = tuple(phrases)
        if not self.phrases:
            raise WorkloadError("traffic needs at least one phrase")
        if len(set(self.phrases)) != len(self.phrases):
            raise WorkloadError("traffic phrases must be distinct")
        if rate_qps <= 0.0:
            raise WorkloadError(
                f"arrival rate must be positive, got {rate_qps}"
            )
        self.rate_qps = float(rate_qps)
        self.zipf_exponent = float(zipf_exponent)
        self.seed = seed
        self.weights = tuple(zipf_weights(len(self.phrases), zipf_exponent))
        self._cumulative = cumulative_weights(self.weights)
        self._rng = random.Random(seed)
        self._clock = 0.0
        self.generated = 0

    @classmethod
    def from_search_rates(
        cls,
        search_rates: Mapping[str, float],
        rate_qps: float,
        zipf_exponent: float = 1.0,
        seed: int = 0,
    ) -> "TrafficGenerator":
        """Rank phrases by their batch-engine search rate.

        The paper's ``sr_q`` already encodes relative popularity; this
        constructor orders the phrase universe by descending search rate
        (ties broken by phrase text for determinism) and lays the Zipf
        law over that ranking -- the serving-shaped reading of the same
        popularity structure.
        """
        ranked = sorted(search_rates, key=lambda p: (-search_rates[p], p))
        return cls(ranked, rate_qps, zipf_exponent, seed)

    def __iter__(self) -> Iterator[QueryArrival]:
        """Yield arrivals forever; use :meth:`take` for a finite trace."""
        while True:
            yield self._next()

    def _next(self) -> QueryArrival:
        # Fixed draw order -- gap first, phrase second -- is part of the
        # determinism contract; reordering would silently change traces.
        self._clock += exponential_interarrival(self._rng, self.rate_qps)
        rank = sample_rank(self._rng, self._cumulative)
        arrival = QueryArrival(self.generated, self._clock, self.phrases[rank])
        self.generated += 1
        return arrival

    def take(self, count: int) -> List[QueryArrival]:
        """The next ``count`` arrivals as a list (consumes the stream)."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [self._next() for _ in range(count)]
