"""Exact per-query latency accounting for the serving loop.

Serving quality is a tail-latency question: user studies tolerate median
latencies up to ~2.2 s (Section II-B), but a p99 stall is what pages an
on-call.  :class:`LatencyRecorder` keeps every recorded sample and
computes *exact* nearest-rank percentiles -- no streaming sketch, no
interpolation -- so the unit suite can pin the arithmetic against a
sorted-list oracle, including the n=1 and all-ties edge cases.  Serving
sessions are bounded (a benchmark run, a trace replay), so holding the
samples is cheap and exactness is free.

Wall-clock samples are machine-dependent by nature; everything *derived*
from the recorder lands in collector gauges (``serve.p50_ms`` /
``serve.p99_ms`` / ``serve.qps``), never counters, so the serving
counter-determinism test stays meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import InvalidAuctionError

__all__ = ["LatencyRecorder", "LatencySummary", "nearest_rank_percentile"]


def nearest_rank_percentile(sorted_samples: List[float], p: float) -> float:
    """The exact nearest-rank percentile of pre-sorted samples.

    ``p`` in ``(0, 100]`` selects the ``ceil(p/100 * n)``-th smallest
    sample (1-based) -- the classical nearest-rank definition, which is
    always an actual sample: p50 of ``[a]`` is ``a``, p99 of two samples
    is the larger one.

    Raises:
        InvalidAuctionError: On an empty sample list or ``p`` outside
            ``(0, 100]``.
    """
    if not sorted_samples:
        raise InvalidAuctionError("no samples recorded")
    if not 0.0 < p <= 100.0:
        raise InvalidAuctionError(f"percentile must be in (0, 100], got {p}")
    rank = math.ceil(p / 100.0 * len(sorted_samples))
    return sorted_samples[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Frozen percentile/throughput view of one serving session.

    Attributes:
        count: Queries recorded.
        total_seconds: Sum of per-query wall times (the busy time).
        p50_seconds: Exact nearest-rank median.
        p99_seconds: Exact nearest-rank 99th percentile.
        qps: Sustained service throughput ``count / total_seconds`` --
            how many queries per second the engine resolves while busy
            (0.0 when nothing was recorded or the clock read zero).
    """

    count: int
    total_seconds: float
    p50_seconds: float
    p99_seconds: float
    qps: float


class LatencyRecorder:
    """Collects per-query wall times and reports exact percentiles.

    Attributes:
        count: Samples recorded so far.
        total_seconds: Sum of recorded samples.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self.total_seconds = 0.0

    @property
    def count(self) -> int:
        """Samples recorded so far."""
        return len(self._samples)

    def record(self, seconds: float) -> None:
        """Record one query's wall time (must be non-negative)."""
        if seconds < 0.0:
            raise InvalidAuctionError(
                f"latency must be non-negative, got {seconds}"
            )
        self._samples.append(seconds)
        self.total_seconds += seconds

    def percentile(self, p: float) -> float:
        """The exact nearest-rank ``p``-th percentile of all samples."""
        return nearest_rank_percentile(sorted(self._samples), p)

    def summary(self) -> LatencySummary:
        """Snapshot the session: count, busy time, p50/p99, sustained QPS.

        One sort serves both percentiles; the recorder stays usable
        (and re-summarizable) afterwards.
        """
        if not self._samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(self._samples)
        qps = (
            len(ordered) / self.total_seconds if self.total_seconds > 0 else 0.0
        )
        return LatencySummary(
            count=len(ordered),
            total_seconds=self.total_seconds,
            p50_seconds=nearest_rank_percentile(ordered, 50.0),
            p99_seconds=nearest_rank_percentile(ordered, 99.0),
            qps=qps,
        )
