"""Query-at-a-time serving on top of the shared winner-determination core.

The batch engine (:mod:`repro.engine`) amortizes winner determination
across co-occurring phrases in synchronous rounds; this package serves
the same auctions the way live traffic asks for them -- one query at a
time, with click and budget events streaming back asynchronously over
the change feed and the cross-round caches acting as steady-state
serving caches:

- :mod:`repro.serving.traffic` -- seeded Poisson/Zipf query traffic
  (the paper's ``sr_q`` search rates made concrete);
- :mod:`repro.serving.latency` -- exact nearest-rank p50/p99 latency
  accounting and sustained-QPS summaries;
- :mod:`repro.serving.loop` -- the serving loop itself, provably
  outcome-equivalent to single-phrase batch rounds (the 50-seed
  differential suite in ``tests/serving`` is the proof obligation).
"""

from repro.serving.latency import (
    LatencyRecorder,
    LatencySummary,
    nearest_rank_percentile,
)
from repro.serving.loop import QueryReport, ServingEngine, ServingReport
from repro.serving.traffic import QueryArrival, TrafficGenerator

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "QueryArrival",
    "QueryReport",
    "ServingEngine",
    "ServingReport",
    "TrafficGenerator",
    "nearest_rank_percentile",
]
