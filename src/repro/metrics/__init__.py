"""Operation counters and experiment-table helpers.

The library avoids wall-clock assertions in tests: algorithms expose
operation counters (merges, scans, sorted/random accesses, bound
expansions) and the benchmark harness renders them -- alongside real
timings from pytest-benchmark -- as the tables and series the paper
reports.
"""

from repro.metrics.tables import ExperimentTable, format_table

__all__ = ["ExperimentTable", "format_table"]
