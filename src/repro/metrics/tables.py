"""Plain-text experiment tables and counter-driven work columns.

Benchmarks print their series in a fixed-width format so the
bench_output log doubles as the reproduction record referenced from
EXPERIMENTS.md.  :func:`counter_table` and :func:`work_columns` turn a
:class:`repro.instrument.MetricsCollector` into the paper's Figure 4/5
style work accounting directly, so benchmarks report measured counters
instead of ad-hoc tallies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.instrument import MetricsCollector

__all__ = [
    "ExperimentTable",
    "format_table",
    "counter_table",
    "work_columns",
    "planner_stats_line",
    "WORK_COLUMN_NAMES",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned fixed-width table.

    Floats are shown with four significant decimals; everything else via
    ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(v.rjust(widths[i]) for i, v in enumerate(row))
        for row in text_rows
    ]
    return "\n".join([line, separator, *body])


@dataclass
class ExperimentTable:
    """An accumulating table with a title, printed at the end of a bench.

    Attributes:
        title: Experiment identifier, e.g. ``"Fig.4: expected plan cost"``.
        headers: Column names.
        rows: Accumulated rows.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        """Append one row."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} columns, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        """The table as printable text, preceded by its title."""
        return f"\n== {self.title} ==\n" + format_table(self.headers, self.rows)

    def show(self) -> None:
        """Print the table (used at the end of each benchmark module)."""
        print(self.render())


def counter_table(
    collector: "MetricsCollector",
    title: str = "Work counters",
    prefixes: Sequence[str] = (),
) -> ExperimentTable:
    """A two-column ``counter / value`` table from a collector.

    Args:
        collector: An enabled :class:`repro.instrument.MetricsCollector`.
        title: Table title.
        prefixes: Keep only counters whose name starts with one of these
            (e.g. ``("plan.", "ta.")``); empty keeps everything.

    Returns:
        The table, sorted by counter name.
    """
    table = ExperimentTable(title, ["counter", "value"])
    for name in sorted(collector.counters):
        if prefixes and not any(name.startswith(p) for p in prefixes):
            continue
        table.add(name, collector.counters[name])
    return table


WORK_COLUMN_NAMES: Tuple[str, ...] = (
    "nodes",
    "merges",
    "leaf scans",
    "scan entries",
    "operator pulls",
    "sorted accesses",
    "reused",
)
"""Headers matching :func:`work_columns`, mode-agnostic.

``nodes``/``merges``/``leaf scans`` carry Section II shared-plan work,
``scan entries`` the unshared baseline, ``operator pulls``/``sorted
accesses`` the Section III shared-sort pipeline, and ``reused`` the
cross-round cache's amortized nodes (nonzero only with ``--exec-cache``);
counters a mode does not touch render as 0, so rows from different
engine modes line up in one table (the Fig. 4/5 presentation).
"""


def work_columns(collector: "MetricsCollector") -> Tuple[int, ...]:
    """The canonical work columns of one run, from counters alone.

    Pairs with :data:`WORK_COLUMN_NAMES`; append these to a row alongside
    the experiment's own parameters.
    """
    from repro.instrument import names

    return (
        collector.counter(names.PLAN_NODES),
        collector.counter(names.PLAN_MERGES),
        collector.counter(names.PLAN_LEAF_SCANS),
        collector.counter(names.TOPK_SCAN_ENTRIES),
        collector.counter(names.SORT_OPERATOR_PULLS),
        collector.counter(names.TA_SORTED_ACCESSES),
        collector.counter(names.PLAN_NODES_REUSED),
    )


def planner_stats_line(collector: "MetricsCollector") -> str:
    """One-line summary of the greedy planner's own work counters.

    Reports the Section II-D planning effort (pair scorings and greedy
    cover runs) separately from the execution work columns, plus how
    much of it the lazy engine avoided (heap reuse and cover memo hits).
    """
    from repro.instrument import names

    scored = collector.counter(names.PLAN_PAIRS_SCORED)
    skipped = collector.counter(names.PLAN_PAIRS_SKIPPED_LAZY)
    covers = collector.counter(names.PLAN_COVERS_COMPUTED)
    memo_hits = collector.counter(names.PLAN_COVERS_MEMO_HITS)
    return (
        f"planner: pairs_scored={scored} pairs_skipped_lazy={skipped} "
        f"covers_computed={covers} covers_memo_hits={memo_hits}"
    )
