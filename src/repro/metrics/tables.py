"""Plain-text experiment tables.

Benchmarks print their series in a fixed-width format so the
bench_output log doubles as the reproduction record referenced from
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["ExperimentTable", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned fixed-width table.

    Floats are shown with four significant decimals; everything else via
    ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(v.rjust(widths[i]) for i, v in enumerate(row))
        for row in text_rows
    ]
    return "\n".join([line, separator, *body])


@dataclass
class ExperimentTable:
    """An accumulating table with a title, printed at the end of a bench.

    Attributes:
        title: Experiment identifier, e.g. ``"Fig.4: expected plan cost"``.
        headers: Column names.
        rows: Accumulated rows.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        """Append one row."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} columns, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        """The table as printable text, preceded by its title."""
        return f"\n== {self.title} ==\n" + format_table(self.headers, self.rows)

    def show(self) -> None:
        """Print the table (used at the end of each benchmark module)."""
        print(self.render())
