"""Running bidding strategies against the shared auction engine.

:class:`BiddingWar` wires strategies to advertisers on a single phrase
and replays rounds: each round the engine resolves the auction on the
*current* bids through a shared plan (bids change, the plan does not --
exactly the paper's setting), then every strategy observes the outcome
and posts its next bid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bidding.strategies import BiddingStrategy, RoundObservation
from repro.core.advertiser import Advertiser
from repro.core.ctr import SeparableCTRModel
from repro.core.topk import ScoredAdvertiser, top_k_scan
from repro.errors import InvalidAuctionError
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance

__all__ = ["BidTrace", "BiddingWar"]


@dataclass
class BidTrace:
    """Per-advertiser time series collected by a bidding war.

    Attributes:
        bids: Bid used each round.
        slots: Slot won each round (``None`` when losing).
        spend: Cumulative expected spend (price x CTR accrual).
    """

    bids: List[float] = field(default_factory=list)
    slots: List[Optional[int]] = field(default_factory=list)
    spend: List[float] = field(default_factory=list)


class BiddingWar:
    """Strategies competing on one phrase over many rounds.

    Args:
        strategies: ``{advertiser_id: strategy}``.
        initial_bids: Starting bid per advertiser.
        ctr_factors: ``c_i`` per advertiser.
        slot_factors: The page's slot factors (defines ``k``).
        rounds: Number of rounds the war will run (strategies use it for
            pacing).

    The war charges *expected* first-price spend (``bid x ctr`` per win)
    rather than simulating clicks: bid dynamics are the object of study
    here and click noise would only obscure them.
    """

    def __init__(
        self,
        strategies: Mapping[int, BiddingStrategy],
        initial_bids: Mapping[int, float],
        ctr_factors: Mapping[int, float],
        slot_factors: Sequence[float],
        rounds: int,
    ) -> None:
        if set(strategies) != set(initial_bids) or set(strategies) != set(
            ctr_factors
        ):
            raise InvalidAuctionError(
                "strategies, initial bids, and CTR factors must cover the "
                "same advertisers"
            )
        if rounds <= 0:
            raise InvalidAuctionError("a bidding war needs at least one round")
        self.strategies = dict(strategies)
        self.bids: Dict[int, float] = {
            advertiser_id: float(bid) for advertiser_id, bid in initial_bids.items()
        }
        self.model = SeparableCTRModel(dict(ctr_factors), slot_factors)
        self.rounds = rounds
        self.traces: Dict[int, BidTrace] = {
            advertiser_id: BidTrace() for advertiser_id in strategies
        }
        self._spend: Dict[int, float] = {a: 0.0 for a in strategies}
        # One-phrase instance so the war exercises the shared machinery
        # end to end (plan built once, bids re-bound every round).
        instance = SharedAggregationInstance(
            [AggregateQuery("war", list(strategies), 1.0)]
        )
        self._executor = PlanExecutor(
            greedy_shared_plan(instance), self.model.num_slots
        )

    def run(self) -> Dict[int, BidTrace]:
        """Run all rounds; returns the per-advertiser traces."""
        k = self.model.num_slots
        for round_index in range(self.rounds):
            scores = {
                advertiser_id: bid
                * self.model.advertiser_factor(advertiser_id)
                for advertiser_id, bid in self.bids.items()
            }
            ranking = self._executor.run_round(scores).answers["war"]
            slot_of: Dict[int, int] = {
                entry.advertiser_id: slot
                for slot, entry in enumerate(ranking.entries[:k])
            }
            for advertiser_id, strategy in self.strategies.items():
                slot = slot_of.get(advertiser_id)
                if slot is not None:
                    ctr = self.model.ctr(advertiser_id, slot)
                    self._spend[advertiser_id] += (
                        self.bids[advertiser_id] * ctr
                    )
                trace = self.traces[advertiser_id]
                trace.bids.append(self.bids[advertiser_id])
                trace.slots.append(slot)
                trace.spend.append(self._spend[advertiser_id])
            # Strategies observe and re-bid (the "rapidly changing
            # variables" of Section II-C).
            new_bids: Dict[int, float] = {}
            for advertiser_id, strategy in self.strategies.items():
                observation = RoundObservation(
                    round_index=round_index,
                    my_slot=slot_of.get(advertiser_id),
                    ranking=ranking.advertiser_ids(),
                    my_bid=self.bids[advertiser_id],
                    my_spend=self._spend[advertiser_id],
                    rounds_remaining=self.rounds - round_index - 1,
                )
                bid = strategy.next_bid(observation)
                if bid < 0.0:
                    raise InvalidAuctionError(
                        f"strategy for advertiser {advertiser_id} returned a "
                        f"negative bid {bid}"
                    )
                new_bids[advertiser_id] = bid
            self.bids = new_bids
        return self.traces
