"""Bidding strategies: how advertisers adjust bids between rounds.

Each strategy sees a :class:`RoundObservation` -- what the advertiser
could observe about the previous round (its own slot, the public ranking
of scores, its spend so far) -- and returns the next bid.  Strategies
never see competitors' private bids directly, only the realized ranking,
matching what a search-engine optimizer could scrape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Protocol, Sequence, Tuple

from repro.errors import InvalidAuctionError

__all__ = [
    "RoundObservation",
    "BiddingStrategy",
    "StaticBid",
    "TargetSlot",
    "OutbidCompetitor",
    "BudgetPacing",
]


@dataclass(frozen=True)
class RoundObservation:
    """What one advertiser observes after a round.

    Attributes:
        round_index: The round just resolved.
        my_slot: Slot the advertiser won (0-indexed), or ``None``.
        ranking: The public ranking for the phrase: advertiser ids in
            score order (may be truncated to what the page shows).
        my_bid: The bid the advertiser used this round.
        my_spend: Cumulative settled spend.
        rounds_remaining: Rounds left in the day, for pacing.
    """

    round_index: int
    my_slot: Optional[int]
    ranking: Tuple[int, ...]
    my_bid: float
    my_spend: float
    rounds_remaining: int


class BiddingStrategy(Protocol):
    """Decides the next round's bid from the latest observation."""

    def next_bid(self, observation: RoundObservation) -> float:
        """Return the bid for the next round (non-negative)."""
        ...


@dataclass
class StaticBid:
    """Always bid the same amount -- the control strategy."""

    bid: float

    def next_bid(self, observation: RoundObservation) -> float:
        return self.bid


@dataclass
class TargetSlot:
    """Stay in a given slot: raise when below it, shave when above it.

    Mirrors the "staying in a given slot" goal.  Additive-increase /
    multiplicative-decrease keeps the dynamics stable.

    Attributes:
        slot: Desired slot (0-indexed; 0 is the top slot).
        step: Additive raise applied when ranked below the target.
        shave: Multiplicative factor (< 1) applied when ranked above the
            target (winning too high a slot wastes money).
        max_bid: Hard cap.
    """

    slot: int
    step: float = 0.05
    shave: float = 0.97
    max_bid: float = 50.0

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise InvalidAuctionError("target slot must be non-negative")
        if not 0.0 < self.shave <= 1.0:
            raise InvalidAuctionError("shave factor must be in (0, 1]")

    def next_bid(self, observation: RoundObservation) -> float:
        bid = observation.my_bid
        if observation.my_slot is None or observation.my_slot > self.slot:
            bid += self.step
        elif observation.my_slot < self.slot:
            bid *= self.shave
        return min(self.max_bid, max(0.0, bid))


@dataclass
class OutbidCompetitor:
    """Stay ranked above a specific competitor.

    The "staying a certain number of slots above a competitor" goal with
    distance 1: if the competitor ranks at or above us, raise; otherwise
    drift down to save money.
    """

    competitor_id: int
    step: float = 0.05
    shave: float = 0.99
    max_bid: float = 50.0

    def next_bid(self, observation: RoundObservation) -> float:
        bid = observation.my_bid
        ranking = observation.ranking
        try:
            competitor_rank = ranking.index(self.competitor_id)
        except ValueError:
            competitor_rank = None
        my_rank = (
            observation.my_slot
            if observation.my_slot is not None
            else len(ranking)
        )
        if competitor_rank is not None and competitor_rank <= my_rank:
            bid += self.step
        else:
            bid *= self.shave
        return min(self.max_bid, max(0.0, bid))


@dataclass
class BudgetPacing:
    """Spend the daily budget smoothly across the remaining rounds.

    The "dividing one's budget across keywords / the day" goal: bid
    proportionally to the per-round budget slice still available, capped
    by a valuation.  Under-spending raises the bid, over-spending cools
    it down.
    """

    daily_budget: float
    valuation: float
    aggressiveness: float = 1.0

    def __post_init__(self) -> None:
        if self.daily_budget < 0 or self.valuation < 0:
            raise InvalidAuctionError("budget and valuation must be >= 0")

    def next_bid(self, observation: RoundObservation) -> float:
        remaining_budget = max(0.0, self.daily_budget - observation.my_spend)
        remaining_rounds = max(1, observation.rounds_remaining)
        slice_per_round = remaining_budget / remaining_rounds
        return min(self.valuation, self.aggressiveness * slice_per_round)
