"""Automated bidding programs (the dynamics motivating per-round plans).

Section II-C: "the values of the variables change rapidly since
advertisers are constantly updating their bids using external search
engine optimizers or automated bidding programs ... to achieve complex
advertising goals such as staying in a given slot during specific hours
of the day, staying a certain number of slots above a competitor,
dividing one's budget across a set of keywords so as to maximize the
return-on-investment".

This package implements those strategies as
:class:`~repro.bidding.strategies.BiddingStrategy` objects that observe
each round's outcome and adjust the advertiser's next-round bid, plus a
:class:`~repro.bidding.runner.BiddingWar` harness that runs strategies
inside the auction engine -- demonstrating why shared plans are built
over advertiser *identities* and re-evaluated on fresh bids every round.
"""

from repro.bidding.runner import BiddingWar, BidTrace
from repro.bidding.strategies import (
    BiddingStrategy,
    BudgetPacing,
    OutbidCompetitor,
    StaticBid,
    TargetSlot,
)

__all__ = [
    "BidTrace",
    "BiddingStrategy",
    "BiddingWar",
    "BudgetPacing",
    "OutbidCompetitor",
    "StaticBid",
    "TargetSlot",
]
