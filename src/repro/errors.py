"""Exception hierarchy shared across the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch library errors without also swallowing programming errors such as
:class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidAuctionError",
    "InvalidPlanError",
    "PlanConstructionError",
    "AlgebraError",
    "BudgetError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidAuctionError(ReproError):
    """An auction specification is malformed.

    Raised for conditions such as a non-positive slot count, duplicate
    advertiser identifiers, or click-through rates outside ``[0, 1]``.
    """


class InvalidPlanError(ReproError):
    """A shared plan DAG violates the structural rules of Section II-C.

    The rules are: every node has in-degree 0 or 2; in-degree-0 nodes are
    labeled with variables; in-degree-2 nodes are labeled with the
    aggregation of their two inputs; and every query expression must be
    equivalent to the label of some node.
    """


class PlanConstructionError(ReproError):
    """A planner could not produce a valid plan for the given instance."""


class AlgebraError(ReproError):
    """An algebraic operation was applied outside its domain.

    For example, checking axiom satisfaction on an empty carrier set, or
    requesting the identity element of a structure that has none.
    """


class BudgetError(ReproError):
    """A budget-uncertainty computation received inconsistent inputs.

    For example, a negative remaining budget, a click probability outside
    ``[0, 1]``, or a throttle query with zero auctions in the round.
    """


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""
