"""Command-line interface: ``python -m repro <command>``.

Commands map to the paper's experiments and the library's main
entry points:

- ``example`` -- the Figures 1-3 worked auction.
- ``fig4`` -- the Fig. 4 cost-vs-probability sweep.
- ``shoes`` -- the Section II-B shoe-store sharing example.
- ``gaming`` -- the Section IV gaming attack, naive vs throttled.
- ``engine`` -- run a generated market through the round engine, or
  (``--serve``) serve it query-at-a-time from seeded Poisson/Zipf
  traffic with exact p50/p99 latency reporting.
- ``plan`` -- build a shared plan for a JSON query spec and print (or
  save) its serialized form.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.metrics.tables import ExperimentTable

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Shared winner determination in sponsored search auctions "
            "(Martin & Halpern, ICDE 2009) -- reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("example", help="the Figures 1-3 worked auction")

    fig4 = sub.add_parser("fig4", help="Fig. 4 cost-vs-probability sweep")
    fig4.add_argument("--seeds", type=int, default=3, help="instances per point")

    shoes = sub.add_parser("shoes", help="Section II-B shoe-store example")
    shoes.add_argument("--general", type=int, default=200)
    shoes.add_argument("--sports", type=int, default=40)
    shoes.add_argument("--fashion", type=int, default=30)
    shoes.add_argument("--seed", type=int, default=0, help="score-draw seed")

    gaming = sub.add_parser("gaming", help="Section IV gaming attack")
    gaming.add_argument("--rounds", type=int, default=120)
    gaming.add_argument("--delay", type=int, default=3)
    gaming.add_argument(
        "--at-scale",
        type=_positive_int,
        metavar="ATTACKERS",
        help=(
            "run the attack through the full engine with this many "
            "near-exhausted advertisers (plus honest competitors), "
            "comparing throttling off vs on and reporting the "
            "revenue-loss fraction instead of the single-attacker "
            "mini-simulation"
        ),
    )
    gaming.add_argument(
        "--honest",
        type=_positive_int,
        default=200,
        help="honest deep-budget competitors in --at-scale mode",
    )
    gaming.add_argument(
        "--seed", type=int, default=0, help="market/click seed (--at-scale)"
    )

    engine = sub.add_parser("engine", help="run a generated market")
    engine.add_argument("--rounds", type=int, default=50)
    engine.add_argument(
        "--mode",
        choices=["shared", "unshared", "shared-sort"],
        default="shared",
    )
    engine.add_argument("--seed", type=int, default=0)
    engine.add_argument(
        "--layout",
        choices=["object", "columnar"],
        default="object",
        help=(
            "advertiser storage layout: 'object' scores one Advertiser "
            "at a time; 'columnar' keeps id-sorted numpy columns and "
            "runs scoring/top-k/sorted-access as vectorized kernels "
            "(byte-identical outcomes)"
        ),
    )
    engine.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "partition the market's phrase-advertiser connected "
            "components across N worker processes (shared-nothing "
            "caches, per-shard change feeds, top-k merged at the "
            "boundary); 1 runs the sequential engine in-process"
        ),
    )
    engine.add_argument(
        "--exec-cache",
        action="store_true",
        help=(
            "keep materialized top-k nodes alive across rounds and "
            "recompute only the invalidated cone (shared mode only)"
        ),
    )
    engine.add_argument(
        "--planner",
        choices=["lazy", "naive"],
        default="lazy",
        help=(
            "greedy completion engine: 'lazy' (CELF-style incremental "
            "rescoring, the default) or 'naive' (full rescan each step; "
            "same plan, more work)"
        ),
    )
    engine.add_argument(
        "--sort-planner",
        choices=["lazy", "naive"],
        default="lazy",
        help=(
            "shared-sort merge-plan builder: 'lazy' (versioned pair "
            "heap, the default) or 'naive' (full same-size rescan; "
            "byte-identical plan, more work)"
        ),
    )
    engine.add_argument(
        "--sort-cache",
        action="store_true",
        help=(
            "keep merge-sort streams alive across rounds and rebuild "
            "only those above changed bids (shared-sort mode only)"
        ),
    )
    engine.add_argument(
        "--throttle-mode",
        choices=["exact", "bounded"],
        default="exact",
        help=(
            "Section IV throttling regime: 'exact' computes every "
            "occurring advertiser's throttled bid up front; 'bounded' "
            "ranks on lazily refined Hoeffding intervals and resolves "
            "only the selected k+1 exactly (bit-identical outcomes, "
            "less throttle work)"
        ),
    )
    engine.add_argument(
        "--throttle-cache",
        action="store_true",
        help=(
            "memoize throttle problems across rounds on the change "
            "feed: advertisers whose books did not move reuse their "
            "last throttled bid in O(1)"
        ),
    )
    engine.add_argument(
        "--cache-autotune",
        action="store_true",
        help=(
            "adaptive cache policy: bypass the cross-round cache while "
            "the observed dirty fraction makes caching a net loss, and "
            "auto-size the exec cache's LRU bound from the working set "
            "(requires --exec-cache or --sort-cache)"
        ),
    )
    engine.add_argument(
        "--no-cache-verify",
        action="store_true",
        help=(
            "trust the change-feed events and skip the caches' exact "
            "value-diff soundness cross-check (the production posture; "
            "the default keeps the cross-check on)"
        ),
    )
    engine.add_argument(
        "--serve",
        action="store_true",
        help=(
            "serve queries one at a time from a seeded Poisson/Zipf "
            "traffic generator instead of running synchronous batch "
            "rounds; prints sustained QPS and exact p50/p99 latency "
            "(--rounds is ignored; see --queries/--arrival-rate)"
        ),
    )
    engine.add_argument(
        "--queries",
        type=_positive_int,
        default=1000,
        help="queries to serve in --serve mode",
    )
    engine.add_argument(
        "--arrival-rate",
        type=float,
        default=200.0,
        help="traffic arrival rate in queries/second (--serve mode)",
    )
    engine.add_argument(
        "--zipf-exponent",
        type=float,
        default=1.0,
        help=(
            "Zipf popularity skew across phrases, ranked by search "
            "rate (--serve mode; 0 means uniform)"
        ),
    )
    engine.add_argument(
        "--trace-json",
        metavar="PATH",
        help=(
            "run with an enabled metrics collector and write counters, "
            "gauges, timers, and the trace-event ring to PATH as JSON; "
            "also prints the per-subsystem work counter table"
        ),
    )
    engine.add_argument(
        "--trace-capacity",
        type=_positive_int,
        default=65536,
        help="trace ring capacity (events beyond it drop oldest-first)",
    )

    plan = sub.add_parser(
        "plan", help="build and serialize a shared plan from JSON"
    )
    plan.add_argument(
        "spec",
        help=(
            "path to a JSON file: {\"queries\": {name: [vars...]}, "
            "\"search_rates\": {name: rate}}; '-' reads stdin"
        ),
    )
    plan.add_argument("--output", help="write the plan JSON here")
    plan.add_argument(
        "--planner",
        choices=["lazy", "naive"],
        default="lazy",
        help="greedy completion engine (both produce identical plans)",
    )
    return parser


def _cmd_example() -> int:
    from repro.core import GeneralizedSecondPrice, determine_winners
    from repro.workloads.scenarios import paper_example_auction

    spec = paper_example_auction()
    allocation = determine_winners(spec)
    outcome = GeneralizedSecondPrice().run(spec)
    table = ExperimentTable(
        "Figures 1-3: winner determination + GSP",
        ["slot", "advertiser", "score b*c", "GSP price"],
    )
    for slot, advertiser_id in enumerate(allocation.slot_to_advertiser):
        advertiser = spec.advertiser_by_id(advertiser_id)
        score = advertiser.bid * spec.ctr_model.advertiser_factor(
            advertiser_id
        )
        table.add(
            slot + 1,
            "ABC"[advertiser_id],
            score,
            outcome.prices[advertiser_id],
        )
    table.show()
    return 0


def _cmd_fig4(seeds: int) -> int:
    from repro.plans.baselines import no_sharing_plan
    from repro.plans.cost import expected_plan_cost
    from repro.plans.greedy_planner import greedy_shared_plan
    from repro.workloads.fig4 import fig4_instance

    table = ExperimentTable(
        "Fig. 4: expected plan cost vs query probability",
        ["sr", "no sharing", "greedy shared"],
    )
    for probability in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        unshared = 0.0
        shared = 0.0
        for seed in range(seeds):
            instance = fig4_instance(probability, seed=seed)
            unshared += expected_plan_cost(no_sharing_plan(instance))
            shared += expected_plan_cost(greedy_shared_plan(instance))
        table.add(probability, unshared / seeds, shared / seeds)
    table.show()
    return 0


def _cmd_shoes(general: int, sports: int, fashion: int, seed: int = 0) -> int:
    import random

    from repro.plans.baselines import no_sharing_plan
    from repro.plans.executor import PlanExecutor
    from repro.plans.greedy_planner import greedy_shared_plan
    from repro.workloads.scenarios import shoe_store_instance

    instance, _groups = shoe_store_instance(general, sports, fashion)
    rng = random.Random(seed)
    scores = {v: rng.uniform(0.1, 5.0) for v in instance.variables}
    shared = PlanExecutor(
        greedy_shared_plan(instance, pair_strategy="cover"), 5
    ).run_round(scores)
    unshared = PlanExecutor(no_sharing_plan(instance), 5).run_round(scores)
    table = ExperimentTable(
        "Shoe stores: advertisers scanned",
        ["plan", "scans"],
    )
    table.add("unshared", unshared.advertisers_scanned)
    table.add("shared", shared.advertisers_scanned)
    table.show()
    return 0


def _cmd_gaming_at_scale(
    rounds: int, delay: int, attackers: int, honest: int, seed: int
) -> int:
    """The attack through the full engine: revenue loss, off vs on."""
    from repro.budgets.gaming import forgiven_fraction, gaming_market_at_scale
    from repro.engine import SharedAuctionEngine

    market = gaming_market_at_scale(
        num_attackers=attackers, num_honest=honest, seed=seed
    )
    table = ExperimentTable(
        f"Gaming at scale ({attackers} attackers, {honest} honest, "
        f"{rounds} rounds, delay {delay})",
        [
            "throttling",
            "revenue ($)",
            "forgiven ($)",
            "revenue loss",
        ],
    )
    for throttle in (False, True):
        engine = SharedAuctionEngine(
            market.advertisers,
            slot_factors=[1.0, 0.6, 0.3],
            search_rates=market.search_rates,
            mode="unshared",
            throttle=throttle,
            throttle_cache=throttle,
            mean_click_delay_rounds=float(delay),
            seed=seed,
        )
        report = engine.run(rounds)
        table.add(
            "on" if throttle else "off",
            report.revenue_cents / 100,
            report.forgiven_cents / 100,
            round(
                forgiven_fraction(
                    report.revenue_cents, report.forgiven_cents
                ),
                4,
            ),
        )
    table.show()
    return 0


def _cmd_gaming(rounds: int, delay: int) -> int:
    from repro.budgets.gaming import GamingAdvertiser, simulate_gaming

    population = [
        GamingAdvertiser(0, bid_cents=100, budget_cents=150, ctr=0.5)
    ] + [
        GamingAdvertiser(i, bid_cents=80, budget_cents=100_000, ctr=0.5)
        for i in range(1, 4)
    ]
    table = ExperimentTable(
        f"Gaming attack ({rounds} rounds, delay {delay})",
        ["policy", "revenue ($)", "forgiven ($)", "attacker wins"],
    )
    for policy in ("naive", "throttled"):
        report = simulate_gaming(
            population, rounds, 5, delay, policy, seed=42
        )
        table.add(
            policy,
            report.revenue_cents / 100,
            report.forgiven_cents / 100,
            report.wins[0],
        )
    table.show()
    return 0


def _cmd_engine(
    rounds: int,
    mode: str,
    seed: int,
    trace_json: Optional[str] = None,
    trace_capacity: int = 65536,
    exec_cache: bool = False,
    planner: str = "lazy",
    sort_planner: str = "lazy",
    sort_cache: bool = False,
    cache_autotune: bool = False,
    cache_verify: bool = True,
    serve: bool = False,
    queries: int = 1000,
    arrival_rate: float = 200.0,
    zipf_exponent: float = 1.0,
    throttle_mode: str = "exact",
    throttle_cache: bool = False,
    layout: str = "object",
    workers: int = 1,
) -> int:
    from repro.engine import SharedAuctionEngine
    from repro.workloads.generator import MarketConfig, generate_market

    if cache_autotune and not (exec_cache or sort_cache):
        # Same fail-fast contract as the trace-path check below: a bad
        # flag combination gets one line on stderr, not a traceback.
        print(
            "--cache-autotune requires --exec-cache or --sort-cache",
            file=sys.stderr,
        )
        return 1
    if throttle_mode == "bounded" and (exec_cache or sort_cache):
        print(
            "--throttle-mode bounded runs its own bound-driven selection "
            "and cannot combine with --exec-cache/--sort-cache",
            file=sys.stderr,
        )
        return 1
    if layout == "columnar" and throttle_mode == "bounded":
        print(
            "--layout columnar vectorizes whole score columns; the "
            "bounded interval regime refines advertisers one at a time "
            "and stays on --layout object",
            file=sys.stderr,
        )
        return 1
    if workers > 1 and serve:
        print(
            "--workers shards synchronous batch rounds; the serving "
            "loop (--serve) runs single-process",
            file=sys.stderr,
        )
        return 1
    if workers > 1 and trace_json is not None:
        print(
            "--trace-json needs an in-process collector; worker shards "
            "run shared-nothing (drop --workers or --trace-json)",
            file=sys.stderr,
        )
        return 1
    collector = None
    if trace_json is not None:
        from repro.instrument import MetricsCollector, TraceRing

        # Fail before the run, not after: a long simulation should not
        # end in a traceback because the output directory is missing.
        try:
            with open(trace_json, "w"):
                pass
        except OSError as error:
            print(f"cannot write trace to {trace_json}: {error}", file=sys.stderr)
            return 1
        collector = MetricsCollector(trace=TraceRing(trace_capacity))
    market = generate_market(MarketConfig(seed=seed))
    label = (
        f"mode={mode}"
        + (" +columnar" if layout == "columnar" else "")
        + (f" +workers={workers}" if workers > 1 else "")
        + (" +exec-cache" if exec_cache else "")
        + (" +sort-cache" if sort_cache else "")
        + (" +autotune" if cache_autotune else "")
        + (" +bounded-throttle" if throttle_mode == "bounded" else "")
        + (" +throttle-cache" if throttle_cache else "")
    )
    if workers > 1:
        from repro.engine import ShardedEngine

        with ShardedEngine(
            market.advertisers,
            slot_factors=[0.3, 0.2, 0.1],
            search_rates=market.search_rates,
            shards=workers,
            seed=seed,
            mode=mode,
            layout=layout,
            exec_cache=exec_cache,
            planner=planner,
            sort_planner=sort_planner,
            sort_cache=sort_cache,
            cache_autotune=cache_autotune,
            cache_verify=cache_verify,
            throttle_mode=throttle_mode,
            throttle_cache=throttle_cache,
        ) as sharded:
            report = sharded.run(rounds)
            effective = sharded.shards
        table = ExperimentTable(
            f"Sharded run: {label} ({effective} shard"
            f"{'s' if effective != 1 else ''}), {rounds} rounds",
            ["auctions", "merges", "scans", "revenue ($)", "forgiven ($)"],
        )
        table.add(
            report.auctions,
            report.merges,
            report.scans,
            report.revenue_cents / 100,
            report.forgiven_cents / 100,
        )
        table.show()
        return 0
    engine = SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=market.search_rates,
        mode=mode,
        seed=seed,
        collector=collector,
        exec_cache=exec_cache,
        planner=planner,
        sort_planner=sort_planner,
        sort_cache=sort_cache,
        cache_autotune=cache_autotune,
        cache_verify=cache_verify,
        throttle_mode=throttle_mode,
        throttle_cache=throttle_cache,
        layout=layout,
    )
    if serve:
        from repro.serving import ServingEngine, TrafficGenerator

        traffic = TrafficGenerator.from_search_rates(
            market.search_rates,
            rate_qps=arrival_rate,
            zipf_exponent=zipf_exponent,
            seed=seed,
        )
        loop = ServingEngine(engine, traffic, keep_history=False)
        serving_report = loop.run(queries)
        latency = serving_report.latency
        table = ExperimentTable(
            f"Serving run: {label}, {queries} queries",
            [
                "queries",
                "sustained qps",
                "p50 (ms)",
                "p99 (ms)",
                "revenue ($)",
            ],
        )
        table.add(
            serving_report.queries,
            latency.qps,
            latency.p50_seconds * 1000.0,
            latency.p99_seconds * 1000.0,
            serving_report.revenue_cents / 100,
        )
        table.show()
    else:
        report = engine.run(rounds)
        table = ExperimentTable(
            f"Engine run: {label}, {rounds} rounds",
            ["auctions", "merges", "scans", "revenue ($)", "forgiven ($)"],
        )
        table.add(
            report.auctions,
            report.merges,
            report.scans,
            report.revenue_cents / 100,
            report.forgiven_cents / 100,
        )
        table.show()
    if collector is not None and trace_json is not None:
        from repro.metrics.tables import counter_table, planner_stats_line

        counter_table(collector, title=f"Work counters: {label}").show()
        print(planner_stats_line(collector))
        collector.dump(trace_json)
        print(f"metrics + trace written to {trace_json}")
    return 0


def _cmd_plan(spec_path: str, output: Optional[str], planner: str = "lazy") -> int:
    from repro.plans.greedy_planner import greedy_shared_plan
    from repro.plans.cost import expected_plan_cost
    from repro.plans.instance import SharedAggregationInstance
    from repro.plans.serialize import dumps

    if spec_path == "-":
        raw = sys.stdin.read()
    else:
        with open(spec_path) as handle:
            raw = handle.read()
    spec = json.loads(raw)
    instance = SharedAggregationInstance.from_sets(
        spec["queries"], spec.get("search_rates", 1.0)
    )
    plan = greedy_shared_plan(instance, planner=planner)
    serialized = dumps(plan)
    if output:
        with open(output, "w") as handle:
            handle.write(serialized)
        print(
            f"plan: {plan.total_cost} operators, expected cost "
            f"{expected_plan_cost(plan):.4f}; written to {output}"
        )
    else:
        print(serialized)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "example":
        return _cmd_example()
    if args.command == "fig4":
        return _cmd_fig4(args.seeds)
    if args.command == "shoes":
        return _cmd_shoes(args.general, args.sports, args.fashion, args.seed)
    if args.command == "gaming":
        if args.at_scale is not None:
            return _cmd_gaming_at_scale(
                args.rounds, args.delay, args.at_scale, args.honest, args.seed
            )
        return _cmd_gaming(args.rounds, args.delay)
    if args.command == "engine":
        return _cmd_engine(
            args.rounds,
            args.mode,
            args.seed,
            args.trace_json,
            args.trace_capacity,
            args.exec_cache,
            args.planner,
            args.sort_planner,
            args.sort_cache,
            args.cache_autotune,
            not args.no_cache_verify,
            args.serve,
            args.queries,
            args.arrival_rate,
            args.zipf_exponent,
            args.throttle_mode,
            args.throttle_cache,
            args.layout,
            args.workers,
        )
    if args.command == "plan":
        return _cmd_plan(args.spec, args.output, args.planner)
    raise AssertionError(f"unhandled command {args.command!r}")
