"""Shared sorting (Section III) with the threshold algorithm on top.

Three phrases with per-phrase CTR factors share the descending-bid
streams of their common advertisers through on-demand merge operators;
the threshold algorithm pulls only as deep as the stopping condition
requires.

Run:  python examples/shared_sort_demo.py
"""

from __future__ import annotations

import random

from repro.metrics.tables import ExperimentTable
from repro.sharedsort import (
    build_shared_sort_plan,
    independent_sort_cost,
    threshold_top_k,
)


def main() -> None:
    rng = random.Random(21)
    shared_block = list(range(16))  # book-lovers every phrase wants
    phrases = {
        "books": shared_block + [16, 17, 18, 19],
        "dvds": shared_block + [20, 21],
        "music": shared_block + [22, 23, 24, 25, 26, 27],
    }
    bids = {i: round(rng.uniform(0.1, 9.9), 2) for i in range(28)}
    # Per-phrase advertiser CTR factors (Section III's c_i^q).
    factors = {
        phrase: {i: round(rng.uniform(0.3, 1.7), 3) for i in ads}
        for phrase, ads in phrases.items()
    }

    plan = build_shared_sort_plan(phrases, search_rates=0.9)
    print(
        f"plan: {len(plan.internal_nodes())} shared merge operators; "
        f"expected full-sort cost {plan.expected_cost():.1f} vs "
        f"independent {independent_sort_cost({p: len(a) for p, a in phrases.items()}, {p: 0.9 for p in phrases}):.1f}"
    )

    live = plan.instantiate(bids)
    table = ExperimentTable(
        "Threshold algorithm over shared sorted streams (k = 3)",
        ["phrase", "top-3 (id:score)", "stages", "sorted acc.", "random acc."],
    )
    for phrase, ads in phrases.items():
        ctr_order = sorted(ads, key=lambda i: (-factors[phrase][i], i))
        result = threshold_top_k(
            3, live.stream_for_phrase(phrase), ctr_order, bids, factors[phrase]
        )
        expected = sorted(
            ads, key=lambda i: (-bids[i] * factors[phrase][i], i)
        )[:3]
        assert list(result.ranking.advertiser_ids()) == expected
        pretty = ", ".join(
            f"{e.advertiser_id}:{e.score:.2f}" for e in result.ranking
        )
        table.add(
            phrase,
            pretty,
            result.stages,
            result.sorted_accesses,
            result.random_accesses,
        )
    table.show()
    print(
        f"\noperator pulls across all three phrases: {live.total_pulls()} "
        f"(shared caches mean the 16 common advertisers were merge-sorted once)"
    )


if __name__ == "__main__":
    main()
