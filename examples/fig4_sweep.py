"""Regenerate Figure 4: expected plan cost vs query probability.

Protocol from the paper: 10 top-k queries over 20 advertisers, each
advertiser's membership decided by a fair coin, duplicate queries
discarded.  We sweep the common query probability and report the
expected per-round cost of the greedy shared plan against the
no-sharing, fragment-only, and CSE baselines, averaged over instances.

Run:  python examples/fig4_sweep.py
"""

from __future__ import annotations

from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import cse_plan, fragment_only_plan, no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.fig4 import fig4_instance

PROBABILITIES = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
SEEDS = range(5)


def main() -> None:
    table = ExperimentTable(
        "Fig. 4: expected plan cost vs query probability "
        "(10 queries / 20 advertisers, coin-flip membership)",
        ["sr", "no sharing", "CSE only", "fragments only", "greedy shared"],
    )
    for probability in PROBABILITIES:
        totals = {"none": 0.0, "cse": 0.0, "frag": 0.0, "greedy": 0.0}
        for seed in SEEDS:
            instance = fig4_instance(probability, seed=seed)
            totals["none"] += expected_plan_cost(no_sharing_plan(instance))
            totals["cse"] += expected_plan_cost(cse_plan(instance))
            totals["frag"] += expected_plan_cost(fragment_only_plan(instance))
            totals["greedy"] += expected_plan_cost(greedy_shared_plan(instance))
        n = len(list(SEEDS))
        table.add(
            probability,
            totals["none"] / n,
            totals["cse"] / n,
            totals["frag"] / n,
            totals["greedy"] / n,
        )
    table.show()
    print(
        "\nShape check (matches the paper's Fig. 4): the shared plan's"
        "\nexpected cost sits well below the unshared baseline at every"
        "\nprobability, and the absolute gap widens as queries become"
        "\nmore certain -- more probable queries make shared nodes pay"
        "\noff more often."
    )


if __name__ == "__main__":
    main()
