"""Bidding-program dynamics over shared winner determination.

Section II-C motivates per-round plan re-evaluation with advertisers who
"are constantly updating their bids using ... automated bidding
programs" -- staying in a slot, staying above a competitor, pacing a
budget.  This example runs those strategies against each other on one
phrase: the shared plan is built once, and every round re-binds the
fresh bids.

Run:  python examples/bidding_war.py
"""

from __future__ import annotations

from repro.bidding import (
    BiddingWar,
    BudgetPacing,
    OutbidCompetitor,
    StaticBid,
    TargetSlot,
)
from repro.metrics.tables import ExperimentTable

ROUNDS = 120


def main() -> None:
    strategies = {
        0: TargetSlot(slot=0, step=0.06),        # wants the top slot
        1: OutbidCompetitor(competitor_id=0),    # wants to beat advertiser 0
        2: BudgetPacing(daily_budget=12.0, valuation=3.0),
        3: StaticBid(1.4),                       # a set-and-forget advertiser
    }
    war = BiddingWar(
        strategies=strategies,
        initial_bids={0: 1.0, 1: 1.0, 2: 1.0, 3: 1.4},
        ctr_factors={0: 1.0, 1: 1.1, 2: 0.9, 3: 1.0},
        slot_factors=[0.3, 0.2],
        rounds=ROUNDS,
    )
    traces = war.run()

    table = ExperimentTable(
        f"Bidding war after {ROUNDS} rounds (two slots)",
        [
            "advertiser",
            "strategy",
            "final bid",
            "final slot",
            "rounds won",
            "total spend",
        ],
    )
    names = {
        0: "TargetSlot(0)",
        1: "OutbidCompetitor(0)",
        2: "BudgetPacing($12)",
        3: "StaticBid(1.40)",
    }
    for advertiser_id, trace in sorted(traces.items()):
        rounds_won = sum(1 for slot in trace.slots if slot is not None)
        final_slot = trace.slots[-1]
        table.add(
            advertiser_id,
            names[advertiser_id],
            trace.bids[-1],
            "-" if final_slot is None else final_slot,
            rounds_won,
            trace.spend[-1],
        )
    table.show()

    escalation = max(traces[0].bids[-1], traces[1].bids[-1])
    print(
        f"\nThe slot-0 contest escalated bids to {escalation:.2f} (from 1.00):"
        "\nexactly the rapid bid churn that forces winner determination to"
        "\nre-aggregate fresh values every round over a fixed shared plan."
    )
    assert traces[2].spend[-1] <= 12.0 + 1e-9, "pacer stayed within budget"


if __name__ == "__main__":
    main()
