"""The Section II-B sharing example: hiking boots vs high-heels.

200 general shoe stores bid on both phrases, 40 sports stores on
"hiking boots" only, 30 fashion stores on "high-heels" only.  Resolving
the two auctions separately scans 470 advertisers; the shared plan scans
270 -- about 40% fewer -- and produces identical rankings.

Run:  python examples/shoe_stores.py
"""

from __future__ import annotations

import random

from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.fragments import identify_fragments
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.scenarios import shoe_store_instance


def main() -> None:
    instance, groups = shoe_store_instance()
    print("store populations:", {k: len(v) for k, v in groups.items()})

    fragments = identify_fragments(instance)
    print("\nfragments (variables grouped by query membership):")
    for fragment in fragments:
        print(f"  {fragment.query_names}: {len(fragment)} stores")

    shared = greedy_shared_plan(instance, pair_strategy="cover")
    unshared = no_sharing_plan(instance)

    rng = random.Random(7)
    scores = {v: rng.uniform(0.1, 5.0) for v in instance.variables}
    shared_run = PlanExecutor(shared, 5).run_round(scores)
    unshared_run = PlanExecutor(unshared, 5).run_round(scores)

    assert shared_run.answers == unshared_run.answers, "sharing is exact"

    table = ExperimentTable(
        "Shoe stores (Section II-B): shared vs unshared",
        ["plan", "advertisers scanned", "top-k merges", "expected cost"],
    )
    table.add(
        "unshared",
        unshared_run.advertisers_scanned,
        unshared_run.merges_performed,
        expected_plan_cost(unshared),
    )
    table.add(
        "shared",
        shared_run.advertisers_scanned,
        shared_run.merges_performed,
        expected_plan_cost(shared),
    )
    table.show()

    saving = 1 - shared_run.advertisers_scanned / unshared_run.advertisers_scanned
    print(f"\nscan reduction: {saving:.1%} (the paper reports ~40%)")
    print("top-5 for 'hiking boots':", shared_run.answers["hiking boots"].advertiser_ids())
    print("top-5 for 'high-heels':  ", shared_run.answers["high-heels"].advertiser_ids())


if __name__ == "__main__":
    main()
