"""The Section IV gaming attack, head to head with throttling.

A nearly exhausted advertiser bids on a high-volume phrase; its clicks
arrive with delay, so a naive system keeps letting it win and later
forgives the clicks it cannot pay for.  Throttled winner determination
(ranking by b-hat) closes the exploit.

Run:  python examples/budget_gaming.py
"""

from __future__ import annotations

from repro.budgets.gaming import GamingAdvertiser, simulate_gaming
from repro.metrics.tables import ExperimentTable


def main() -> None:
    attacker = GamingAdvertiser(0, bid_cents=100, budget_cents=150, ctr=0.5)
    honest = [
        GamingAdvertiser(i, bid_cents=80, budget_cents=100_000, ctr=0.5)
        for i in range(1, 4)
    ]
    population = [attacker] + honest

    table = ExperimentTable(
        "Gaming attack: naive vs throttled winner determination",
        [
            "policy",
            "revenue ($)",
            "forgiven ($)",
            "attacker wins",
            "attacker free clicks",
        ],
    )
    for policy in ("naive", "throttled"):
        report = simulate_gaming(
            population,
            rounds=200,
            auctions_per_round=5,
            click_delay_rounds=3,
            policy=policy,
            seed=42,
        )
        table.add(
            policy,
            report.revenue_cents / 100,
            report.forgiven_cents / 100,
            report.wins[0],
            report.free_clicks[0],
        )
    table.show()
    print(
        "\nWith a $1.50 remaining budget and five simultaneous auctions,"
        "\nthe throttled bid is at most 150/5 = 30 cents -- below the"
        "\nhonest 80-cent bids -- so the attacker stops winning, no"
        "\nclicks are forgiven, and the slots (hence revenue) go to"
        "\nadvertisers who can pay."
    )


if __name__ == "__main__":
    main()
