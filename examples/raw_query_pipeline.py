"""End to end from raw search queries: rewrite -> batch -> shared WD.

The paper assumes queries are already mapped to bid phrases by the
two-stage method of Radlinski et al.; this example shows the whole
pipeline: raw query text is normalized and rewritten onto the phrase
dictionary, timestamped phrase hits are batched into 2/3-second rounds,
and each round is resolved through the shared auction engine.

Run:  python examples/raw_query_pipeline.py
"""

from __future__ import annotations

import random

from repro.core import Advertiser
from repro.engine import SharedAuctionEngine
from repro.engine.rounds import RoundBatcher, TimestampedQuery
from repro.matching import PhraseDictionary, TwoStageRewriter
from repro.metrics.tables import ExperimentTable

PHRASES = ["hiking boots", "snow boots", "high heels", "running shoes"]

RAW_QUERIES = [
    "Buy Hiking Boots online!",
    "waterproof hiking boots",
    "high heels",
    "cheap snow boots",
    "red high heels for the office",
    "quantum entanglement",  # no sponsored auction for this one
    "running shoes",
    "boots",
    "marathon running shoes sale",
]


def main() -> None:
    rng = random.Random(3)
    rewriter = TwoStageRewriter(PhraseDictionary(PHRASES), threshold=0.4)

    # Stage 1+2: raw text -> bid phrase (or no auction).
    rewrite_table = ExperimentTable(
        "Two-stage rewriting (threshold 0.4)",
        ["raw query", "phrase", "score", "exact"],
    )
    stamped = []
    t = 0.0
    for raw in RAW_QUERIES:
        result = rewriter.rewrite(raw)
        rewrite_table.add(
            raw,
            result.phrase or "(none)",
            result.score,
            result.exact,
        )
        t += rng.uniform(0.05, 0.4)
        if result.phrase is not None:
            stamped.append(TimestampedQuery(t, result.phrase))
    rewrite_table.show()

    # Batch into the paper's 2/3-second rounds.
    batches = list(RoundBatcher(2 / 3).batch(stamped))
    print(f"\n{len(stamped)} phrase hits batched into {len(batches)} rounds")

    # Resolve each round through the shared engine.
    advertisers = [
        Advertiser(
            i,
            bid=round(rng.uniform(0.5, 2.5), 2),
            ctr_factor=round(rng.uniform(0.6, 1.4), 2),
            phrases=frozenset(rng.sample(PHRASES, rng.randrange(1, 4))),
        )
        for i in range(25)
    ]
    engine = SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2],
        search_rates={p: 0.5 for p in PHRASES},
        mode="shared",
        seed=9,
    )
    round_table = ExperimentTable(
        "Rounds resolved (shared winner determination)",
        ["round", "phrases", "merges", "scans", "displays"],
    )
    for batch in batches:
        occurring = [
            p for p in batch.distinct_phrases if p in engine.phrase_advertisers
        ]
        report = engine.run_round(occurring)
        round_table.add(
            batch.round_index,
            ", ".join(occurring),
            report.merges,
            report.scans,
            report.displays,
        )
    round_table.show()


if __name__ == "__main__":
    main()
