"""Shared statistics for bidding programs (Section VII).

Bidding programs want market statistics over sets of bid phrases --
"the average (or maximum) bid placed on a given set of bid phrases ...
or the total number of users who have searched for one of a set of bid
phrases".  One shared plan DAG serves every aggregate: top-k, max, min
run on the idempotent plan; sum, count, mean, and variance on a
disjoint-operand plan.

Run:  python examples/aggregate_statistics.py
"""

from __future__ import annotations

import random

from repro.aggregates import (
    GenericPlanExecutor,
    MeanAggregate,
    VarianceAggregate,
    count_operator,
    max_operator,
    sum_operator,
    top_k_operator,
)
from repro.metrics.tables import ExperimentTable
from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import SharedAggregationInstance


def main() -> None:
    rng = random.Random(11)
    # Phrase groups a music-store bidding program might watch.
    phrase_sets = {
        "music:all": [f"adv{i}" for i in range(20)],
        "music:instruments": [f"adv{i}" for i in range(12)],
        "music:vinyl": [f"adv{i}" for i in range(8, 20)],
        "music:sheet": [f"adv{i}" for i in range(5, 15)],
    }
    instance = SharedAggregationInstance.from_sets(phrase_sets, 0.9)
    bids = {v: round(rng.uniform(0.2, 4.0), 2) for v in instance.variables}

    disjoint_plan = greedy_shared_plan(instance, require_disjoint=True)
    idempotent_plan = greedy_shared_plan(instance)
    print(
        f"plans: disjoint {disjoint_plan.total_cost} ops "
        f"(E[cost] {expected_plan_cost(disjoint_plan):.2f}), "
        f"idempotent {idempotent_plan.total_cost} ops "
        f"(E[cost] {expected_plan_cost(idempotent_plan):.2f})"
    )

    sums = GenericPlanExecutor(disjoint_plan, sum_operator()).run_round(bids)
    counts = GenericPlanExecutor(disjoint_plan, count_operator()).run_round(bids)
    maxima = GenericPlanExecutor(idempotent_plan, max_operator()).run_round(bids)
    means = MeanAggregate(disjoint_plan).run_round(bids)
    variances = VarianceAggregate(disjoint_plan).run_round(bids)
    top3 = GenericPlanExecutor(idempotent_plan, top_k_operator(3)).run_round(bids)

    table = ExperimentTable(
        "Shared bid statistics per phrase group",
        ["group", "bidders", "sum", "mean", "stddev", "max", "top-3 ids"],
    )
    for name in sorted(phrase_sets):
        table.add(
            name,
            counts[name],
            sums[name],
            means[name],
            variances[name] ** 0.5,
            maxima[name],
            ",".join(str(e.advertiser_id) for e in top3[name]),
        )
    table.show()

    # Everything above ran over two plan DAGs; per-query recomputation
    # would have cost sum(|X_q| - 1) = the unshared baseline:
    unshared_ops = sum(len(q.variables) - 1 for q in instance.queries)
    print(
        f"\nshared ops per full round: {disjoint_plan.total_cost} "
        f"(vs {unshared_ops} recomputing each group separately)"
    )


if __name__ == "__main__":
    main()
