"""Quickstart: the paper's worked example, then a full engine run.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    Advertiser,
    GeneralizedSecondPrice,
    LadderedVCG,
    determine_winners,
)
from repro.engine import SharedAuctionEngine
from repro.workloads.scenarios import paper_example_auction


def single_auction_example() -> None:
    """Figures 1-3: three advertisers, two slots, separable CTRs."""
    spec = paper_example_auction()
    print("== Single auction (Figures 1-3) ==")
    print("advertiser scores b_i * c_i:")
    for advertiser in spec.advertisers:
        name = "ABC"[advertiser.advertiser_id]
        score = advertiser.bid * spec.ctr_model.advertiser_factor(
            advertiser.advertiser_id
        )
        print(f"  {name}: bid={advertiser.bid:.2f}  score={score:.3f}")

    allocation = determine_winners(spec)
    for slot, advertiser_id in enumerate(allocation.slot_to_advertiser):
        print(f"  slot {slot + 1} -> advertiser {'ABC'[advertiser_id]}")

    for name, rule in [("GSP", GeneralizedSecondPrice()), ("VCG", LadderedVCG())]:
        outcome = rule.run(spec)
        prices = {
            "ABC"[advertiser_id]: round(price, 4)
            for advertiser_id, price in outcome.prices.items()
        }
        print(f"  {name} prices per click: {prices}")


def engine_example() -> None:
    """A shared-WD engine over three phrases with budgets and clicks."""
    print("\n== Round-based engine ==")
    phrases = ["hiking boots", "high-heels", "sandals"]
    advertisers = [
        Advertiser(0, bid=1.50, ctr_factor=1.2, phrases=frozenset(phrases)),
        Advertiser(
            1, bid=1.20, ctr_factor=1.0, phrases=frozenset({"hiking boots"})
        ),
        Advertiser(
            2,
            bid=1.80,
            ctr_factor=0.9,
            daily_budget=25.0,
            phrases=frozenset({"high-heels", "sandals"}),
        ),
        Advertiser(
            3, bid=0.90, ctr_factor=1.4, phrases=frozenset(phrases[:2])
        ),
    ]
    engine = SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2],
        search_rates={p: 0.8 for p in phrases},
        mode="shared",
        throttle=True,
        seed=7,
    )
    report = engine.run(rounds=100)
    print(f"  rounds: {report.rounds},  auctions resolved: {report.auctions}")
    print(f"  top-k merges: {report.merges},  advertisers scanned: {report.scans}")
    print(f"  ads displayed: {report.displays},  clicks: {report.clicks}")
    print(
        f"  revenue: ${report.revenue_cents / 100:.2f},  "
        f"forgiven: ${report.forgiven_cents / 100:.2f}"
    )
    spent = engine.budget_manager.spent_cents(2) / 100
    print(f"  budgeted advertiser 2 spent ${spent:.2f} of $25.00")


if __name__ == "__main__":
    single_auction_example()
    engine_example()
