"""Non-separable winner determination (Section V).

When click-through rates do not factor as c_i * d_j, winner
determination becomes a maximum-weight bipartite matching.  Following
Martin-Gehrke-Halpern (2008), each slot keeps only its top-k incident
advertisers before the Hungarian algorithm runs on the pruned O(k^2) x k
graph -- this example verifies the pruned answer against the full graph
and against brute force.

Run:  python examples/nonseparable_auction.py
"""

from __future__ import annotations

import random

from repro.core import Advertiser, AuctionSpec, MatrixCTRModel
from repro.core.winner_determination import (
    brute_force_winner_determination,
    determine_winners_nonseparable,
    prune_candidates,
)
from repro.metrics.tables import ExperimentTable


def main() -> None:
    rng = random.Random(5)
    num_advertisers, num_slots = 40, 3

    # A non-separable CTR matrix: specialists whose relative slot
    # performance differs (e.g. brand ads thrive on top, bargain ads in
    # lower slots).
    rows = {}
    for i in range(num_advertisers):
        base = rng.uniform(0.05, 0.3)
        tilt = rng.uniform(0.5, 2.0)
        rows[i] = [
            min(1.0, base * (tilt ** (-slot if i % 2 else slot)))
            for slot in range(num_slots)
        ]
    model = MatrixCTRModel(rows)
    advertisers = [
        Advertiser(i, bid=round(rng.uniform(0.2, 3.0), 2))
        for i in range(num_advertisers)
    ]
    spec = AuctionSpec("gadgets", advertisers, model)

    kept = prune_candidates(advertisers, model, num_slots)
    pruned = determine_winners_nonseparable(spec, prune=True)
    full = determine_winners_nonseparable(spec, prune=False)

    table = ExperimentTable(
        "Non-separable winner determination (Section V)",
        ["method", "graph size", "objective"],
    )
    table.add("pruned Hungarian", f"{len(kept)} x {num_slots}", pruned.expected_value)
    table.add(
        "full Hungarian", f"{num_advertisers} x {num_slots}", full.expected_value
    )
    table.show()
    assert abs(pruned.expected_value - full.expected_value) < 1e-9

    print("\nslot assignment:", pruned.slot_to_advertiser)

    # Cross-check against exhaustive search on a small sub-instance.
    small_spec = AuctionSpec("gadgets", advertisers[:6], model)
    fast = determine_winners_nonseparable(small_spec)
    slow = brute_force_winner_determination(small_spec)
    assert abs(fast.expected_value - slow.expected_value) < 1e-9
    print(
        f"6-advertiser cross-check: Hungarian {fast.expected_value:.4f} "
        f"== brute force {slow.expected_value:.4f}"
    )


if __name__ == "__main__":
    main()
