"""Work accounting with the instrumentation layer.

Runs the same generated market through the engine in all three modes
with an enabled :class:`MetricsCollector`, then prints the measured work
counters side by side -- the counter-derived version of the paper's
shared-vs-unshared comparison -- plus a per-round trace excerpt and a
JSON dump.

Run:  python examples/instrumented_engine.py
"""

from __future__ import annotations

from repro.engine import SharedAuctionEngine
from repro.instrument import MetricsCollector, TraceRing, names
from repro.metrics.tables import WORK_COLUMN_NAMES, ExperimentTable, work_columns
from repro.workloads.generator import MarketConfig, generate_market

ROUNDS = 20


def main() -> None:
    market = generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=4,
            specialists_per_category=12,
            generalists=15,
            generalist_categories=2,
            median_budget_cents=5_000,
            seed=11,
        )
    )

    table = ExperimentTable(
        f"Measured work over {ROUNDS} rounds (identical outcomes)",
        ["mode", *WORK_COLUMN_NAMES, "revenue ($)"],
    )
    collectors = {}
    reports = {}
    for mode in ("shared", "shared-sort", "unshared"):
        collector = MetricsCollector(trace=TraceRing(256))
        engine = SharedAuctionEngine(
            market.advertisers,
            slot_factors=[0.3, 0.2, 0.1],
            search_rates=market.search_rates,
            mode=mode,
            seed=7,
            collector=collector,
        )
        report = engine.run(ROUNDS)
        collectors[mode] = collector
        reports[mode] = report
        table.add(mode, *work_columns(collector), report.revenue_cents / 100)
    table.show()

    # Sharing changes the work, never the auction.
    assert (
        reports["shared"].revenue_cents
        == reports["shared-sort"].revenue_cents
        == reports["unshared"].revenue_cents
    )

    shared = collectors["shared"]
    print(
        f"\nshared plan: {shared.counter(names.PLAN_NODES)} nodes "
        f"materialized, {shared.counter(names.PLAN_CACHE_HITS)} round-memo "
        f"hits; busiest node merged "
        f"{max(shared.keyed(names.PLAN_NODE_MERGES).values())} times"
    )
    timer = shared.timers[names.ENGINE_ROUND_TIMER]
    print(
        f"round timer: {timer.count} rounds, "
        f"{timer.total_s / timer.count * 1e3:.2f} ms/round mean"
    )

    print("\nlast three trace events (shared mode):")
    for event in shared.trace.events()[-3:]:
        print(f"  #{event.seq} {event.name} {event.fields}")

    path = "instrumented_engine_metrics.json"
    shared.dump(path)
    print(f"\nfull counters + trace written to {path}")


if __name__ == "__main__":
    main()
