"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import InvalidAuctionError


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_engine_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "--mode", "warp"])

    def test_trace_capacity_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "--trace-capacity", "0"])
        assert "must be positive" in capsys.readouterr().err


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Figures 1-3" in out
        assert "A" in out and "B" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "greedy shared" in out

    def test_shoes_small(self, capsys):
        assert main(["shoes", "--general", "10", "--sports", "4", "--fashion", "3"]) == 0
        out = capsys.readouterr().out
        assert "scans" in out

    def test_gaming(self, capsys):
        assert main(["gaming", "--rounds", "30", "--delay", "3"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "throttled" in out

    def test_engine(self, capsys):
        assert main(["engine", "--rounds", "5", "--mode", "unshared"]) == 0
        out = capsys.readouterr().out
        assert "Engine run" in out

    @pytest.mark.parametrize("mode", ["shared", "unshared", "shared-sort"])
    def test_engine_trace_json(self, capsys, tmp_path, mode):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "engine",
                    "--rounds",
                    "4",
                    "--mode",
                    mode,
                    "--trace-json",
                    str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Work counters" in out
        assert f"written to {trace}" in out
        payload = json.loads(trace.read_text())
        assert payload["counters"]["engine.rounds"] == 4
        assert payload["timers"]["engine.round_seconds"]["count"] == 4
        round_events = [
            e for e in payload["trace"]["events"] if e["name"] == "engine.round"
        ]
        assert len(round_events) == 4
        if mode == "shared":
            assert payload["counters"]["plan.nodes"] > 0
        elif mode == "unshared":
            assert payload["counters"]["topk.scans"] > 0
        else:
            assert payload["counters"]["ta.runs"] > 0
            assert payload["gauges"]["ta.stop_depth"] >= 1

    def test_engine_exec_cache(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "engine",
                    "--rounds",
                    "8",
                    "--mode",
                    "shared",
                    "--exec-cache",
                    "--trace-json",
                    str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+exec-cache" in out
        payload = json.loads(trace.read_text())
        assert payload["counters"]["plan.nodes_reused"] > 0
        assert payload["gauges"]["plan.cache_resident"] > 0

    def test_engine_exec_cache_requires_shared_mode(self):
        with pytest.raises(InvalidAuctionError, match="exec_cache"):
            main(["engine", "--rounds", "2", "--mode", "unshared", "--exec-cache"])

    def test_engine_sort_cache(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "engine",
                    "--rounds",
                    "8",
                    "--mode",
                    "shared-sort",
                    "--sort-cache",
                    "--sort-planner",
                    "naive",
                    "--trace-json",
                    str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+sort-cache" in out
        payload = json.loads(trace.read_text())
        assert payload["counters"]["sort.streams_reused"] > 0
        assert payload["counters"]["sort.pairs_scored"] > 0

    def test_engine_sort_cache_requires_shared_sort_mode(self):
        with pytest.raises(InvalidAuctionError, match="sort_cache"):
            main(["engine", "--rounds", "2", "--mode", "shared", "--sort-cache"])

    def test_engine_trace_capacity_bounds_ring(self, tmp_path):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "engine",
                    "--rounds",
                    "6",
                    "--trace-json",
                    str(trace),
                    "--trace-capacity",
                    "2",
                ]
            )
            == 0
        )
        payload = json.loads(trace.read_text())
        assert len(payload["trace"]["events"]) <= 2
        assert payload["trace"]["dropped"] > 0

    def test_engine_trace_json_unwritable_path_fails_fast(self, capsys):
        assert (
            main(
                [
                    "engine",
                    "--rounds",
                    "2",
                    "--trace-json",
                    "/nonexistent-dir/trace.json",
                ]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "cannot write trace" in captured.err
        assert "Engine run" not in captured.out  # nothing ran

    def test_engine_without_trace_has_no_collector_output(self, capsys):
        assert main(["engine", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Work counters" not in out

    def test_shoes_seed_changes_scores_not_structure(self, capsys):
        args = ["shoes", "--general", "10", "--sports", "4", "--fashion", "3"]
        assert main(args + ["--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(args + ["--seed", "1"]) == 0
        second = capsys.readouterr().out
        assert first == second  # same seed reproduces the run exactly
        assert "scans" in first

    def test_plan_to_stdout(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "queries": {"p": ["a", "b"], "q": ["b", "c"]},
                    "search_rates": {"p": 0.5},
                }
            )
        )
        assert main(["plan", str(spec)]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["version"] == 1

    def test_plan_to_file_round_trips(self, capsys, tmp_path):
        from repro.plans.serialize import loads

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"queries": {"p": ["a", "b", "c"]}}))
        out_path = tmp_path / "plan.json"
        assert main(["plan", str(spec), "--output", str(out_path)]) == 0
        plan = loads(out_path.read_text())
        assert plan.total_cost == 2


class TestThrottleFlags:
    def test_engine_bounded_throttle_with_cache(self, capsys):
        assert (
            main(
                [
                    "engine", "--rounds", "3", "--mode", "unshared",
                    "--throttle-mode", "bounded", "--throttle-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+bounded-throttle" in out
        assert "+throttle-cache" in out

    def test_engine_throttle_cache_alone(self, capsys):
        assert (
            main(
                [
                    "engine", "--rounds", "3", "--mode", "shared",
                    "--throttle-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+throttle-cache" in out
        assert "+bounded-throttle" not in out

    def test_engine_bounded_rejects_exec_cache(self, capsys):
        assert (
            main(
                [
                    "engine", "--rounds", "2", "--mode", "shared",
                    "--exec-cache", "--throttle-mode", "bounded",
                ]
            )
            == 1
        )
        assert "bounded" in capsys.readouterr().err

    def test_engine_bounded_rejects_sort_cache(self, capsys):
        assert (
            main(
                [
                    "engine", "--rounds", "2", "--mode", "shared-sort",
                    "--sort-cache", "--throttle-mode", "bounded",
                ]
            )
            == 1
        )
        assert "bounded" in capsys.readouterr().err

    def test_engine_rejects_unknown_throttle_mode(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["engine", "--throttle-mode", "sideways"]
            )

    def test_gaming_at_scale(self, capsys):
        assert (
            main(
                [
                    "gaming", "--at-scale", "40", "--honest", "10",
                    "--rounds", "6", "--delay", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Gaming at scale" in out
        assert "revenue loss" in out
        assert "off" in out and "on" in out

    def test_gaming_at_scale_rejects_zero_attackers(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gaming", "--at-scale", "0"])


class TestLayoutAndWorkerFlags:
    def test_engine_columnar_layout(self, capsys):
        pytest.importorskip("numpy")
        assert (
            main(["engine", "--rounds", "4", "--layout", "columnar"]) == 0
        )
        out = capsys.readouterr().out
        assert "+columnar" in out

    def test_engine_columnar_matches_object_revenue(self, capsys):
        pytest.importorskip("numpy")
        outputs = {}
        for layout in ("object", "columnar"):
            assert (
                main(
                    [
                        "engine", "--rounds", "5", "--seed", "3",
                        "--layout", layout,
                    ]
                )
                == 0
            )
            outputs[layout] = capsys.readouterr().out
        revenue = {
            layout: out.splitlines()[-1].split()[-2]
            for layout, out in outputs.items()
        }
        assert revenue["object"] == revenue["columnar"]

    def test_engine_workers_runs_sharded(self, capsys):
        pytest.importorskip("numpy")
        assert (
            main(
                [
                    "engine", "--rounds", "4", "--workers", "2",
                    "--layout", "columnar",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Sharded run" in out
        assert "+workers=2" in out

    def test_engine_columnar_serve(self, capsys):
        # The serving loop runs natively on the columnar layout.
        pytest.importorskip("numpy")
        assert (
            main(
                [
                    "engine", "--serve", "--queries", "40",
                    "--layout", "columnar",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Serving run" in out
        assert "+columnar" in out

    def test_engine_columnar_exec_cache(self, capsys):
        # exec_cache is columnar-native: the fragment executor keeps
        # its lists across rounds instead of falling back to objects.
        pytest.importorskip("numpy")
        assert (
            main(
                [
                    "engine", "--rounds", "5", "--layout", "columnar",
                    "--exec-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+columnar" in out and "+exec-cache" in out

    def test_engine_columnar_sort_cache_serving(self, capsys):
        # The headline combination: per-query serving with the
        # columnar incremental sort cache on.
        pytest.importorskip("numpy")
        assert (
            main(
                [
                    "engine", "--serve", "--queries", "40",
                    "--mode", "shared-sort", "--layout", "columnar",
                    "--sort-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+columnar" in out and "+sort-cache" in out

    def test_layout_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "--layout", "rowwise"])

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "--workers", "0"])

    def test_columnar_rejects_bounded_throttle(self, capsys):
        assert (
            main(
                [
                    "engine", "--layout", "columnar",
                    "--throttle-mode", "bounded",
                ]
            )
            == 1
        )
        assert "bounded" in capsys.readouterr().err

    def test_workers_reject_serve(self, capsys):
        assert main(["engine", "--workers", "2", "--serve"]) == 1
        assert "--serve" in capsys.readouterr().err

    def test_workers_reject_trace_json(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.json")
        assert (
            main(["engine", "--workers", "2", "--trace-json", trace]) == 1
        )
        assert "--trace-json" in capsys.readouterr().err
