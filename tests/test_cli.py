"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_engine_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "--mode", "warp"])


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Figures 1-3" in out
        assert "A" in out and "B" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "greedy shared" in out

    def test_shoes_small(self, capsys):
        assert main(["shoes", "--general", "10", "--sports", "4", "--fashion", "3"]) == 0
        out = capsys.readouterr().out
        assert "scans" in out

    def test_gaming(self, capsys):
        assert main(["gaming", "--rounds", "30", "--delay", "3"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "throttled" in out

    def test_engine(self, capsys):
        assert main(["engine", "--rounds", "5", "--mode", "unshared"]) == 0
        out = capsys.readouterr().out
        assert "Engine run" in out

    def test_plan_to_stdout(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "queries": {"p": ["a", "b"], "q": ["b", "c"]},
                    "search_rates": {"p": 0.5},
                }
            )
        )
        assert main(["plan", str(spec)]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["version"] == 1

    def test_plan_to_file_round_trips(self, capsys, tmp_path):
        from repro.plans.serialize import loads

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"queries": {"p": ["a", "b", "c"]}}))
        out_path = tmp_path / "plan.json"
        assert main(["plan", str(spec), "--output", str(out_path)]) == 0
        plan = loads(out_path.read_text())
        assert plan.total_cost == 2
