"""Property suite for the seeded traffic generator.

Three families of properties, each over hypothesis-drawn parameters:

- *Determinism*: the trace is a pure function of
  ``(phrases, rate_qps, zipf_exponent, seed)`` -- two generators with
  equal parameters produce identical arrival sequences, and the stream
  is oblivious to how it is consumed (iterator vs ``take``).
- *Popularity*: empirical phrase frequencies are monotone in Zipf rank
  (checked with a skew/sample-size combination that makes rank
  inversions statistically negligible, so the property holds for every
  drawn seed rather than merely on average).
- *Arrivals*: inter-arrival gaps are strictly positive, arrival times
  strictly increase, and the empirical mean gap is consistent with
  ``1 / rate_qps``.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.serving import TrafficGenerator

PHRASES = ["alpha", "beta", "gamma", "delta"]


class TestDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=0.5, max_value=500.0),
        exponent=st.floats(min_value=0.0, max_value=3.0),
        count=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_trace(self, seed, rate, exponent, count):
        first = TrafficGenerator(PHRASES, rate, exponent, seed)
        second = TrafficGenerator(PHRASES, rate, exponent, seed)
        assert first.take(count) == second.take(count)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_iterator_and_take_agree(self, seed):
        by_take = TrafficGenerator(PHRASES, 10.0, 1.0, seed).take(50)
        by_iter = list(
            itertools.islice(TrafficGenerator(PHRASES, 10.0, 1.0, seed), 50)
        )
        assert by_take == by_iter

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_indices_are_arrival_order(self, seed):
        arrivals = TrafficGenerator(PHRASES, 10.0, 1.0, seed).take(30)
        assert [a.index for a in arrivals] == list(range(30))

    def test_different_seeds_differ(self):
        # Not a theorem, but 100 queries colliding across seeds would
        # mean the seed is not reaching the draws at all.
        a = TrafficGenerator(PHRASES, 10.0, 1.0, seed=1).take(100)
        b = TrafficGenerator(PHRASES, 10.0, 1.0, seed=2).take(100)
        assert a != b


class TestPopularity:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_frequencies_monotone_in_zipf_rank(self, seed):
        # exponent 2.0 over 4 phrases gives expected shares of roughly
        # 70/18/8/4%; at n=2000 the rank gaps are tens of standard
        # deviations wide, so strict monotonicity holds for every seed.
        traffic = TrafficGenerator(PHRASES, 50.0, 2.0, seed)
        counts = {phrase: 0 for phrase in PHRASES}
        for arrival in traffic.take(2000):
            counts[arrival.phrase] += 1
        observed = [counts[phrase] for phrase in PHRASES]
        assert observed == sorted(observed, reverse=True)
        assert observed[0] > observed[-1]

    def test_zero_exponent_is_uniformish(self):
        traffic = TrafficGenerator(PHRASES, 50.0, 0.0, seed=3)
        counts = {phrase: 0 for phrase in PHRASES}
        for arrival in traffic.take(4000):
            counts[arrival.phrase] += 1
        for phrase in PHRASES:
            assert 800 <= counts[phrase] <= 1200  # 1000 expected

    def test_weights_monotone_by_construction(self):
        traffic = TrafficGenerator(PHRASES, 1.0, 1.3, seed=0)
        assert list(traffic.weights) == sorted(traffic.weights, reverse=True)

    def test_from_search_rates_ranks_by_rate_then_name(self):
        traffic = TrafficGenerator.from_search_rates(
            {"low": 0.1, "tie_b": 0.5, "tie_a": 0.5, "top": 0.9},
            rate_qps=10.0,
        )
        assert traffic.phrases == ("top", "tie_a", "tie_b", "low")


class TestArrivals:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=0.5, max_value=500.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_gaps_positive_and_times_increase(self, seed, rate):
        arrivals = TrafficGenerator(PHRASES, rate, 1.0, seed).take(200)
        previous = 0.0
        for arrival in arrivals:
            assert arrival.arrival_time > previous
            previous = arrival.arrival_time

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mean_gap_consistent_with_rate(self, seed):
        rate = 40.0
        n = 3000
        arrivals = TrafficGenerator(PHRASES, rate, 1.0, seed).take(n)
        mean_gap = arrivals[-1].arrival_time / n
        # Exponential gaps: sd of the mean is (1/rate)/sqrt(n) ~ 0.046
        # of the mean, so +-15% is a >3-sigma corridor.
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.15)


class TestValidation:
    def test_rejects_empty_phrases(self):
        with pytest.raises(WorkloadError, match="at least one phrase"):
            TrafficGenerator([], 1.0)

    def test_rejects_duplicate_phrases(self):
        with pytest.raises(WorkloadError, match="distinct"):
            TrafficGenerator(["a", "a"], 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(WorkloadError, match="rate"):
            TrafficGenerator(PHRASES, 0.0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(WorkloadError, match="exponent"):
            TrafficGenerator(PHRASES, 1.0, zipf_exponent=-0.5)

    def test_rejects_negative_take(self):
        with pytest.raises(WorkloadError, match="count"):
            TrafficGenerator(PHRASES, 1.0).take(-1)
