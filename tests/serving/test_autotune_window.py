"""Regression: autotuner window boundaries under per-query observation.

In the serving regime the :class:`CacheAutotuner` observes one window
entry per *query* rather than per batch round, so its warmup and
hysteresis boundaries sit right where steady-state serving operates:
tiny dirty fractions, one-phrase working sets, thousands of
observations.  These tests pin the exact off-by-one at the warmup edge
(``should_bypass`` must stay quiet through observation ``warmup - 1``
and may fire at exactly ``warmup``) and the closed hysteresis band
(a recommendation *exactly* ``hysteresis x current`` away is not
applied; one more is).
"""

from __future__ import annotations

import pytest

from repro.engine.autotune import CacheAutotuner
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names


class FakeCache:
    """Duck-typed stand-in: a capacity and a resize log."""

    def __init__(self, capacity=None):
        self.capacity = capacity
        self.resizes = []

    def resize(self, capacity):
        self.capacity = capacity
        self.resizes.append(capacity)


def observe_queries(tuner, fractions, population=10, working_set=3):
    for fraction in fractions:
        tuner.observe_round(
            int(round(fraction * population)), population, working_set
        )


class TestWarmupEdge:
    def test_silent_through_warmup_minus_one(self):
        """All-dirty queries must not trip the bypass before warmup --
        the first observations of a serving session are all-dirty by
        construction (cold cache) and must not poison the policy."""
        tuner = CacheAutotuner(bypass_threshold=0.5, warmup=4, window=8)
        observe_queries(tuner, [1.0, 1.0, 1.0])  # warmup - 1 observations
        assert tuner.dirty_fraction == 1.0
        assert not tuner.should_bypass()

    def test_fires_at_exactly_warmup(self):
        """The off-by-one this suite pins: observation number ``warmup``
        is the first one allowed to flip the decision."""
        tuner = CacheAutotuner(bypass_threshold=0.5, warmup=4, window=8)
        observe_queries(tuner, [1.0, 1.0, 1.0])
        assert not tuner.should_bypass()
        observe_queries(tuner, [1.0])  # the warmup-th observation
        assert tuner.should_bypass()

    def test_warmup_counts_window_occupancy_not_lifetime(self):
        """The guard reads the *window's* occupancy: with
        ``warmup > window`` the deque can never hold enough entries and
        the bypass is structurally disabled, no matter how many queries
        went by.  Serving sessions configuring per-query windows must
        keep ``warmup <= window`` for the policy to exist at all."""
        tuner = CacheAutotuner(bypass_threshold=0.5, warmup=5, window=3)
        observe_queries(tuner, [1.0] * 1000)
        assert tuner.rounds_observed == 1000
        assert not tuner.should_bypass()

    def test_threshold_is_inclusive(self):
        tuner = CacheAutotuner(bypass_threshold=0.5, warmup=2, window=4)
        observe_queries(tuner, [0.5, 0.5])
        assert tuner.dirty_fraction == 0.5
        assert tuner.should_bypass()
        quiet = CacheAutotuner(bypass_threshold=0.5, warmup=2, window=4)
        observe_queries(quiet, [0.5, 0.4])
        assert not quiet.should_bypass()

    def test_steady_state_serving_calms_the_policy(self):
        """A cold all-dirty start followed by calm per-query traffic
        slides the hot entries out of the window and re-enables caching."""
        tuner = CacheAutotuner(bypass_threshold=0.5, warmup=2, window=4)
        observe_queries(tuner, [1.0, 1.0, 1.0, 1.0])
        assert tuner.should_bypass()
        observe_queries(tuner, [0.0, 0.0, 0.1, 0.0])  # window fully replaced
        assert not tuner.should_bypass()

    def test_empty_population_counts_as_clean(self):
        tuner = CacheAutotuner(warmup=2, window=4)
        tuner.observe_round(0, 0, 0)
        tuner.observe_round(0, 0, 0)
        assert tuner.dirty_fraction == 0.0
        assert not tuner.should_bypass()


class TestHysteresisBand:
    def make_tuner(self, working_set, window=4, hysteresis=0.25):
        tuner = CacheAutotuner(
            window=window, warmup=2, slack=1.0, hysteresis=hysteresis
        )
        for _ in range(window):  # full window -> recommendation exists
            tuner.observe_round(0, 10, working_set)
        return tuner

    def test_no_recommendation_before_full_window(self):
        tuner = CacheAutotuner(window=4, warmup=2, slack=1.0)
        for _ in range(3):
            tuner.observe_round(0, 10, 50)
        assert tuner.recommended_capacity() is None
        assert tuner.maybe_resize(FakeCache(100)) is None

    def test_exactly_on_band_edge_is_not_applied(self):
        """abs(recommended - current) == current * hysteresis stays put:
        the band is closed."""
        cache = FakeCache(capacity=100)
        tuner = self.make_tuner(working_set=125)  # recommended == 125
        assert tuner.recommended_capacity() == 125
        assert tuner.maybe_resize(cache) is None
        assert cache.resizes == []
        low = self.make_tuner(working_set=75)  # recommended == 75
        assert low.maybe_resize(cache) is None
        assert cache.capacity == 100

    def test_one_past_band_edge_is_applied(self):
        cache = FakeCache(capacity=100)
        tuner = self.make_tuner(working_set=126)
        assert tuner.maybe_resize(cache) == 126
        assert cache.capacity == 126
        assert tuner.resizes == 1

    def test_unbounded_cache_always_accepts_first_bound(self):
        cache = FakeCache(capacity=None)
        tuner = self.make_tuner(working_set=3)
        assert tuner.maybe_resize(cache) == 3
        assert cache.capacity == 3

    def test_recommendation_floor_is_one(self):
        tuner = self.make_tuner(working_set=0)
        assert tuner.recommended_capacity() == 1

    def test_resizes_flow_to_collector(self):
        collector = MetricsCollector()
        tuner = CacheAutotuner(
            window=2, warmup=2, slack=1.0, hysteresis=0.0, collector=collector
        )
        tuner.observe_round(0, 10, 5)
        tuner.observe_round(0, 10, 5)
        tuner.maybe_resize(FakeCache(None))
        tuner.record_bypass()
        assert collector.counter(names.CACHE_AUTOTUNE_RESIZES) == 1
        assert collector.counter(names.CACHE_BYPASS_ROUNDS) == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bypass_threshold": 0.0},
            {"window": 0},
            {"warmup": 0},
            {"slack": 0.5},
            {"hysteresis": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(InvalidAuctionError):
            CacheAutotuner(**kwargs)
