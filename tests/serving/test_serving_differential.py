"""The serving/batch differential battery.

The serving loop's whole correctness argument is one theorem: serving a
query trace through :meth:`SharedAuctionEngine.serve_query` is
outcome-identical -- winners, prices, clicks, revenue, and the full
budget trajectory -- to replaying the same trace through the batch
engine as single-phrase rounds (:func:`singleton_rounds` is the
replay's vocabulary).  Both paths share the engine's stage methods but
compose them differently, and the caches change *when* invalidation
work happens (per query instead of per round), so the equivalence is a
real claim about the composition, not a tautology.

This suite checks the theorem empirically over 50 seeded markets per
engine configuration -- shared and shared-sort, each with its
cross-round cache off and on (``verify=True``, so any event-uncovered
staleness raises instead of silently diverging), and under the
columnar layout with its native caches (the per-query drain feeds the
row-granular dirty masks, so serving is where the vectorized kernels
and the incremental caches genuinely compose).
"""

from __future__ import annotations

import pytest

from repro.engine import SharedAuctionEngine
from repro.engine.rounds import TimestampedQuery, singleton_rounds
from repro.serving import ServingEngine, TrafficGenerator
from repro.workloads.generator import MarketConfig, generate_market

SEEDS = range(50)
QUERIES_PER_SEED = 30
SLOT_FACTORS = [0.3, 0.2]

try:
    import numpy
except ImportError:  # pragma: no cover - numpy ships with the package
    numpy = None

needs_numpy = pytest.mark.skipif(
    numpy is None, reason="columnar layout requires numpy"
)

CONFIGS = [
    pytest.param({"mode": "shared"}, id="shared-uncached"),
    pytest.param(
        {"mode": "shared", "exec_cache": True, "cache_verify": True},
        id="shared-exec-cache",
    ),
    pytest.param({"mode": "shared-sort"}, id="shared-sort-uncached"),
    pytest.param(
        {"mode": "shared-sort", "sort_cache": True, "cache_verify": True},
        id="shared-sort-cache",
    ),
    pytest.param(
        {
            "mode": "shared",
            "exec_cache": True,
            "cache_verify": True,
            "layout": "columnar",
        },
        id="columnar-exec-cache",
        marks=needs_numpy,
    ),
    pytest.param(
        {
            "mode": "shared-sort",
            "sort_cache": True,
            "cache_verify": True,
            "layout": "columnar",
        },
        id="columnar-sort-cache",
        marks=needs_numpy,
    ),
]


def small_market(seed: int):
    """A small budgeted market: budgets must move so the trajectory
    comparison is not vacuous."""
    return generate_market(
        MarketConfig(
            num_categories=2,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            median_budget_cents=1500,
            seed=seed,
        )
    )


def make_engine(market, seed: int, **kwargs) -> SharedAuctionEngine:
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=SLOT_FACTORS,
        search_rates=market.search_rates,
        seed=seed,
        **kwargs,
    )


def arrivals_for(market, seed: int):
    traffic = TrafficGenerator.from_search_rates(
        market.search_rates, rate_qps=100.0, zipf_exponent=1.2, seed=seed
    )
    return traffic.take(QUERIES_PER_SEED)


def serve_trace(market, arrivals, seed: int, **kwargs):
    """Serve the trace query-at-a-time; return the comparable outcome."""
    engine = make_engine(market, seed, **kwargs)
    traffic = TrafficGenerator.from_search_rates(
        market.search_rates, rate_qps=100.0, seed=seed
    )
    loop = ServingEngine(engine, traffic)
    outcomes = []
    trajectory = []
    for arrival in arrivals:
        report = loop.serve_one(arrival)
        outcomes.append(
            (
                arrival.phrase,
                report.allocation,
                report.revenue_cents,
                report.forgiven_cents,
                report.clicks,
            )
        )
        trajectory.append(engine.budget_manager.spent_snapshot())
    flush = engine.settle_remaining_clicks()
    return outcomes, trajectory, flush, engine.budget_manager.spent_snapshot()


def replay_trace(market, arrivals, seed: int, **kwargs):
    """Replay the same trace as single-phrase batch rounds."""
    engine = make_engine(market, seed, **kwargs)
    queries = (
        TimestampedQuery(arrival.arrival_time, arrival.phrase)
        for arrival in arrivals
    )
    outcomes = []
    trajectory = []
    for batch in singleton_rounds(queries):
        (phrase,) = batch.distinct_phrases
        assert batch.phrase_counts[phrase] == 1
        report = engine.run_round([phrase])
        outcomes.append(
            (
                phrase,
                report.allocations[phrase],
                report.revenue_cents,
                report.forgiven_cents,
                report.clicks,
            )
        )
        trajectory.append(engine.budget_manager.spent_snapshot())
    flush = engine.settle_remaining_clicks()
    return outcomes, trajectory, flush, engine.budget_manager.spent_snapshot()


@pytest.mark.parametrize("config", CONFIGS)
def test_serving_equals_singleton_batch_replay_over_50_seeds(config):
    """Winners, prices, click money, and budget trajectories agree
    query by query between the serving loop and the batch replay."""
    mismatches = []
    for seed in SEEDS:
        market = small_market(seed)
        arrivals = arrivals_for(market, seed)
        served = serve_trace(market, arrivals, seed, **config)
        replayed = replay_trace(market, arrivals, seed, **config)
        if served != replayed:
            mismatches.append(seed)
    assert mismatches == []


def test_trajectories_actually_move():
    """Anti-vacuity guard: the budgeted market spends money, so the
    trajectory comparison above is comparing something real."""
    market = small_market(0)
    arrivals = arrivals_for(market, 0)
    _, trajectory, _, final = serve_trace(market, arrivals, 0, mode="shared")
    assert final, "no advertiser spent anything; market too idle"
    assert trajectory[0] != trajectory[-1]


def test_serving_outcomes_agree_across_configs():
    """Every configuration serves the same trace identically -- modes,
    caches, and layouts change work, never outcomes."""
    market = small_market(7)
    arrivals = arrivals_for(market, 7)
    baseline = serve_trace(market, arrivals, 7, mode="shared")
    configs = [
        {"mode": "shared", "exec_cache": True},
        {"mode": "shared-sort"},
        {"mode": "shared-sort", "sort_cache": True},
    ]
    if numpy is not None:
        configs += [
            {"mode": "shared", "layout": "columnar", "exec_cache": True},
            {"mode": "shared-sort", "layout": "columnar", "sort_cache": True},
        ]
    for config in configs:
        assert serve_trace(market, arrivals, 7, **config) == baseline
