"""Serving-loop suite: differential equivalence, traffic properties,
latency oracles, autotuner window boundaries, loop units."""
