"""Unit suite for the serving loop itself.

Covers the pieces the differential battery treats as a black box: the
phrase-universe validation, per-query latency capture through an
injected clock, ``QueryServed`` publication on the change feed, the
per-query drain hand-off visible through the caches' ``pending_dirty``
accessors, report totals, and the ``serve.*`` gauge flush.
"""

from __future__ import annotations

import pytest

from repro.engine import SharedAuctionEngine
from repro.engine.changefeed import BidChanged
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names
from repro.serving import QueryArrival, ServingEngine, TrafficGenerator
from repro.workloads.generator import MarketConfig, generate_market


def small_market(seed=5):
    return generate_market(
        MarketConfig(
            num_categories=2,
            phrases_per_category=2,
            specialists_per_category=4,
            generalists=2,
            median_budget_cents=1500,
            seed=seed,
        )
    )


def make_engine(market, **kwargs):
    kwargs.setdefault("collector", MetricsCollector())
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2],
        search_rates=market.search_rates,
        seed=5,
        **kwargs,
    )


def phrases_of(market):
    return sorted(market.search_rates)


def make_traffic(market, seed=5):
    return TrafficGenerator.from_search_rates(
        market.search_rates, rate_qps=50.0, seed=seed
    )


class FakeClock:
    """Deterministic clock: each query takes exactly ``step`` seconds."""

    def __init__(self, step=0.002):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestConstruction:
    def test_rejects_traffic_phrases_unknown_to_engine(self):
        market = small_market()
        traffic = TrafficGenerator(["no-such-phrase"], rate_qps=1.0)
        with pytest.raises(InvalidAuctionError, match="no-such-phrase"):
            ServingEngine(make_engine(market), traffic)

    def test_engine_serve_query_rejects_unknown_phrase(self):
        engine = make_engine(small_market())
        with pytest.raises(InvalidAuctionError, match="no advertisers"):
            engine.serve_query("never-bid-on")

    def test_collector_is_the_engines(self):
        engine = make_engine(small_market())
        loop = ServingEngine(engine, make_traffic(small_market()))
        assert loop.collector is engine.collector


class TestServeOne:
    def test_latency_comes_from_the_injected_clock(self):
        market = small_market()
        engine = make_engine(market)
        loop = ServingEngine(
            engine, make_traffic(market), clock=FakeClock(step=0.002)
        )
        report = loop.serve_one(QueryArrival(0, 0.1, phrases_of(market)[0]))
        assert report.latency_seconds == pytest.approx(0.002)
        assert loop.latency.count == 1
        assert loop.queries_served == 1

    def test_query_report_reflects_the_engine_tick(self):
        market = small_market()
        engine = make_engine(market)
        loop = ServingEngine(engine, make_traffic(market))
        phrase = phrases_of(market)[0]
        report = loop.serve_one(QueryArrival(3, 1.25, phrase))
        assert report.query_index == 3
        assert report.phrase == phrase
        assert report.arrival_time == 1.25
        assert report.tick == 0  # first engine tick
        assert report.displays == len(report.allocation)
        assert all(len(triple) == 3 for triple in report.allocation)

    def test_serve_queries_counter_increments(self):
        market = small_market()
        engine = make_engine(market)
        loop = ServingEngine(engine, make_traffic(market))
        loop.serve_one(QueryArrival(0, 0.0, phrases_of(market)[0]))
        loop.serve_one(QueryArrival(1, 0.1, phrases_of(market)[1]))
        assert engine.collector.counter(names.SERVE_QUERIES) == 2

    def test_query_served_event_is_published_when_feed_is_active(self):
        market = small_market()
        engine = make_engine(market, exec_cache=True)  # cache activates feed
        subscription = engine.changefeed.subscribe(
            "observer", kinds=("query_served",)
        )
        loop = ServingEngine(engine, make_traffic(market))
        loop.serve_one(QueryArrival(9, 0.5, phrases_of(market)[0]))
        events = subscription.drain()
        assert [(e.query_index, e.phrase) for e in events] == [
            (9, phrases_of(market)[0])
        ]
        assert events[0].dirty_advertisers == frozenset()

    def test_no_publish_on_inactive_feed(self):
        market = small_market()
        engine = make_engine(market)  # no subscriber -> inactive feed
        loop = ServingEngine(engine, make_traffic(market))
        loop.serve_one(QueryArrival(0, 0.0, phrases_of(market)[0]))
        assert engine.changefeed.events_published == 0


class TestPerQueryDrain:
    def test_exec_cache_pending_dirty_holds_until_phrase_occurs(self):
        """An event for an advertiser off the served phrase survives the
        per-query drain until that advertiser's phrase is served."""
        market = small_market()
        engine = make_engine(market, exec_cache=True)
        loop = ServingEngine(engine, make_traffic(market))
        phrase_a = phrases_of(market)[0]
        loop.serve_one(QueryArrival(0, 0.0, phrase_a))
        only_elsewhere = next(
            advertiser_id
            for phrase, ids in engine.phrase_advertisers.items()
            for advertiser_id in ids
            if advertiser_id not in engine.phrase_advertisers[phrase_a]
        )
        home_phrase = next(
            phrase
            for phrase, ids in engine.phrase_advertisers.items()
            if only_elsewhere in ids
        )
        engine.changefeed.publish(BidChanged(only_elsewhere))
        loop.serve_one(QueryArrival(1, 0.1, phrase_a))
        assert only_elsewhere in engine._executor.pending_dirty
        loop.serve_one(QueryArrival(2, 0.2, home_phrase))
        assert only_elsewhere not in engine._executor.pending_dirty

    def test_sort_cache_pending_dirty_mirrors_exec_semantics(self):
        market = small_market()
        engine = make_engine(market, mode="shared-sort", sort_cache=True)
        loop = ServingEngine(engine, make_traffic(market))
        phrase_a = phrases_of(market)[0]
        loop.serve_one(QueryArrival(0, 0.0, phrase_a))
        only_elsewhere = next(
            advertiser_id
            for phrase, ids in engine.phrase_advertisers.items()
            for advertiser_id in ids
            if advertiser_id not in engine.phrase_advertisers[phrase_a]
        )
        home_phrase = next(
            phrase
            for phrase, ids in engine.phrase_advertisers.items()
            if only_elsewhere in ids
        )
        engine.changefeed.publish(BidChanged(only_elsewhere))
        loop.serve_one(QueryArrival(1, 0.1, phrase_a))
        assert only_elsewhere in engine._sort_cache.pending_dirty
        loop.serve_one(QueryArrival(2, 0.2, home_phrase))
        assert only_elsewhere not in engine._sort_cache.pending_dirty


class TestRun:
    def test_totals_are_the_sum_of_history_plus_flush(self):
        market = small_market()
        engine = make_engine(market)
        loop = ServingEngine(engine, make_traffic(market))
        report = loop.run(25)
        assert report.queries == 25
        assert len(report.history) == 25
        assert report.displays == sum(q.displays for q in report.history)
        # The flush settles clicks still in flight at session end, so
        # session money can only exceed the per-query sums.
        assert report.revenue_cents >= sum(
            q.revenue_cents for q in report.history
        )
        assert report.clicks >= sum(q.clicks for q in report.history)

    def test_keep_history_false_keeps_totals_but_no_reports(self):
        market = small_market()
        with_history = ServingEngine(
            make_engine(market), make_traffic(market)
        ).run(20)
        without = ServingEngine(
            make_engine(market), make_traffic(market), keep_history=False
        ).run(20)
        assert without.history == []
        assert without.queries == with_history.queries
        assert without.revenue_cents == with_history.revenue_cents

    def test_rejects_negative_num_queries(self):
        market = small_market()
        loop = ServingEngine(make_engine(market), make_traffic(market))
        with pytest.raises(InvalidAuctionError, match="num_queries"):
            loop.run(-1)

    def test_zero_queries_is_a_clean_empty_session(self):
        market = small_market()
        loop = ServingEngine(make_engine(market), make_traffic(market))
        report = loop.run(0)
        assert report.queries == 0
        assert report.latency.count == 0

    def test_null_collector_leaves_counters_none(self):
        market = small_market()
        engine = make_engine(market, collector=None)
        report = ServingEngine(engine, make_traffic(market)).run(5)
        assert report.counters is None

    def test_outstanding_debt_stays_bounded_over_long_sessions(self):
        """Regression: the default ledger horizon tracks the click
        horizon, so outstanding ads are pruned once their click can no
        longer arrive.  An unbounded ledger made the exact throttle's
        per-tick cost grow with session length (quadratic serving)."""
        market = small_market()
        engine = make_engine(market, collector=None)
        loop = ServingEngine(
            engine, make_traffic(market), keep_history=False
        )
        loop.run(200)
        counts = engine.budget_manager.outstanding_counts()
        # An advertiser is displayed at most once per tick, so its live
        # debt can never exceed the ledger horizon (click horizon + 1).
        assert counts, "no outstanding debt accumulated; test is vacuous"
        assert max(counts.values()) <= engine.click_model.horizon_rounds + 1

    def test_latency_gauges_flushed_from_fake_clock(self):
        market = small_market()
        engine = make_engine(market)
        loop = ServingEngine(
            engine, make_traffic(market), clock=FakeClock(step=0.004)
        )
        report = loop.run(10)
        gauges = engine.collector.gauges
        assert gauges[names.SERVE_P50_MS] == pytest.approx(4.0)
        assert gauges[names.SERVE_P99_MS] == pytest.approx(4.0)
        assert gauges[names.SERVE_QPS] == pytest.approx(250.0)
        assert report.latency.qps == pytest.approx(250.0)
