"""Exact-percentile oracle tests for the latency recorder.

The recorder promises *exact* nearest-rank percentiles; this suite pins
the arithmetic against an independent sorted-list oracle (including the
n=1, all-ties, and small-n p99 edges hypothesis loves to bend), and
pins the serving determinism contract: two identical serving sessions
record identical counters -- wall-derived figures live in gauges only.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import SharedAuctionEngine
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names
from repro.serving import (
    LatencyRecorder,
    ServingEngine,
    TrafficGenerator,
    nearest_rank_percentile,
)
from repro.workloads.generator import MarketConfig, generate_market


def oracle(samples, p):
    """Straight-from-the-definition nearest-rank oracle."""
    ordered = sorted(samples)
    return ordered[math.ceil(p / 100.0 * len(ordered)) - 1]


class TestNearestRank:
    def test_single_sample_is_every_percentile(self):
        for p in (0.5, 50.0, 99.0, 100.0):
            assert nearest_rank_percentile([0.125], p) == 0.125

    def test_p99_of_two_samples_is_the_larger(self):
        assert nearest_rank_percentile([1.0, 2.0], 99.0) == 2.0

    def test_p50_of_two_samples_is_the_smaller(self):
        # ceil(0.5 * 2) = 1 -> first element; nearest-rank, not midpoint.
        assert nearest_rank_percentile([1.0, 2.0], 50.0) == 1.0

    def test_all_ties(self):
        assert nearest_rank_percentile([3.0] * 7, 50.0) == 3.0
        assert nearest_rank_percentile([3.0] * 7, 99.0) == 3.0

    def test_p100_is_the_maximum(self):
        assert nearest_rank_percentile([1.0, 5.0, 2.0][:2] + [9.0], 100.0) == 9.0

    def test_small_n_p99_hits_last_element(self):
        # For n < 100, ceil(.99 n) == n: p99 is the max until the
        # sample count crosses 100.
        for n in (1, 2, 10, 99):
            samples = [float(i) for i in range(n)]
            assert nearest_rank_percentile(samples, 99.0) == float(n - 1)
        samples = [float(i) for i in range(101)]
        assert nearest_rank_percentile(samples, 99.0) == 99.0

    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=300
        ),
        p=st.floats(min_value=0.001, max_value=100.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_oracle(self, samples, p):
        assert nearest_rank_percentile(sorted(samples), p) == oracle(samples, p)

    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100
        ),
        p=st.floats(min_value=0.001, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_result_is_an_actual_sample(self, samples, p):
        assert nearest_rank_percentile(sorted(samples), p) in samples

    def test_rejects_empty_and_bad_p(self):
        with pytest.raises(InvalidAuctionError, match="no samples"):
            nearest_rank_percentile([], 50.0)
        for p in (0.0, -1.0, 100.5):
            with pytest.raises(InvalidAuctionError, match="percentile"):
                nearest_rank_percentile([1.0], p)


class TestRecorder:
    def test_summary_matches_oracle(self):
        recorder = LatencyRecorder()
        samples = [0.004, 0.001, 0.009, 0.001, 0.030, 0.002]
        for sample in samples:
            recorder.record(sample)
        summary = recorder.summary()
        assert summary.count == 6
        assert summary.total_seconds == pytest.approx(sum(samples))
        assert summary.p50_seconds == oracle(samples, 50.0)
        assert summary.p99_seconds == oracle(samples, 99.0)
        assert summary.qps == pytest.approx(6 / sum(samples))

    def test_percentile_delegates_exactly(self):
        recorder = LatencyRecorder()
        for sample in (5.0, 1.0, 3.0):
            recorder.record(sample)
        assert recorder.percentile(50.0) == oracle([5.0, 1.0, 3.0], 50.0)

    def test_empty_summary_is_zeros(self):
        summary = LatencyRecorder().summary()
        assert (summary.count, summary.total_seconds, summary.qps) == (0, 0.0, 0.0)

    def test_zero_cost_samples_give_zero_qps_not_crash(self):
        recorder = LatencyRecorder()
        recorder.record(0.0)
        assert recorder.summary().qps == 0.0

    def test_rejects_negative_sample(self):
        with pytest.raises(InvalidAuctionError, match="non-negative"):
            LatencyRecorder().record(-0.001)

    def test_recorder_stays_usable_after_summary(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        first = recorder.summary()
        recorder.record(3.0)
        second = recorder.summary()
        assert first.count == 1 and second.count == 2
        assert second.p99_seconds == 3.0


def run_serving_session(seed=11, queries=40):
    market = generate_market(
        MarketConfig(
            num_categories=2,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            median_budget_cents=1500,
            seed=seed,
        )
    )
    engine = SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2],
        search_rates=market.search_rates,
        mode="shared",
        exec_cache=True,
        seed=seed,
        collector=MetricsCollector(),
    )
    traffic = TrafficGenerator.from_search_rates(
        market.search_rates, rate_qps=100.0, seed=seed
    )
    loop = ServingEngine(engine, traffic)
    return loop.run(queries)


class TestServingCounterDeterminism:
    def test_identical_sessions_record_identical_counters(self):
        first = run_serving_session()
        second = run_serving_session()
        assert first.counters is not None
        assert first.counters == second.counters
        assert first.counters[names.SERVE_QUERIES] == 40
        assert first.counters[names.ENGINE_ROUNDS] == 40

    def test_wall_derived_metrics_are_gauges_not_counters(self):
        report = run_serving_session(queries=10)
        for metric in (names.SERVE_P50_MS, names.SERVE_P99_MS, names.SERVE_QPS):
            assert metric not in report.counters
