"""Tests for the generic plan executor and composite aggregates."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.aggregates.composite import MeanAggregate, VarianceAggregate
from repro.aggregates.executor import GenericPlanExecutor
from repro.aggregates.operators import (
    AggregateOperator,
    count_operator,
    max_operator,
    min_operator,
    sum_operator,
    top_k_operator,
)
from repro.algebra.axioms import Axiom, AxiomProfile
from repro.errors import InvalidPlanError
from repro.plans.dag import Plan
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from tests.conftest import query_families


@pytest.fixture
def instance():
    return SharedAggregationInstance(
        [
            AggregateQuery("pq", ["a", "b", "c"], 0.5),
            AggregateQuery("qr", ["b", "c", "d"], 0.5),
        ]
    )


SCORES = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}


class TestGenericExecutor:
    def test_max_over_shared_plan(self, instance):
        plan = greedy_shared_plan(instance)
        executor = GenericPlanExecutor(plan, max_operator())
        answers = executor.run_round(SCORES)
        assert answers["pq"] == 3.0
        assert answers["qr"] == 4.0

    def test_min_over_shared_plan(self, instance):
        plan = greedy_shared_plan(instance)
        answers = GenericPlanExecutor(plan, min_operator()).run_round(SCORES)
        assert answers["pq"] == 1.0
        assert answers["qr"] == 2.0

    def test_sum_requires_disjoint_plan(self, instance):
        # Force a plan with overlapping operands: {a,b} merged with {b,c}.
        plan = Plan(instance)
        ab = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        bc = plan.add_internal(plan.leaf_of("b"), plan.leaf_of("c"))
        plan.add_internal(ab, bc)  # pq = {a,b,c} via overlap
        plan.add_internal(bc, plan.leaf_of("d"))
        with pytest.raises(InvalidPlanError):
            GenericPlanExecutor(plan, sum_operator())
        # Idempotent operators accept the same plan.
        GenericPlanExecutor(plan, max_operator())

    def test_sum_over_disjoint_plan(self, instance):
        plan = greedy_shared_plan(instance, require_disjoint=True)
        answers = GenericPlanExecutor(plan, sum_operator()).run_round(SCORES)
        assert answers["pq"] == pytest.approx(6.0)
        assert answers["qr"] == pytest.approx(9.0)

    def test_count_over_disjoint_plan(self, instance):
        plan = greedy_shared_plan(instance, require_disjoint=True)
        answers = GenericPlanExecutor(plan, count_operator()).run_round(SCORES)
        assert answers == {"pq": 3, "qr": 3}

    def test_topk_matches_specialized_executor(self, instance):
        from repro.plans.executor import PlanExecutor

        plan = greedy_shared_plan(instance)
        generic = GenericPlanExecutor(plan, top_k_operator(2)).run_round(SCORES)
        special = PlanExecutor(plan, 2).run_round(SCORES)
        assert generic == special.answers

    def test_non_commutative_operator_rejected(self, instance):
        plan = greedy_shared_plan(instance)
        first = AggregateOperator(
            name="left",
            combine=lambda a, b: a,
            lift=lambda s, _i: s,
            profile=AxiomProfile({Axiom.A1, Axiom.A3}),
        )
        with pytest.raises(InvalidPlanError):
            GenericPlanExecutor(plan, first)

    def test_missing_score_raises(self, instance):
        plan = greedy_shared_plan(instance)
        executor = GenericPlanExecutor(plan, max_operator())
        with pytest.raises(InvalidPlanError):
            executor.run_round({"a": 1.0})

    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families(max_queries=4, max_vars=6))
    def test_disjoint_plans_compute_exact_sums(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = greedy_shared_plan(instance, require_disjoint=True)
        scores = {v: (hash(v) % 50) / 7.0 for v in instance.variables}
        answers = GenericPlanExecutor(plan, sum_operator()).run_round(scores)
        for query in instance.queries:
            expected = sum(scores[v] for v in query.variables)
            assert answers[query.name] == pytest.approx(expected)


class TestComposites:
    def test_mean(self, instance):
        plan = greedy_shared_plan(instance, require_disjoint=True)
        means = MeanAggregate(plan).run_round(SCORES)
        assert means["pq"] == pytest.approx(2.0)
        assert means["qr"] == pytest.approx(3.0)

    def test_variance(self, instance):
        plan = greedy_shared_plan(instance, require_disjoint=True)
        variances = VarianceAggregate(plan).run_round(SCORES)
        # pq scores 1,2,3: variance 2/3; qr scores 2,3,4: variance 2/3.
        assert variances["pq"] == pytest.approx(2 / 3)
        assert variances["qr"] == pytest.approx(2 / 3)

    def test_variance_non_negative_under_cancellation(self):
        instance = SharedAggregationInstance.from_sets({"q": ["a", "b"]})
        plan = greedy_shared_plan(instance, require_disjoint=True)
        variances = VarianceAggregate(plan).run_round(
            {"a": 1e6, "b": 1e6}
        )
        assert variances["q"] >= 0.0
