"""Tests for concrete aggregation operators and their axiom profiles.

The declared profile of every operator is validated against the algebra
layer by projecting the operator onto small finite carriers and checking
the axioms exhaustively -- the abstraction and the concrete operators
must agree or the Fig. 5 complexity predictions would be wrong.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates.operators import (
    AggregateOperator,
    BloomFilter,
    bloom_intersection_operator,
    bloom_union_operator,
    count_operator,
    max_operator,
    min_operator,
    product_operator,
    sum_operator,
    top_k_operator,
)
from repro.algebra.axioms import Axiom, AxiomProfile
from repro.algebra.complexity import Complexity, complexity_of
from repro.algebra.magmas import FiniteMagma, satisfied_axioms
from repro.errors import AlgebraError

ALL_OPERATORS = [
    sum_operator(),
    count_operator(),
    product_operator(),
    max_operator(),
    min_operator(),
    top_k_operator(3),
    bloom_union_operator(width=16),
    bloom_intersection_operator(width=16),
]


class TestFold:
    def test_sum_fold(self):
        op = sum_operator()
        values = [op.lift(score, i) for i, score in enumerate([1.0, 2.5, 3.0])]
        assert op.fold(values) == pytest.approx(6.5)

    def test_empty_fold_uses_identity(self):
        assert sum_operator().fold([]) == 0.0
        assert count_operator().fold([]) == 0

    def test_empty_fold_without_identity_raises(self):
        op = AggregateOperator(
            name="first",
            combine=lambda a, b: a,
            lift=lambda s, _i: s,
            profile=AxiomProfile({Axiom.A1, Axiom.A3}),
        )
        with pytest.raises(AlgebraError):
            op.fold([])

    def test_identity_profile_consistency_enforced(self):
        with pytest.raises(AlgebraError):
            AggregateOperator(
                name="bad",
                combine=lambda a, b: a,
                lift=lambda s, _i: s,
                profile=AxiomProfile({Axiom.A2}),
                identity=None,
            )

    def test_count_ignores_scores(self):
        op = count_operator()
        values = [op.lift(score, i) for i, score in enumerate([9.0, 0.0])]
        assert op.fold(values) == 2

    def test_topk_fold(self):
        op = top_k_operator(2)
        values = [op.lift(s, i) for i, s in enumerate([1.0, 5.0, 3.0])]
        assert op.fold(values).advertiser_ids() == (1, 2)


def project_to_magma(operator, carrier, encode, decode):
    """Build the operator's Cayley table on an encoded finite carrier."""
    table = []
    for a in carrier:
        row = []
        for b in carrier:
            combined = operator.combine(decode(a), decode(b))
            row.append(carrier.index(encode(combined)))
        table.append(row)
    return FiniteMagma(table, name=operator.name)


class TestDeclaredProfilesAreExact:
    """Each operator's declared axioms hold exhaustively on a finite
    projection, and the declared profile maps to the intended Fig. 5
    complexity class."""

    def test_sum_profile_on_modular_carrier(self):
        # Addition projected onto Z/5 keeps {A1, A2, A4, A5}.
        op = sum_operator()
        carrier = list(range(5))
        magma = FiniteMagma(
            [[(a + b) % 5 for b in carrier] for a in carrier], "sum mod 5"
        )
        assert satisfied_axioms(magma) >= op.profile - {Axiom.A3}
        assert Axiom.A3 not in satisfied_axioms(magma)

    def test_max_profile_exact_on_small_chain(self):
        op = max_operator()
        carrier = [0.0, 1.0, 2.0, 3.0]
        magma = project_to_magma(op, carrier, lambda x: x, lambda x: x)
        assert satisfied_axioms(magma) == op.profile

    def test_min_profile_exact_on_small_chain(self):
        op = min_operator()
        carrier = [0.0, 1.0, 2.0]
        magma = project_to_magma(op, carrier, lambda x: x, lambda x: x)
        assert satisfied_axioms(magma) == op.profile

    def test_bloom_union_profile_exact(self):
        op = bloom_union_operator(width=4, num_hashes=1)
        carrier = [BloomFilter(bits, 4, 1) for bits in range(16)]
        magma = project_to_magma(op, carrier, lambda x: x, lambda x: x)
        assert satisfied_axioms(magma) == op.profile

    def test_bloom_intersection_profile_exact(self):
        op = bloom_intersection_operator(width=3, num_hashes=1)
        carrier = [BloomFilter(bits, 3, 1) for bits in range(8)]
        magma = project_to_magma(op, carrier, lambda x: x, lambda x: x)
        assert satisfied_axioms(magma) == op.profile

    @pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
    def test_identity_element_actually_neutral(self, operator):
        if operator.identity is None:
            return
        sample = operator.lift(2.0, 1)
        assert operator.combine(sample, operator.identity) == sample
        assert operator.combine(operator.identity, sample) == sample

    @pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
    def test_declared_complexity_class(self, operator):
        complexity = complexity_of(operator.profile)
        # Every practical aggregate in the paper lands on an NP-complete
        # row of Fig. 5 -- that is the point of Section II-C.
        assert complexity is Complexity.NP_COMPLETE


class TestOperatorLaws:
    values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

    @settings(deadline=None, max_examples=50)
    @given(values, values, values)
    @pytest.mark.parametrize(
        "operator",
        [sum_operator(), max_operator(), min_operator(), product_operator()],
        ids=lambda o: o.name,
    )
    def test_associativity_and_commutativity(self, operator, x, y, z):
        a = operator.lift(x, 0)
        b = operator.lift(y, 1)
        c = operator.lift(z, 2)
        left = operator.combine(operator.combine(a, b), c)
        right = operator.combine(a, operator.combine(b, c))
        assert left == pytest.approx(right, rel=1e-9, abs=1e-9)
        assert operator.combine(a, b) == pytest.approx(
            operator.combine(b, a), rel=1e-9
        )

    @settings(deadline=None, max_examples=50)
    @given(values)
    @pytest.mark.parametrize(
        "operator",
        [max_operator(), min_operator()],
        ids=lambda o: o.name,
    )
    def test_idempotence_of_lattice_operators(self, operator, x):
        a = operator.lift(x, 0)
        assert operator.combine(a, a) == a


class TestBloomFilter:
    def test_membership_after_insert(self):
        filt = BloomFilter.of(42, width=64)
        assert filt.might_contain(42)

    def test_union_preserves_membership(self):
        a = BloomFilter.of(1, width=64)
        b = BloomFilter.of(2, width=64)
        union = a.union(b)
        assert union.might_contain(1)
        assert union.might_contain(2)

    def test_incompatible_parameters_rejected(self):
        with pytest.raises(AlgebraError):
            BloomFilter.of(1, width=16).union(BloomFilter.of(1, width=32))

    def test_empty_and_full(self):
        assert BloomFilter.empty(8).bits == 0
        assert BloomFilter.full(8).bits == 255
