"""Model-based (stateful) property tests.

Hypothesis drives random operation sequences against the two most
state-heavy components and checks invariants after every step:

- :class:`BudgetMachine` -- the budget manager's books must always
  balance: ``spent + remaining == budget``, spend never exceeds budget,
  forgiven amounts are exactly the uncovered parts of charges.
- :class:`MaintainerMachine` -- the plan maintainer must keep a valid,
  exact plan through arbitrary interleavings of interest changes,
  phrase additions, and drops.
- :class:`CachedExecutionMachine` -- a cross-round incremental executor
  subscribed to a drifting maintainer must answer every round exactly
  like a fresh single-scan oracle, no matter how repairs, replans,
  score perturbations, and rounds interleave.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.topk import top_k_scan
from repro.engine.budget_manager import BudgetManager
from repro.plans.executor import CrossRoundPlanExecutor, PlanExecutor
from repro.plans.maintenance import PlanMaintainer


class BudgetMachine(RuleBasedStateMachine):
    """Random display/click/expiry traffic against one advertiser's books."""

    BUDGET = 500

    def __init__(self) -> None:
        super().__init__()
        self.manager = BudgetManager({1: self.BUDGET})
        self.model_spent = 0
        self.model_forgiven = 0
        self.round_index = 0
        self.displayed: list[tuple[int, int]] = []  # (price, round)

    @rule(price=st.integers(min_value=1, max_value=120))
    def display(self, price: int) -> None:
        self.manager.record_display(1, price, 0.5, self.round_index)
        self.displayed.append((price, self.round_index))

    @rule()
    def click_oldest(self) -> None:
        if not self.displayed:
            return
        price, shown_round = self.displayed.pop(0)
        result = self.manager.settle_click(1, price, shown_round)
        charge = min(price, self.BUDGET - self.model_spent)
        assert result.charged_cents == charge
        assert result.forgiven_cents == price - charge
        self.model_spent += charge
        self.model_forgiven += price - charge

    @rule()
    def advance_round(self) -> None:
        self.round_index += 1

    @invariant()
    def books_balance(self) -> None:
        assert self.manager.spent_cents(1) == self.model_spent
        assert (
            self.manager.remaining_cents(1)
            == self.BUDGET - self.model_spent
        )
        assert 0 <= self.manager.remaining_cents(1) <= self.BUDGET

    @invariant()
    def throttle_problem_always_constructible(self) -> None:
        problem = self.manager.throttle_problem(1, 50, 2, self.round_index)
        assert problem.budget_cents == self.manager.remaining_cents(1)
        assert problem.bid_cents <= 50


BudgetMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestBudgetMachine = BudgetMachine.TestCase


class MaintainerMachine(RuleBasedStateMachine):
    """Random market drift against the plan maintainer."""

    PHRASES = ("p", "q", "r")
    ADVERTISERS = tuple(range(8))

    @initialize()
    def setup(self) -> None:
        self.maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}, "r": {4, 5, 0}},
            replan_after=4,
        )
        self.extra_phrases = 0

    @rule(
        phrase=st.sampled_from(PHRASES),
        advertiser=st.sampled_from(ADVERTISERS),
    )
    def toggle_interest(self, phrase: str, advertiser: int) -> None:
        if phrase not in self.maintainer.interests():
            return
        interests = self.maintainer.interests()[phrase]
        if advertiser in interests:
            if len(interests) > 2:
                self.maintainer.remove_interest(phrase, advertiser)
        else:
            self.maintainer.add_interest(phrase, advertiser)

    @rule(advertisers=st.sets(st.sampled_from(ADVERTISERS), min_size=2, max_size=5))
    def add_phrase(self, advertisers: set) -> None:
        if self.extra_phrases >= 3:
            return
        self.extra_phrases += 1
        self.maintainer.add_phrase(
            f"extra{self.extra_phrases}", advertisers, 0.5
        )

    @invariant()
    def plan_is_valid_and_exact(self) -> None:
        plan = self.maintainer.plan
        plan.validate()
        interests = self.maintainer.interests()
        variables = {v for ids in interests.values() for v in ids}
        scores = {v: float((v * 37) % 23) for v in variables}
        executor = PlanExecutor(plan, 2)
        result = executor.run_round(scores)
        for query in plan.instance.queries:
            expected = sorted(
                query.variables, key=lambda v: (-scores[v], v)
            )[:2]
            assert (
                list(result.answers[query.name].advertiser_ids()) == expected
            )


MaintainerMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestMaintainerMachine = MaintainerMachine.TestCase


class CachedExecutionMachine(RuleBasedStateMachine):
    """Plan maintenance interleaved with cached incremental execution.

    The executor's cross-round cache must stay exact through arbitrary
    interleavings of structural repairs (which rebind the executor via
    the maintainer's plan-change subscription), score perturbations
    (declared through the dirty set), and executed rounds.  After every
    step, running a round must reproduce a fresh ``top_k_scan`` over the
    live interests -- the cache can never serve an outdated value.
    """

    K = 2
    PHRASES = ("p", "q", "r")
    ADVERTISERS = tuple(range(8))

    @initialize()
    def setup(self) -> None:
        self.maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}, "r": {4, 5, 0}},
            replan_after=4,
        )
        self.executor = CrossRoundPlanExecutor(self.maintainer.plan, self.K)
        self.maintainer.subscribe(self.executor.rebind)
        self.scores = {a: float((a * 37) % 23 + 1) for a in self.ADVERTISERS}
        self.dirty: set[int] = set(self.ADVERTISERS)
        self.extra_phrases = 0

    @rule(
        phrase=st.sampled_from(PHRASES),
        advertiser=st.sampled_from(ADVERTISERS),
    )
    def toggle_interest(self, phrase: str, advertiser: int) -> None:
        if phrase not in self.maintainer.interests():
            return
        interests = self.maintainer.interests()[phrase]
        if advertiser in interests:
            if len(interests) > 2:
                self.maintainer.remove_interest(phrase, advertiser)
        else:
            self.maintainer.add_interest(phrase, advertiser)

    @rule(
        advertisers=st.sets(
            st.sampled_from(ADVERTISERS), min_size=2, max_size=5
        )
    )
    def add_phrase(self, advertisers: set) -> None:
        if self.extra_phrases >= 3:
            return
        self.extra_phrases += 1
        self.maintainer.add_phrase(
            f"extra{self.extra_phrases}", advertisers, 0.5
        )

    @rule(
        advertiser=st.sampled_from(ADVERTISERS),
        score=st.integers(min_value=1, max_value=40),
    )
    def perturb_score(self, advertiser: int, score: int) -> None:
        self.scores[advertiser] = float(score)
        self.dirty.add(advertiser)

    @rule()
    def run_round(self) -> None:
        self._run_and_check()

    @invariant()
    def cached_answers_match_fresh_scan(self) -> None:
        self._run_and_check()

    def _run_and_check(self) -> None:
        plan = self.executor.plan
        result = self.executor.run_round(
            dict(self.scores), dirty=set(self.dirty)
        )
        self.dirty.clear()
        # Oracle: an independent single-scan top-k per live query.
        for query in plan.instance.queries:
            expected = top_k_scan(
                self.K,
                [(self.scores[v], v) for v in sorted(query.variables)],
            )
            assert result.answers[query.name] == expected, (
                f"cached answer diverged from fresh scan for {query.name!r}"
            )
        # The weakened accounting invariant must hold every round.
        assert (
            result.merges_performed + result.nodes_revalidated
            == result.nodes_materialized
        )


CachedExecutionMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
TestCachedExecutionMachine = CachedExecutionMachine.TestCase
