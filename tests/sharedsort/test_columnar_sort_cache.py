"""Unit tests for :class:`repro.sharedsort.columnar.ColumnarSortCache`.

The cache's whole claim is an identity: the incrementally repaired
permutation equals a fresh ``(-effective_bid, id)`` lexsort, byte for
byte, under any sequence of partial-occurrence rounds.  These tests
drive the cache directly with synthetic score streams -- the engine
differential (``tests/engine/test_layout_differential.py``) covers the
wired-up path.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.advertiser import Advertiser
from repro.core.columnar import ColumnarStore
from repro.engine.changefeed import BidChanged, ChangeFeed
from repro.errors import InvalidPlanError
from repro.instrument import MetricsCollector, names
from repro.sharedsort.columnar import ColumnarSortCache


def _store(n: int) -> ColumnarStore:
    return ColumnarStore(
        [
            Advertiser(i, 1.0, phrases=frozenset({"p"}))
            for i in range(n)
        ]
    )


def _reference_order(effective_by_row, rows):
    """A fresh lexsort: the permutation the cache must reproduce."""
    rows = np.asarray(rows, dtype=np.int64)
    return rows[np.lexsort((rows, -effective_by_row[rows]))]


class TestRepairIdentity:
    def test_randomized_rounds_match_fresh_lexsort(self):
        # Partial occurrence, tie-heavy bids, varying dirty-set sizes:
        # after every round the cached global order over all rows ever
        # scored equals the reference lexsort exactly.
        rng = random.Random(7)
        n = 40
        store = _store(n)
        cache = ColumnarSortCache(store)
        effective = np.zeros(n, dtype=np.float64)
        ever_scored: set[int] = set()
        for _ in range(30):
            rows = sorted(rng.sample(range(n), rng.randint(1, n)))
            dirty = {
                row for row in rows if rng.random() < 0.4
            } | {row for row in rows if row not in ever_scored}
            for row in dirty:
                # A small value pool so equal-bid runs are common and
                # the id-level insert discipline is genuinely exercised.
                effective[row] = float(rng.randint(1, 8) * 100)
            ever_scored.update(rows)
            order, _ = cache.order_for_round(
                effective, np.asarray(rows, dtype=np.int64), dirty=dirty
            )
            expected = _reference_order(effective, sorted(ever_scored))
            assert order.tolist() == expected.tolist()

    def test_large_dirty_fraction_takes_resort_path_identically(self):
        # Above the 1/4 dirty-fraction heuristic the cache re-sorts
        # instead of merge-inserting; the permutation must not change.
        n = 12
        store = _store(n)
        cache = ColumnarSortCache(store)
        effective = np.asarray([float(100 * (i % 3 + 1)) for i in range(n)])
        rows = np.arange(n, dtype=np.int64)
        cache.order_for_round(effective, rows, dirty=set(range(n)))
        dirty = set(range(0, n, 2))  # half the population: resort
        for row in dirty:
            effective[row] += 250.0
        order, repaired = cache.order_for_round(effective, rows, dirty=dirty)
        assert repaired == n  # the whole order was rebuilt
        assert order.tolist() == _reference_order(effective, rows).tolist()

    def test_clean_round_repairs_nothing(self):
        n = 10
        store = _store(n)
        cache = ColumnarSortCache(store)
        effective = np.asarray([float(100 + 10 * i) for i in range(n)])
        rows = np.arange(n, dtype=np.int64)
        _, first = cache.order_for_round(effective, rows, dirty=set(range(n)))
        assert first == n
        order, repaired = cache.order_for_round(effective, rows, dirty=set())
        assert repaired == 0
        assert order.tolist() == _reference_order(effective, rows).tolist()


class TestCounters:
    def test_first_round_charges_no_reuse_counters(self):
        collector = MetricsCollector()
        store = _store(6)
        cache = ColumnarSortCache(store, collector)
        effective = np.asarray([100.0, 200.0, 300.0, 400.0, 500.0, 600.0])
        rows = np.arange(6, dtype=np.int64)
        cache.order_for_round(effective, rows, dirty=set(range(6)))
        assert collector.counter(names.SORT_STREAMS_REUSED) == 0
        assert collector.counter(names.SORT_STREAMS_INVALIDATED) == 0

    def test_repair_round_counts_rows_kept_and_reranked(self):
        collector = MetricsCollector()
        store = _store(10)
        cache = ColumnarSortCache(store, collector)
        effective = np.asarray([float(1000 - i) for i in range(10)])
        rows = np.arange(10, dtype=np.int64)
        cache.order_for_round(effective, rows, dirty=set(range(10)))
        effective[3] = 5.0
        cache.order_for_round(effective, rows, dirty={3})
        assert collector.counter(names.SORT_STREAMS_REUSED) == 9
        assert collector.counter(names.SORT_STREAMS_INVALIDATED) == 1
        assert cache.rows_reused == 9
        assert cache.rows_repaired == 1


class TestVerify:
    def test_undeclared_change_raises(self):
        store = _store(4)
        cache = ColumnarSortCache(store, verify=True)
        effective = np.asarray([400.0, 300.0, 200.0, 100.0])
        rows = np.arange(4, dtype=np.int64)
        cache.order_for_round(effective, rows, dirty=set(range(4)))
        effective[2] = 9999.0
        with pytest.raises(InvalidPlanError, match="unsound change feed"):
            cache.order_for_round(effective, rows, dirty=set())

    def test_unverified_keeps_undeclared_snapshot(self):
        # verify=False trusts the declaration: an undeclared change is
        # invisible, so the order keeps the row at its snapshot rank.
        store = _store(4)
        cache = ColumnarSortCache(store, verify=False)
        effective = np.asarray([400.0, 300.0, 200.0, 100.0])
        rows = np.arange(4, dtype=np.int64)
        cache.order_for_round(effective, rows, dirty=set(range(4)))
        effective[3] = 9999.0  # would be rank 0 if absorbed
        order, _ = cache.order_for_round(effective, rows, dirty=set())
        assert order.tolist() == [0, 1, 2, 3]
        # Declaring it next round repairs it to the top.
        order, _ = cache.order_for_round(effective, rows, dirty={3})
        assert order.tolist() == [3, 0, 1, 2]


class TestChangeFeed:
    def test_events_drive_dirtiness_and_pending_survives(self):
        store = _store(5)
        cache = ColumnarSortCache(store)
        feed = ChangeFeed()
        cache.connect(feed)
        effective = np.asarray([500.0, 400.0, 300.0, 200.0, 100.0])
        all_rows = np.arange(5, dtype=np.int64)
        cache.order_for_round(effective, all_rows)
        feed.publish(BidChanged(advertiser_id=1))
        feed.publish(BidChanged(advertiser_id=4))
        effective[1] = 50.0
        effective[4] = 600.0
        # Row 4 does not occur this round: its event must survive.
        order, _ = cache.order_for_round(
            effective, np.asarray([0, 1, 2, 3], dtype=np.int64)
        )
        assert cache.pending_dirty == frozenset({4})
        # Row 4 keeps its snapshot rank (100, between rows 3 and 1).
        assert order.tolist() == [0, 2, 3, 4, 1]
        order, _ = cache.order_for_round(effective, all_rows)
        assert cache.pending_dirty == frozenset()
        assert order.tolist() == [4, 0, 2, 3, 1]

    def test_connected_feed_rejects_dirty_argument(self):
        store = _store(3)
        cache = ColumnarSortCache(store)
        cache.connect(ChangeFeed())
        effective = np.asarray([300.0, 200.0, 100.0])
        with pytest.raises(InvalidPlanError, match="change feed"):
            cache.order_for_round(
                effective, np.arange(3, dtype=np.int64), dirty={0}
            )

    def test_double_connect_rejected(self):
        cache = ColumnarSortCache(_store(2))
        cache.connect(ChangeFeed())
        with pytest.raises(InvalidPlanError, match="already connected"):
            cache.connect(ChangeFeed())


class _ForceBypass:
    def __init__(self):
        self.bypasses = 0
        self.observed = []

    def should_bypass(self):
        return True

    def record_bypass(self):
        self.bypasses += 1

    def observe_round(self, dirty, population, working_set):
        self.observed.append((dirty, population, working_set))


class TestAutotunerBypass:
    def test_bypass_resorts_without_counters_but_stays_identical(self):
        collector = MetricsCollector()
        tuner = _ForceBypass()
        store = _store(8)
        cache = ColumnarSortCache(store, collector, autotuner=tuner)
        effective = np.asarray([float(800 - 100 * i) for i in range(8)])
        rows = np.arange(8, dtype=np.int64)
        cache.order_for_round(effective, rows, dirty=set(range(8)))
        assert tuner.bypasses == 0  # never bypass the first build
        effective[5] = 1000.0
        order, _ = cache.order_for_round(effective, rows, dirty={5})
        assert tuner.bypasses == 1
        assert cache.bypass_rounds == 1
        assert order.tolist() == _reference_order(effective, rows).tolist()
        # A bypass round is fresh work: no reuse was claimed.
        assert collector.counter(names.SORT_STREAMS_REUSED) == 0
        assert len(tuner.observed) == 2
