"""Cross-round sort-stream reuse: identity of outcomes, reduction of work.

The cache's contract mirrors the plan executor's: a run with
:class:`CrossRoundSortCache` is bit-identical to rebuilding the network
every round -- same items from every stream, same threshold-algorithm
results -- and only the work counters move (``sort.streams_reused`` up,
``sort.operator_pulls`` / ``sort.leaf_reads`` down).
"""

from __future__ import annotations

import random

from repro.instrument import MetricsCollector, names as metric_names
from repro.sharedsort.cache import CrossRoundSortCache
from repro.sharedsort.plan import build_shared_sort_plan
from repro.sharedsort.threshold import threshold_top_k


def random_instance(rng, num_phrases=6, num_ads=14):
    phrases = {
        f"q{p}": rng.sample(range(num_ads), rng.randint(2, num_ads))
        for p in range(num_phrases)
    }
    rates = {f"q{p}": rng.choice([1.0, 0.7, 0.4]) for p in range(num_phrases)}
    return phrases, rates


def perturb(rng, bids, fraction):
    """A new bid map with ~fraction of the advertisers changed."""
    out = dict(bids)
    for advertiser in sorted(bids):
        if rng.random() < fraction:
            out[advertiser] = round(rng.uniform(0.1, 20.0), 2)
    return out


def drain(stream):
    items = []
    index = 0
    while (item := stream.item(index)) is not None:
        items.append(item)
        index += 1
    return items


class TestDifferentialOverRounds:
    def test_twenty_round_dirty_run_identical_streams(self):
        rng = random.Random(42)
        phrases, rates = random_instance(rng)
        plan = build_shared_sort_plan(phrases, rates)
        cache = CrossRoundSortCache(plan)
        bids = {i: round(rng.uniform(0.1, 20.0), 2) for i in range(14)}
        for round_index in range(20):
            cached_live = cache.instantiate(bids)
            fresh_live = plan.instantiate(bids)
            for phrase in sorted(phrases):
                cached_items = drain(cached_live.stream_for_phrase(phrase))
                fresh_items = drain(fresh_live.stream_for_phrase(phrase))
                assert cached_items == fresh_items, (round_index, phrase)
            bids = perturb(rng, bids, 0.15)

    def test_reuse_reduces_operator_pulls(self):
        rng = random.Random(7)
        phrases, rates = random_instance(rng)
        plan = build_shared_sort_plan(phrases, rates)
        cache = CrossRoundSortCache(plan)
        bids = {i: round(rng.uniform(0.1, 20.0), 2) for i in range(14)}
        cached_pulls = 0
        fresh_pulls = 0
        bid_history = []
        for _ in range(20):
            bid_history.append(bids)
            bids = perturb(rng, bids, 0.1)
        for round_bids in bid_history:
            live = cache.instantiate(round_bids)
            for phrase in sorted(phrases):
                drain(live.stream_for_phrase(phrase))
            cached_pulls += live.round_pulls()
            fresh = plan.instantiate(round_bids)
            for phrase in sorted(phrases):
                drain(fresh.stream_for_phrase(phrase))
            fresh_pulls += fresh.round_pulls()
        assert cache.streams_reused > 0
        assert cached_pulls < fresh_pulls
        # The benchmark gates >= 40% on the scaled workload; even this
        # small instance must show a clear reduction.
        assert cached_pulls <= fresh_pulls * 0.8

    def test_first_round_adopts_nothing(self):
        plan = build_shared_sort_plan({"a": [1, 2, 3, 4]}, 1.0)
        cache = CrossRoundSortCache(plan)
        live = cache.instantiate({1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0})
        assert cache.streams_reused == 0
        assert cache.streams_invalidated == 0
        drain(live.stream_for_phrase("a"))
        assert live.round_pulls() == live.total_pulls()

    def test_unchanged_bids_reuse_everything(self):
        plan = build_shared_sort_plan({"a": [1, 2, 3, 4], "b": [1, 2]}, 1.0)
        cache = CrossRoundSortCache(plan)
        bids = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        live1 = cache.instantiate(bids)
        for phrase in ("a", "b"):
            drain(live1.stream_for_phrase(phrase))
        live2 = cache.instantiate(dict(bids))
        assert cache.streams_invalidated == 0
        assert cache.streams_reused > 0
        for phrase in ("a", "b"):
            drain(live2.stream_for_phrase(phrase))
        # Everything replays: not a single new operator pull or leaf read.
        assert live2.round_pulls() == 0
        assert live2.round_leaf_reads() == 0

    def test_dirty_advertiser_invalidates_exact_cone(self):
        plan = build_shared_sort_plan({"a": [1, 2, 3, 4]}, 1.0)
        cache = CrossRoundSortCache(plan)
        bids = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        live1 = cache.instantiate(bids)
        drain(live1.stream_for_phrase("a"))
        bids2 = {**bids, 1: 9.0}
        live2 = cache.instantiate(bids2)
        assert cache.streams_invalidated > 0
        items = drain(live2.stream_for_phrase("a"))
        assert items == sorted(
            ((b, i) for i, b in bids2.items()),
            key=lambda t: (-t[0], t[1]),
        )
        # The clean sibling subtree replayed: fewer pulls than a rebuild.
        fresh = plan.instantiate(bids2)
        drain(fresh.stream_for_phrase("a"))
        assert live2.round_pulls() <= fresh.round_pulls()
        assert live2.round_leaf_reads() < fresh.round_leaf_reads()

    def test_absent_advertisers_stay_sound_across_rounds(self):
        # Phrase "b" does not occur in round 2, so round 2's bids omit
        # advertisers 5 and 6; when "b" returns in round 3 with 5's bid
        # changed, its streams must reflect the *new* bid.
        phrases = {"a": [1, 2, 3, 4], "b": [5, 6]}
        plan = build_shared_sort_plan(phrases, 1.0)
        cache = CrossRoundSortCache(plan)
        round1 = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0, 5: 5.0, 6: 6.0}
        live = cache.instantiate(round1)
        drain(live.stream_for_phrase("a"))
        drain(live.stream_for_phrase("b"))
        round2 = {1: 1.5, 2: 2.0, 3: 3.0, 4: 4.0}
        live = cache.instantiate(round2)
        drain(live.stream_for_phrase("a"))
        round3 = {**round1, 1: 1.5, 5: 0.5}
        live = cache.instantiate(round3)
        assert drain(live.stream_for_phrase("b")) == [(6.0, 6), (0.5, 5)]

    def test_collector_counts_reuse_and_invalidation(self):
        collector = MetricsCollector()
        plan = build_shared_sort_plan(
            {"a": [1, 2, 3, 4], "b": [1, 2, 3, 4]}, 1.0, collector=collector
        )
        cache = CrossRoundSortCache(plan, collector)
        bids = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        live = cache.instantiate(bids)
        drain(live.stream_for_phrase("a"))
        live = cache.instantiate({**bids, 4: 8.0})
        drain(live.stream_for_phrase("a"))
        assert (
            collector.counter(metric_names.SORT_STREAMS_REUSED)
            == cache.streams_reused
        )
        assert (
            collector.counter(metric_names.SORT_STREAMS_INVALIDATED)
            == cache.streams_invalidated
        )
        assert cache.streams_reused > 0
        assert cache.streams_invalidated > 0


class TestThresholdOverCache:
    def test_ta_results_identical_with_and_without_cache(self):
        rng = random.Random(5)
        phrases, rates = random_instance(rng, num_phrases=5, num_ads=12)
        plan = build_shared_sort_plan(phrases, rates)
        cache = CrossRoundSortCache(plan)
        bids = {i: round(rng.uniform(0.1, 20.0), 2) for i in range(12)}
        factors = {
            phrase: {i: round(rng.uniform(0.05, 1.5), 3) for i in range(12)}
            for phrase in phrases
        }
        ctr_orders = {
            phrase: sorted(
                phrases[phrase], key=lambda i: (-factors[phrase][i], i)
            )
            for phrase in phrases
        }
        for round_index in range(12):
            cached_live = cache.instantiate(bids)
            fresh_live = plan.instantiate(bids)
            for phrase in sorted(phrases):
                ids = phrases[phrase]
                f = {i: factors[phrase][i] for i in ids}
                cached = threshold_top_k(
                    3,
                    cached_live.stream_for_phrase(phrase),
                    ctr_orders[phrase],
                    bids,
                    f,
                )
                fresh = threshold_top_k(
                    3,
                    fresh_live.stream_for_phrase(phrase),
                    ctr_orders[phrase],
                    bids,
                    f,
                )
                assert cached.ranking.entries == fresh.ranking.entries
                assert cached.sorted_accesses == fresh.sorted_accesses
                assert cached.threshold == fresh.threshold
            bids = perturb(rng, bids, 0.2)
