"""Tests for the shared merge-sort plan builder and its live network."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import InvalidPlanError, PlanConstructionError
from repro.sharedsort.cost import independent_sort_cost
from repro.sharedsort.plan import SharedSortPlan, build_shared_sort_plan


def drain(stream):
    items = []
    index = 0
    while (item := stream.item(index)) is not None:
        items.append(item)
        index += 1
    return items


@st.composite
def phrase_maps(draw):
    num_ads = draw(st.integers(min_value=1, max_value=12))
    universe = list(range(num_ads))
    num_phrases = draw(st.integers(min_value=1, max_value=4))
    phrases = {}
    for index in range(num_phrases):
        members = draw(
            st.lists(
                st.sampled_from(universe),
                min_size=1,
                max_size=num_ads,
                unique=True,
            )
        )
        phrases[f"p{index}"] = members
    return phrases


class TestBuilder:
    def test_requires_phrases(self):
        with pytest.raises(PlanConstructionError):
            build_shared_sort_plan({})

    def test_requires_advertisers(self):
        with pytest.raises(PlanConstructionError):
            build_shared_sort_plan({"p": []})

    def test_identical_phrases_share_everything(self):
        plan = build_shared_sort_plan({"a": [1, 2, 3, 4], "b": [1, 2, 3, 4]}, 1.0)
        # One balanced tree (3 operators), both phrases' roots identical.
        assert plan.phrase_roots["a"] == plan.phrase_roots["b"]
        assert len(plan.phrase_roots["a"]) == 1
        assert plan.assembly_expected_cost() == 0.0

    def test_merge_constraints_hold(self):
        plan = build_shared_sort_plan(
            {"a": [1, 2, 3, 4, 5], "b": [1, 2, 3, 6], "c": [4, 5, 6]}, 0.7
        )
        for node in plan.internal_nodes():
            left = plan.nodes[node.left]
            right = plan.nodes[node.right]
            assert not (left.advertisers & right.advertisers)
            assert len(left.advertisers) == len(right.advertisers)
            assert node.phrases  # Q_w nonempty by construction

    def test_roots_partition_each_phrase(self):
        phrases = {"a": [1, 2, 3, 4, 5], "b": [3, 4, 5, 6], "c": [1, 6]}
        plan = build_shared_sort_plan(phrases, 0.5)
        for phrase, ads in phrases.items():
            covered = set()
            for node_id in plan.phrase_roots[phrase]:
                node = plan.nodes[node_id]
                assert not (covered & node.advertisers)
                covered |= node.advertisers
            assert covered == set(ads)

    def test_validation_rejects_bad_roots(self):
        plan = build_shared_sort_plan({"a": [1, 2]}, 1.0)
        with pytest.raises(InvalidPlanError):
            SharedSortPlan(
                plan.phrase_advertisers,
                plan.search_rates,
                plan.nodes,
                {"a": []},  # does not partition I_a
            )

    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(phrase_maps())
    def test_builder_always_valid(self, phrases):
        plan = build_shared_sort_plan(phrases, 0.6)
        # Internal constraint re-checks happen in the constructor; also
        # confirm every phrase is servable.
        for phrase in phrases:
            assert plan.phrase_roots[phrase]


class TestLiveStreams:
    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(phrase_maps(), st.randoms(use_true_random=False))
    def test_streams_sorted_and_complete(self, phrases, rnd):
        plan = build_shared_sort_plan(phrases, 0.8)
        bids = {
            a: round(rnd.uniform(0.0, 50.0), 2)
            for ads in phrases.values()
            for a in ads
        }
        live = plan.instantiate(bids)
        for phrase, ads in phrases.items():
            items = drain(live.stream_for_phrase(phrase))
            expected = sorted(
                ((bids[a], a) for a in ads), key=lambda t: (-t[0], t[1])
            )
            assert items == expected

    def test_missing_bid_raises(self):
        plan = build_shared_sort_plan({"p": [1, 2]}, 1.0)
        live = plan.instantiate({1: 1.0})
        with pytest.raises(InvalidPlanError):
            drain(live.stream_for_phrase("p"))

    def test_unknown_phrase_raises(self):
        plan = build_shared_sort_plan({"p": [1, 2]}, 1.0)
        live = plan.instantiate({1: 1.0, 2: 2.0})
        with pytest.raises(InvalidPlanError):
            live.stream_for_phrase("q")

    def test_phrase_stream_cached(self):
        plan = build_shared_sort_plan({"p": [1, 2, 3]}, 1.0)
        live = plan.instantiate({1: 1.0, 2: 2.0, 3: 3.0})
        assert live.stream_for_phrase("p") is live.stream_for_phrase("p")

    def test_total_pulls_bounded_by_full_sort(self):
        phrases = {"a": [1, 2, 3, 4], "b": [1, 2, 5, 6]}
        plan = build_shared_sort_plan(phrases, 1.0)
        bids = {i: float(i * 13 % 7) for i in range(1, 7)}
        live = plan.instantiate(bids)
        for phrase in phrases:
            drain(live.stream_for_phrase(phrase))
        # The cost model's full-sort bound covers the realized pulls.
        bound = plan.expected_cost()  # all rates 1: the exact full cost
        assert live.total_pulls() <= bound + 1e-9

    def test_sharing_reduces_pulls_vs_independent(self):
        shared_ads = list(range(16))
        phrases = {
            "a": shared_ads + [16, 17],
            "b": shared_ads + [18, 19],
        }
        plan = build_shared_sort_plan(phrases, 1.0)
        assert plan.expected_cost() < independent_sort_cost(
            {p: len(ads) for p, ads in phrases.items()},
            {p: 1.0 for p in phrases},
        )


class TestCostAccounting:
    def test_shared_cost_uses_creation_phrases(self):
        plan = build_shared_sort_plan({"a": [1, 2], "b": [1, 2]}, 0.5)
        # One operator with Q = {a, b}: cost 2 * (1 - 0.25) = 1.5.
        assert plan.shared_expected_cost() == pytest.approx(1.5)

    def test_assembly_counts_only_owner_phrase(self):
        plan = build_shared_sort_plan({"a": [1, 2, 3]}, 0.5)
        # No multi-phrase sharing possible: everything is assembly.
        assert plan.shared_expected_cost() == 0.0
        assert plan.assembly_expected_cost() == pytest.approx(0.5 * 5)

    def test_expected_cost_is_sum(self):
        plan = build_shared_sort_plan(
            {"a": [1, 2, 3, 4], "b": [1, 2, 5]}, 0.7
        )
        assert plan.expected_cost() == pytest.approx(
            plan.shared_expected_cost() + plan.assembly_expected_cost()
        )
