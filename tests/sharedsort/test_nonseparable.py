"""Tests for shared pruning of non-separable auctions (Section V)."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.advertiser import Advertiser
from repro.core.auction import AuctionSpec
from repro.core.ctr import MatrixCTRModel
from repro.core.winner_determination import determine_winners_nonseparable
from repro.errors import InvalidPlanError
from repro.sharedsort.nonseparable import SharedNonSeparableRound


def random_matrix(advertisers, num_slots, rng):
    return MatrixCTRModel(
        {
            i: [round(rng.uniform(0.01, 0.5), 3) for _ in range(num_slots)]
            for i in advertisers
        }
    )


class TestSharedNonSeparableRound:
    def test_requires_phrases(self):
        with pytest.raises(InvalidPlanError):
            SharedNonSeparableRound({})

    def test_matches_unshared_hungarian(self):
        rng = random.Random(4)
        shared_block = list(range(10))
        phrases = {
            "a": shared_block + [10, 11],
            "b": shared_block + [12],
            "c": [5, 6, 7, 13, 14],
        }
        models = {
            phrase: random_matrix(ads, 2, rng) for phrase, ads in phrases.items()
        }
        round_solver = SharedNonSeparableRound(models)
        bids = {i: round(rng.uniform(0.2, 3.0), 2) for i in range(15)}
        result = round_solver.resolve(bids)

        for phrase, ads in phrases.items():
            spec = AuctionSpec(
                phrase,
                [Advertiser(i, bid=bids[i]) for i in ads],
                models[phrase],
            )
            reference = determine_winners_nonseparable(spec, prune=False)
            assert result.allocations[phrase].expected_value == pytest.approx(
                reference.expected_value
            )

    def test_pruned_sizes_bounded(self):
        rng = random.Random(9)
        ads = list(range(30))
        models = {"p": random_matrix(ads, 3, rng)}
        result = SharedNonSeparableRound(models).resolve(
            {i: rng.uniform(0.1, 2.0) for i in ads}
        )
        assert result.pruned_sizes["p"] <= 9  # k^2

    def test_shared_network_reuses_bid_streams(self):
        """Two phrases over the same advertisers: the bid network sorts
        once; accesses stay below two independent full drains."""
        rng = random.Random(2)
        ads = list(range(16))
        models = {
            "a": random_matrix(ads, 2, rng),
            "b": random_matrix(ads, 2, rng),
        }
        result = SharedNonSeparableRound(models).resolve(
            {i: rng.uniform(0.1, 3.0) for i in ads}
        )
        # Worst case per phrase would drain 16 items through ~4 levels
        # (64 pulls) twice; sharing must do better than the doubled cost.
        assert result.operator_pulls < 2 * 64

    def test_counters_populated(self):
        rng = random.Random(7)
        models = {"p": random_matrix([1, 2, 3, 4], 2, rng)}
        result = SharedNonSeparableRound(models).resolve(
            {i: float(i) for i in (1, 2, 3, 4)}
        )
        assert result.sorted_accesses > 0
        assert set(result.allocations) == {"p"}

    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.randoms(use_true_random=False), st.integers(1, 3))
    def test_random_rounds_match_reference(self, rnd, num_slots):
        num_advertisers = rnd.randrange(num_slots, 10) + num_slots
        ads = list(range(num_advertisers))
        phrases = {}
        for index in range(rnd.randrange(1, 4)):
            members = [a for a in ads if rnd.random() < 0.6] or ads[:num_slots]
            phrases[f"p{index}"] = members
        models = {
            phrase: random_matrix(members, num_slots, rnd)
            for phrase, members in phrases.items()
        }
        bids = {a: round(rnd.uniform(0.05, 4.0), 2) for a in ads}
        result = SharedNonSeparableRound(models).resolve(bids)
        for phrase, members in phrases.items():
            spec = AuctionSpec(
                phrase,
                [Advertiser(a, bid=bids[a]) for a in members],
                models[phrase],
            )
            reference = determine_winners_nonseparable(spec, prune=False)
            assert result.allocations[phrase].expected_value == pytest.approx(
                reference.expected_value, abs=1e-9
            )
