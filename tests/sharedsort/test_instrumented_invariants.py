"""Instrumented work invariants for the shared merge-sort pipeline.

Section III's sharing argument rests on two mechanisms that these tests
pin down with the new counters: (1) an operator's output cache makes
replayed reads free -- a cache replay performs *zero* child pulls -- and
(2) sharing runs across phrases can only reduce work, so the threshold
algorithm's sorted-access counts over shared streams never exceed those
of independent per-phrase runs.
"""

from __future__ import annotations

from repro.instrument import MetricsCollector, names
from repro.sharedsort.plan import build_shared_sort_plan
from repro.sharedsort.threshold import threshold_top_k

# The shoe-store shape: four general stores bid on both phrases, four
# sports stores on "boots" only, four fashion stores on "heels" only.
GENERAL = (0, 1, 2, 3)
SPORTS = (4, 5, 6, 7)
FASHION = (8, 9, 10, 11)
PHRASE_ADVERTISERS = {
    "boots": tuple(sorted(GENERAL + SPORTS)),
    "heels": tuple(sorted(GENERAL + FASHION)),
}
RATES = {"boots": 0.9, "heels": 0.8}
BIDS = {i: float(120 - 7 * i) for i in range(12)}
CTR = {i: 0.5 + ((i * 7) % 10) / 20.0 for i in range(12)}


def _ctr_order(phrase: str):
    return sorted(PHRASE_ADVERTISERS[phrase], key=lambda i: (-CTR[i], i))


def _drain(stream):
    index = 0
    while stream.item(index) is not None:
        index += 1
    return index


def _find_shared_node(live):
    for stream in live._all_streams():
        if getattr(stream, "advertiser_ids", None) == frozenset(GENERAL):
            return stream
    raise AssertionError("expected a shared operator over the general stores")


class TestCacheReplays:
    def test_replayed_reads_perform_zero_child_pulls(self):
        collector = MetricsCollector()
        plan = build_shared_sort_plan(PHRASE_ADVERTISERS, RATES)
        live = plan.instantiate(BIDS, collector)
        stream = live.stream_for_phrase("boots")
        length = _drain(stream)
        assert length == len(PHRASE_ADVERTISERS["boots"])
        pulls_before = {id(s): s.pulls for s in live._all_streams()}
        operator_pulls = collector.counter(names.SORT_OPERATOR_PULLS)
        leaf_reads = collector.counter(names.SORT_LEAF_READS)
        # Operators re-read the unconsumed child register from the child's
        # cache while draining, so replays exist already; only the delta
        # from re-reading the output is asserted below.
        replays_after_drain = collector.counter(names.SORT_CACHE_REPLAYS)
        # Re-read the whole emitted sequence: every read is a cache
        # replay, so no stream anywhere in the network may pull again.
        for index in range(length):
            assert stream.item(index) is not None
        assert {id(s): s.pulls for s in live._all_streams()} == pulls_before
        assert collector.counter(names.SORT_OPERATOR_PULLS) == operator_pulls
        assert collector.counter(names.SORT_LEAF_READS) == leaf_reads
        assert (
            collector.counter(names.SORT_CACHE_REPLAYS)
            == replays_after_drain + length
        )

    def test_second_phrase_replays_shared_subtree(self):
        collector = MetricsCollector()
        plan = build_shared_sort_plan(PHRASE_ADVERTISERS, RATES)
        live = plan.instantiate(BIDS, collector)
        _drain(live.stream_for_phrase("boots"))
        shared = _find_shared_node(live)
        assert shared.pulls == len(GENERAL)  # fully drained by "boots"
        replays_before = collector.counter(names.SORT_CACHE_REPLAYS)
        _drain(live.stream_for_phrase("heels"))
        # "heels" consumed the shared run entirely from its cache.
        assert shared.pulls == len(GENERAL)
        assert collector.counter(names.SORT_CACHE_REPLAYS) > replays_before

    def test_keyed_pulls_sum_to_operator_pulls(self):
        collector = MetricsCollector()
        plan = build_shared_sort_plan(PHRASE_ADVERTISERS, RATES)
        live = plan.instantiate(BIDS, collector)
        for phrase in PHRASE_ADVERTISERS:
            _drain(live.stream_for_phrase(phrase))
        keyed = collector.keyed(names.SORT_NODE_PULLS)
        assert sum(keyed.values()) == collector.counter(
            names.SORT_OPERATOR_PULLS
        )
        # Shared plan nodes are keyed by int id, assembly by tuple tag.
        assert any(isinstance(label, int) for label in keyed)


def _run_ta_all_phrases(live, collector):
    results = {}
    for phrase in sorted(PHRASE_ADVERTISERS):
        results[phrase] = threshold_top_k(
            3,
            live.stream_for_phrase(phrase),
            _ctr_order(phrase),
            BIDS,
            CTR,
            collector,
        )
    return results


class TestSharingNeverCostsMore:
    def test_ta_sorted_accesses_shared_at_most_independent(self):
        shared_collector = MetricsCollector()
        shared_plan = build_shared_sort_plan(PHRASE_ADVERTISERS, RATES)
        shared_live = shared_plan.instantiate(BIDS, shared_collector)
        shared_results = _run_ta_all_phrases(shared_live, shared_collector)

        independent_collector = MetricsCollector()
        independent_results = {}
        for phrase, ids in PHRASE_ADVERTISERS.items():
            solo_plan = build_shared_sort_plan(
                {phrase: ids}, {phrase: RATES[phrase]}
            )
            solo_live = solo_plan.instantiate(BIDS, independent_collector)
            independent_results[phrase] = threshold_top_k(
                3,
                solo_live.stream_for_phrase(phrase),
                _ctr_order(phrase),
                BIDS,
                CTR,
                independent_collector,
            )

        # Identical stream contents => identical rankings and stop depth.
        for phrase in PHRASE_ADVERTISERS:
            assert (
                shared_results[phrase].ranking
                == independent_results[phrase].ranking
            )
        assert shared_collector.counter(
            names.TA_SORTED_ACCESSES
        ) <= independent_collector.counter(names.TA_SORTED_ACCESSES)
        assert shared_collector.counter(
            names.TA_RANDOM_ACCESSES
        ) <= independent_collector.counter(names.TA_RANDOM_ACCESSES)
        assert shared_collector.counter(names.TA_RUNS) == len(
            PHRASE_ADVERTISERS
        )

    def test_shared_full_sort_pulls_at_most_independent(self):
        shared_plan = build_shared_sort_plan(PHRASE_ADVERTISERS, RATES)
        shared_live = shared_plan.instantiate(BIDS)
        for phrase in PHRASE_ADVERTISERS:
            _drain(shared_live.stream_for_phrase(phrase))

        independent_total = 0
        for phrase, ids in PHRASE_ADVERTISERS.items():
            solo_plan = build_shared_sort_plan(
                {phrase: ids}, {phrase: RATES[phrase]}
            )
            solo_live = solo_plan.instantiate(BIDS)
            _drain(solo_live.stream_for_phrase(phrase))
            independent_total += solo_live.total_pulls()

        assert shared_live.total_pulls() < independent_total
        # Each advertiser's bid is read from the store exactly once even
        # though four of them feed both phrases.
        assert shared_live.leaf_reads() == len(BIDS)

    def test_ta_stop_depth_gauge_records_last_run(self):
        collector = MetricsCollector()
        plan = build_shared_sort_plan(PHRASE_ADVERTISERS, RATES)
        live = plan.instantiate(BIDS, collector)
        results = _run_ta_all_phrases(live, collector)
        last_phrase = sorted(PHRASE_ADVERTISERS)[-1]
        assert collector.gauges[names.TA_STOP_DEPTH] == float(
            results[last_phrase].stages
        )
        assert collector.counter(names.TA_STAGES) == sum(
            r.stages for r in results.values()
        )
