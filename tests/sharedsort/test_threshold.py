"""Tests for the threshold algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidPlanError
from repro.sharedsort.operators import LeafSource, MergeOperator
from repro.sharedsort.threshold import threshold_top_k


def build_stream(bids):
    """A balanced on-demand merge tree over {id: bid}."""
    leaves = [LeafSource(bid, advertiser) for advertiser, bid in sorted(bids.items())]
    level = leaves
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(MergeOperator(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def brute_force(bids, factors, k):
    order = sorted(bids, key=lambda i: (-bids[i] * factors[i], i))
    return order[:k]


def run_ta(bids, factors, k):
    stream = build_stream(bids)
    ctr_order = sorted(bids, key=lambda i: (-factors[i], i))
    return threshold_top_k(k, stream, ctr_order, bids, factors)


class TestCorrectness:
    def test_simple(self):
        bids = {1: 10.0, 2: 5.0, 3: 1.0}
        factors = {1: 0.1, 2: 1.0, 3: 2.0}
        result = run_ta(bids, factors, 2)
        assert list(result.ranking.advertiser_ids()) == brute_force(
            bids, factors, 2
        )

    def test_k_larger_than_population(self):
        bids = {1: 1.0, 2: 2.0}
        factors = {1: 1.0, 2: 1.0}
        result = run_ta(bids, factors, 5)
        assert list(result.ranking.advertiser_ids()) == [2, 1]

    def test_k_must_be_positive(self):
        with pytest.raises(InvalidPlanError):
            threshold_top_k(0, build_stream({1: 1.0}), [1], {1: 1.0}, {1: 1.0})

    def test_missing_random_access_raises(self):
        with pytest.raises(InvalidPlanError):
            threshold_top_k(1, build_stream({1: 1.0}), [1], {1: 1.0}, {})

    @settings(deadline=None, max_examples=80)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=16,
        ),
        st.integers(min_value=1, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_matches_brute_force(self, bids, k, rnd):
        factors = {i: rnd.uniform(0.1, 2.0) for i in bids}
        result = run_ta(bids, factors, k)
        assert list(result.ranking.advertiser_ids()) == brute_force(
            bids, factors, k
        )


class TestEfficiency:
    def test_early_termination_on_aligned_lists(self):
        """When bid order and factor order agree, TA stops after ~k stages."""
        n = 64
        bids = {i: float(n - i) for i in range(n)}
        factors = {i: (n - i) / n for i in range(n)}
        result = run_ta(bids, factors, 3)
        assert result.stages < n / 2
        assert result.sorted_accesses < n

    def test_full_scan_worst_case_bounded(self):
        """Anti-correlated lists force deep scans but never beyond both
        lists' lengths."""
        n = 32
        bids = {i: float(i) for i in range(n)}
        factors = {i: float(n - i) for i in range(n)}
        result = run_ta(bids, factors, 2)
        assert result.stages <= n
        assert result.sorted_accesses <= 2 * n

    def test_counters_consistent(self):
        bids = {i: float(i * 7 % 13) for i in range(10)}
        factors = {i: float(i * 5 % 7 + 1) for i in range(10)}
        result = run_ta(bids, factors, 3)
        assert result.random_accesses <= 2 * result.stages
        assert result.sorted_accesses <= 2 * result.stages
        assert len(result.ranking) == 3


class TestSharedStreamIntegration:
    def test_ta_over_shared_plan_stream(self):
        from repro.sharedsort.plan import build_shared_sort_plan

        phrases = {
            "books": [1, 2, 3, 4],
            "music": [1, 2, 5, 6],
        }
        bids = {1: 9.0, 2: 3.0, 3: 7.0, 4: 1.0, 5: 8.0, 6: 2.0}
        factors = {
            "books": {1: 0.5, 2: 1.5, 3: 1.0, 4: 2.0},
            "music": {1: 1.0, 2: 1.0, 5: 0.2, 6: 3.0},
        }
        plan = build_shared_sort_plan(phrases, 1.0)
        live = plan.instantiate(bids)
        for phrase, ads in phrases.items():
            ctr_order = sorted(
                ads, key=lambda i: (-factors[phrase][i], i)
            )
            result = threshold_top_k(
                2,
                live.stream_for_phrase(phrase),
                ctr_order,
                bids,
                factors[phrase],
            )
            expected = sorted(
                ads, key=lambda i: (-bids[i] * factors[phrase][i], i)
            )[:2]
            assert list(result.ranking.advertiser_ids()) == expected
