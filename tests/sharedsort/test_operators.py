"""Tests for on-demand merge operators and their caches."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidPlanError
from repro.sharedsort.operators import LeafSource, MergeOperator


def drain(stream):
    items = []
    index = 0
    while (item := stream.item(index)) is not None:
        items.append(item)
        index += 1
    return items


class TestLeafSource:
    def test_single_item(self):
        leaf = LeafSource(2.5, 7)
        assert leaf.item(0) == (2.5, 7)
        assert leaf.item(1) is None
        assert leaf.advertiser_ids == frozenset({7})

    def test_pull_counted_once(self):
        leaf = LeafSource(1.0, 1)
        leaf.item(0)
        leaf.item(0)
        assert leaf.pulls == 1

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidPlanError):
            LeafSource(1.0, 1).item(-1)


class TestMergeOperator:
    def test_merges_descending(self):
        merged = MergeOperator(LeafSource(1.0, 1), LeafSource(3.0, 2))
        assert drain(merged) == [(3.0, 2), (1.0, 1)]

    def test_tie_broken_by_lower_id(self):
        merged = MergeOperator(LeafSource(2.0, 5), LeafSource(2.0, 3))
        assert drain(merged) == [(2.0, 3), (2.0, 5)]

    def test_rejects_overlapping_children(self):
        with pytest.raises(InvalidPlanError):
            MergeOperator(LeafSource(1.0, 1), LeafSource(2.0, 1))

    def test_advertiser_ids_union(self):
        merged = MergeOperator(LeafSource(1.0, 1), LeafSource(2.0, 2))
        assert merged.advertiser_ids == frozenset({1, 2})

    def test_lazy_no_work_before_demand(self):
        merged = MergeOperator(LeafSource(1.0, 1), LeafSource(2.0, 2))
        assert merged.pulls == 0

    def test_on_demand_pull_count(self):
        left = MergeOperator(LeafSource(9.0, 1), LeafSource(7.0, 2))
        right = MergeOperator(LeafSource(1.0, 3), LeafSource(2.0, 4))
        root = MergeOperator(left, right)
        root.item(0)  # just the top item
        assert root.pulls == 1
        # The losing subtree only needed to produce its best candidate.
        assert right.pulls == 1
        assert left.pulls == 1

    def test_cache_replay_costs_nothing(self):
        merged = MergeOperator(LeafSource(1.0, 1), LeafSource(2.0, 2))
        drain(merged)
        pulls = merged.pulls
        drain(merged)
        assert merged.pulls == pulls

    def test_shared_child_serves_two_parents(self):
        shared = MergeOperator(LeafSource(5.0, 1), LeafSource(4.0, 2))
        parent_a = MergeOperator(shared, LeafSource(3.0, 3))
        parent_b = MergeOperator(shared, LeafSource(6.0, 4))
        assert [i for _, i in drain(parent_a)] == [1, 2, 3]
        pulls_after_a = shared.pulls
        assert [i for _, i in drain(parent_b)] == [4, 1, 2]
        # Parent B replayed the shared child's cache: no extra pulls.
        assert shared.pulls == pulls_after_a

    def test_emitted_prefix(self):
        merged = MergeOperator(LeafSource(1.0, 1), LeafSource(2.0, 2))
        merged.item(0)
        assert merged.emitted() == ((2.0, 2),)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=16,
        )
    )
    def test_balanced_tree_full_sort(self, bids):
        leaves = [LeafSource(b, i) for i, b in enumerate(bids)]
        level = leaves
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(MergeOperator(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        expected = sorted(
            ((b, i) for i, b in enumerate(bids)),
            key=lambda t: (-t[0], t[1]),
        )
        assert drain(level[0]) == expected

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=12,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_worst_case_pulls_bounded_by_subtree(self, bids, demand):
        leaves = [LeafSource(b, i) for i, b in enumerate(bids)]
        level = leaves
        operators = []
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                op = MergeOperator(level[i], level[i + 1])
                operators.append(op)
                nxt.append(op)
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        root = level[0]
        for index in range(min(demand, len(bids))):
            root.item(index)
        for op in operators:
            assert op.pulls <= len(op.advertiser_ids)
