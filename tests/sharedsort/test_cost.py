"""Tests for the shared-sort cost model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sharedsort.cost import (
    expected_full_sort_cost,
    expected_occurrences_beyond_first,
    expected_occurrences_beyond_first_closed_form,
    expected_savings_of_merge,
    independent_sort_cost,
)
from repro.sharedsort.plan import _huffman_merge_cost

rates_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=8,
)


class TestExpectedOccurrencesBeyondFirst:
    def test_empty(self):
        assert expected_occurrences_beyond_first([]) == 0.0

    def test_single_phrase_never_beyond_first(self):
        assert expected_occurrences_beyond_first([0.8]) == 0.0

    def test_two_certain_phrases(self):
        assert expected_occurrences_beyond_first([1.0, 1.0]) == pytest.approx(1.0)

    def test_two_halves(self):
        # E[N] - Pr[N >= 1] = 1.0 - 0.75 = 0.25.
        assert expected_occurrences_beyond_first([0.5, 0.5]) == pytest.approx(0.25)

    @settings(deadline=None, max_examples=60)
    @given(rates_lists)
    def test_paper_form_equals_closed_form(self, rates):
        paper = expected_occurrences_beyond_first(rates)
        closed = expected_occurrences_beyond_first_closed_form(rates)
        assert paper == pytest.approx(closed, abs=1e-9)

    @settings(deadline=None, max_examples=30)
    @given(rates_lists)
    def test_matches_monte_carlo(self, rates):
        rng = random.Random(13)
        trials = 4000
        total = 0
        for _ in range(trials):
            occurring = sum(1 for r in rates if rng.random() < r)
            total += max(0, occurring - 1)
        estimate = total / trials
        exact = expected_occurrences_beyond_first(rates)
        assert abs(estimate - exact) < 0.08 * max(1.0, exact) + 0.05

    @settings(deadline=None, max_examples=60)
    @given(rates_lists)
    def test_order_invariant(self, rates):
        shuffled = list(reversed(rates))
        assert expected_occurrences_beyond_first(
            rates
        ) == pytest.approx(expected_occurrences_beyond_first(shuffled))


class TestSavingsAndCost:
    def test_savings_scale_with_size(self):
        small = expected_savings_of_merge(2, [0.5, 0.5])
        big = expected_savings_of_merge(8, [0.5, 0.5])
        assert big == pytest.approx(4 * small)

    def test_no_savings_for_single_phrase(self):
        assert expected_savings_of_merge(16, [0.9]) == 0.0

    def test_expected_full_sort_cost(self):
        cost = expected_full_sort_cost(
            [(4, [1.0]), (2, [0.5, 0.5])]
        )
        assert cost == pytest.approx(4 * 1.0 + 2 * 0.75)

    def test_independent_sort_cost_power_of_two(self):
        # 4 items balanced: sizes 2 + 2 + 4 = 8 per phrase.
        cost = independent_sort_cost({"p": 4}, {"p": 1.0})
        assert cost == pytest.approx(8.0)

    def test_independent_sort_cost_scales_with_rate(self):
        full = independent_sort_cost({"p": 8}, {"p": 1.0})
        half = independent_sort_cost({"p": 8}, {"p": 0.5})
        assert half == pytest.approx(full / 2)

    def test_single_item_phrase_costs_nothing(self):
        assert independent_sort_cost({"p": 1}, {"p": 1.0}) == 0.0


class TestHuffmanMergeCost:
    def test_single_run(self):
        assert _huffman_merge_cost([5]) == 0

    def test_two_runs(self):
        assert _huffman_merge_cost([3, 4]) == 7

    def test_huffman_beats_chain(self):
        sizes = [1, 1, 1, 8]
        # Chain largest-first: 9 + 10 + 11 = 30; Huffman: 2 + 3 + 11 = 16.
        assert _huffman_merge_cost(sizes) == 16

    def test_equal_runs_match_balanced(self):
        # 4 equal runs of 2: merges 4 + 4 + 8 = 16.
        assert _huffman_merge_cost([2, 2, 2, 2]) == 16
