"""Batched stream reads and the batched threshold algorithm.

Contract under test: :meth:`SortStream.items` never forces production
beyond what an item-at-a-time read of its ``lo`` would have forced, so
the batched threshold algorithm performs exactly the operator pulls of
the paper's literal register model (``batched=False``, kept as the
differential oracle) while issuing far fewer Python-level stream reads.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import InvalidPlanError
from repro.instrument import MetricsCollector, names as metric_names
from repro.sharedsort.operators import LeafSource, MergeOperator
from repro.sharedsort.threshold import threshold_top_k


def build_stream(bids, collector=None):
    """A balanced on-demand merge tree over {id: bid}."""
    kwargs = {} if collector is None else {"collector": collector}
    leaves = [
        LeafSource(bid, advertiser, **kwargs)
        for advertiser, bid in sorted(bids.items())
    ]
    level = leaves
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(MergeOperator(level[i], level[i + 1], **kwargs))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def random_bids(rng, n):
    return {i: round(rng.uniform(0.1, 20.0), 2) for i in range(n)}


def total_pulls(stream):
    """Operator pulls over the whole tree (leaves excluded)."""
    if isinstance(stream, MergeOperator):
        return (
            stream.pulls
            + total_pulls(stream.left)
            + total_pulls(stream.right)
        )
    return 0


class TestItemsSemantics:
    def test_bad_range_rejected(self):
        stream = build_stream({1: 1.0})
        with pytest.raises(InvalidPlanError):
            stream.items(-1, 2)
        with pytest.raises(InvalidPlanError):
            stream.items(3, 1)

    def test_items_match_per_item_reads(self):
        bids = random_bids(random.Random(7), 9)
        batched = build_stream(bids)
        naive = build_stream(bids)
        got = batched.items(0, 20)
        expected = []
        index = 0
        while (item := naive.item(index)) is not None:
            expected.append(item)
            index += 1
        # lo=0 forces only item 0; the rest of the range is whatever the
        # cache held (nothing, on a fresh stream).
        assert got == expected[:1]
        # After draining, the full range replays in one call.
        for i in range(len(bids) + 1):
            batched.item(i)
        assert batched.items(0, 20) == expected

    def test_items_never_prefetch_beyond_lo(self):
        bids = random_bids(random.Random(11), 8)
        stream = build_stream(bids)
        reference = build_stream(bids)
        for lo in range(len(bids) + 2):
            stream.items(lo, lo + 64)
            reference.item(lo)
            assert total_pulls(stream) == total_pulls(reference), lo

    def test_items_past_end_returns_empty(self):
        stream = build_stream({1: 1.0, 2: 2.0})
        for i in range(3):
            stream.item(i)
        assert stream.items(2, 10) == []
        assert stream.items(5, 5) == []

    def test_items_counts_batch_metrics(self):
        collector = MetricsCollector()
        stream = build_stream({1: 1.0, 2: 2.0, 3: 3.0}, collector)
        for i in range(4):
            stream.item(i)
        before = collector.snapshot()
        got = stream.items(0, 10)
        delta = collector.delta_since(before)
        assert len(got) == 3
        assert delta.get(metric_names.SORT_BATCH_PULLS) == 1
        assert delta.get(metric_names.SORT_BATCHED_ITEMS) == 3
        # All three were already cached, so they are replays too.
        assert delta.get(metric_names.SORT_CACHE_REPLAYS) == 3
        assert not any(k == metric_names.SORT_OPERATOR_PULLS for k in delta)

    def test_last_emitted_tracks_cache_tail(self):
        stream = build_stream({1: 1.0, 2: 2.0})
        assert stream.last_emitted() is None
        assert stream.emitted_count() == 0
        first = stream.item(0)
        assert stream.last_emitted() == first
        stream.item(1)
        assert stream.last_emitted() == stream.emitted()[-1]
        assert stream.emitted_count() == 2


class TestBatchedThresholdDifferential:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=1, max_value=16),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_batched_matches_register_model(self, n, k, seed):
        rng = random.Random(seed)
        bids = random_bids(rng, n)
        factors = {i: round(rng.uniform(0.01, 2.0), 3) for i in bids}
        ctr_order = sorted(bids, key=lambda i: (-factors[i], i))

        stream_b = build_stream(bids)
        result_b = threshold_top_k(
            k, stream_b, ctr_order, bids, factors, batched=True
        )
        stream_n = build_stream(bids)
        result_n = threshold_top_k(
            k, stream_n, ctr_order, bids, factors, batched=False
        )
        assert result_b.ranking.entries == result_n.ranking.entries
        assert result_b.stages == result_n.stages
        assert result_b.sorted_accesses == result_n.sorted_accesses
        assert result_b.random_accesses == result_n.random_accesses
        assert result_b.threshold == result_n.threshold
        # The batched engine must not pull operators harder than the
        # paper's one-register-read-per-stage model.
        assert total_pulls(stream_b) <= total_pulls(stream_n)

    def test_exhausted_bid_list_bound_unchanged(self):
        # Satellite regression: the incrementally maintained last-bid
        # local must reproduce the old re-read of ``item(stages - 1)``
        # exactly -- same result, same sorted-access count -- in the
        # regime where the bid stream exhausts before the CTR list.
        bids = {1: 5.0, 2: 4.0}
        factors = {1: 0.1, 2: 0.2, 3: 0.9, 4: 0.8}
        full_bids = {1: 5.0, 2: 4.0, 3: 0.0, 4: 0.0}
        ctr_order = sorted(factors, key=lambda i: (-factors[i], i))
        for batched in (True, False):
            collector = MetricsCollector()
            stream = build_stream(bids, collector)
            result = threshold_top_k(
                3,
                stream,
                ctr_order,
                full_bids,
                factors,
                collector,
                batched=batched,
            )
            assert result.stages > len(bids)  # the bid list did exhaust
            assert (
                collector.counter(metric_names.TA_SORTED_ACCESSES)
                == result.sorted_accesses
            )
            assert list(result.ranking.advertiser_ids()) == sorted(
                full_bids,
                key=lambda i: (-full_bids[i] * factors[i], i),
            )[:3]

    def test_shared_stream_batched_second_reader_replays(self):
        # The motivating case: a second phrase reading a shared stream
        # finds the cache warm and consumes it in O(log n) batched calls.
        collector = MetricsCollector()
        bids = random_bids(random.Random(3), 12)
        stream = build_stream(bids, collector)
        factors = {i: 1.0 for i in bids}
        ctr_order = sorted(bids, key=lambda i: (-factors[i], i))
        threshold_top_k(3, stream, ctr_order, bids, factors, collector)
        pulls_after_first = total_pulls(stream)
        before = collector.snapshot()
        threshold_top_k(3, stream, ctr_order, bids, factors, collector)
        delta = collector.delta_since(before)
        # Second run replays: zero new operator pulls, few batch calls.
        assert total_pulls(stream) == pulls_after_first
        assert delta.get(metric_names.SORT_OPERATOR_PULLS, 0) == 0
        assert 0 < delta.get(metric_names.SORT_BATCH_PULLS, 0) <= 8
