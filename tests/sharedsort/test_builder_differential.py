"""Differential tests: the lazy builder reproduces the naive builder.

The tentpole contract is byte-identity, not equivalence: for every
instance, ``planner="lazy"`` and ``planner="naive"`` must serialize to
the same canonical bytes (:func:`repro.sharedsort.serialize.serialize_plan`),
pinning node ids, children, consumed phrase sets, root order, and the
float-savings-driven topology.  A fixed 50+ seed sweep guards the exact
work-reduction claim; hypothesis explores the shape space.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import PlanConstructionError
from repro.instrument import MetricsCollector, names as metric_names
from repro.sharedsort.plan import SortBuilderStats, build_shared_sort_plan
from repro.sharedsort.serialize import plan_to_dict, serialize_plan


def random_instance(rng: random.Random):
    num_phrases = rng.randint(1, 10)
    num_ads = rng.randint(1, 16)
    phrases = {
        f"q{p}": rng.sample(range(num_ads), rng.randint(1, num_ads))
        for p in range(num_phrases)
    }
    rates = {
        f"q{p}": rng.choice([1.0, 0.75, 0.5, 0.25, rng.random()])
        for p in range(num_phrases)
    }
    return phrases, rates


@st.composite
def phrase_maps(draw):
    num_ads = draw(st.integers(min_value=1, max_value=12))
    universe = list(range(num_ads))
    num_phrases = draw(st.integers(min_value=1, max_value=5))
    phrases = {}
    for index in range(num_phrases):
        members = draw(
            st.lists(
                st.sampled_from(universe),
                min_size=1,
                max_size=num_ads,
                unique=True,
            )
        )
        phrases[f"p{index}"] = members
    return phrases


class TestByteIdentity:
    def test_fifty_seeded_instances_serialize_identically(self):
        naive_evals = 0
        lazy_evals = 0
        for seed in range(50):
            rng = random.Random(seed)
            phrases, rates = random_instance(rng)
            stats_naive = SortBuilderStats()
            stats_lazy = SortBuilderStats()
            naive = build_shared_sort_plan(
                phrases, rates, planner="naive", stats=stats_naive
            )
            lazy = build_shared_sort_plan(
                phrases, rates, planner="lazy", stats=stats_lazy
            )
            assert serialize_plan(naive) == serialize_plan(lazy), seed
            assert stats_naive.merges == stats_lazy.merges
            naive_evals += stats_naive.savings_evaluated
            lazy_evals += stats_lazy.savings_evaluated
        # The aggregate work reduction over the sweep is the point of the
        # lazy engine; a regression to per-round rescans would erase it.
        assert lazy_evals * 2 <= naive_evals

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(phrases=phrase_maps(), rate=st.floats(min_value=0.05, max_value=1.0))
    def test_property_lazy_matches_naive(self, phrases, rate):
        naive = build_shared_sort_plan(phrases, rate, planner="naive")
        lazy = build_shared_sort_plan(phrases, rate, planner="lazy")
        assert plan_to_dict(naive) == plan_to_dict(lazy)
        assert serialize_plan(naive) == serialize_plan(lazy)

    def test_default_planner_is_lazy(self):
        phrases = {"a": [1, 2, 3, 4], "b": [1, 2, 5, 6], "c": [3, 4, 5, 6]}
        default = build_shared_sort_plan(phrases, 0.6)
        lazy = build_shared_sort_plan(phrases, 0.6, planner="lazy")
        assert serialize_plan(default) == serialize_plan(lazy)


class TestBuilderWork:
    def test_unknown_planner_rejected(self):
        with pytest.raises(PlanConstructionError):
            build_shared_sort_plan({"a": [1, 2]}, planner="eager")

    def test_lazy_stats_fields_move(self):
        phrases = {
            f"q{p}": [p, p + 1, p + 2, (p + 5) % 9, (p + 7) % 9]
            for p in range(6)
        }
        stats = SortBuilderStats()
        build_shared_sort_plan(phrases, 0.5, planner="lazy", stats=stats)
        assert stats.merges > 0
        assert stats.heap_pushes > 0
        assert stats.savings_evaluated > 0
        # The naive engine never uses the heap/memo machinery.
        naive = SortBuilderStats()
        build_shared_sort_plan(phrases, 0.5, planner="naive", stats=naive)
        assert naive.heap_pushes == 0
        assert naive.savings_memo_hits == 0
        assert naive.stale_rescored == 0

    def test_collector_receives_builder_counters(self):
        collector = MetricsCollector()
        phrases = {"a": [1, 2, 3, 4], "b": [1, 2, 3, 4], "c": [1, 2, 5, 6]}
        stats = SortBuilderStats()
        build_shared_sort_plan(
            phrases, 1.0, planner="lazy", stats=stats, collector=collector
        )
        assert (
            collector.counter(metric_names.SORT_PAIRS_SCORED)
            == stats.savings_evaluated
        )
        assert (
            collector.counter(metric_names.SORT_SAVINGS_MEMO_HITS)
            == stats.savings_memo_hits
        )

    def test_savings_memo_only_dedupes_identical_computations(self):
        # Two phrases with the same advertiser set and rate produce
        # identical (size, mask) savings keys; the memo must not change
        # the chosen merges, only skip recomputation.
        phrases = {"a": [1, 2, 3, 4], "b": [1, 2, 3, 4], "c": [1, 2]}
        stats = SortBuilderStats()
        lazy = build_shared_sort_plan(
            phrases, 1.0, planner="lazy", stats=stats
        )
        naive = build_shared_sort_plan(phrases, 1.0, planner="naive")
        assert serialize_plan(lazy) == serialize_plan(naive)
