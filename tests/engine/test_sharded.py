"""The sharded parallel engine and its merge boundary.

Sharding rests on a structural fact: connected components of the
phrase-advertiser bipartite graph are fully independent sub-markets.
These tests pin (a) the component partition itself, (b) the pure merge
helpers, and (c) the process-backed :class:`ShardedEngine` -- most
importantly that ``shards=1`` is *byte-identical* to the sequential
engine, which is what makes the sharded path a conservative extension
rather than a second implementation of the auction.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.engine.changefeed import BidChanged, PhraseRemoved
from repro.engine.pipeline import EngineReport, RoundReport, SharedAuctionEngine
from repro.engine.sharded import (
    ShardedEngine,
    assign_components,
    connected_components,
    merge_engine_reports,
    merge_round_reports,
)
from repro.errors import InvalidAuctionError
from repro.workloads.fig4 import fig4_market

SLOTS = [0.3, 0.2, 0.1]


def _tiled_market(num_components=3, seed=1):
    return fig4_market(
        num_queries=4,
        num_advertisers=10,
        num_components=num_components,
        seed=seed,
    )


class TestConnectedComponents:
    def test_hand_case(self):
        graph = {
            "a": (1, 2),
            "b": (2, 3),
            "c": (7,),
            "d": (8, 9, 10),
        }
        components = connected_components(graph)
        assert components == [
            ((1, 2, 3), ("a", "b")),
            ((8, 9, 10), ("d",)),
            ((7,), ("c",)),
        ]

    def test_partition_properties_on_generated_market(self):
        advertisers, _ = _tiled_market(num_components=4)
        graph = {}
        for advertiser in advertisers:
            for phrase in advertiser.phrases:
                graph.setdefault(phrase, []).append(
                    advertiser.advertiser_id
                )
        graph = {p: tuple(sorted(ids)) for p, ids in graph.items()}
        components = connected_components(graph)
        assert len(components) == 4
        all_ids = [i for ids, _ in components for i in ids]
        assert sorted(all_ids) == sorted(
            a.advertiser_id for a in advertisers
        )
        assert len(all_ids) == len(set(all_ids))
        all_phrases = [p for _, phrases in components for p in phrases]
        assert sorted(all_phrases) == sorted(graph)
        # Ordered biggest-first.
        sizes = [len(ids) for ids, _ in components]
        assert sizes == sorted(sizes, reverse=True)
        # No advertiser's phrases straddle two components.
        phrase_component = {
            p: index
            for index, (_, phrases) in enumerate(components)
            for p in phrases
        }
        for advertiser in advertisers:
            owners = {phrase_component[p] for p in advertiser.phrases}
            assert len(owners) == 1

    def test_deterministic_across_input_order(self):
        graph = {"a": (1, 2), "b": (3, 4), "c": (5,)}
        reversed_graph = dict(reversed(list(graph.items())))
        assert connected_components(graph) == connected_components(
            reversed_graph
        )


class TestAssignComponents:
    def test_lpt_balances_by_advertiser_count(self):
        components = [
            ((1, 2, 3, 4), ("a",)),
            ((5, 6, 7), ("b",)),
            ((8, 9), ("c",)),
            ((10,), ("d",)),
        ]
        assignment = assign_components(components, 2)
        # 4 -> shard 0; 3 -> shard 1; 2 -> shard 1 (load 3 < 4 is
        # false: loads are 4 vs 3, so lightest is shard 1); 1 -> shard 0?
        # loads then 4 vs 5 -> shard 0.
        assert assignment == [0, 1, 1, 0]
        loads = [0, 0]
        for (ids, _), shard in zip(components, assignment):
            loads[shard] += len(ids)
        assert max(loads) - min(loads) <= 1

    def test_single_shard_takes_everything(self):
        components = [((1,), ("a",)), ((2,), ("b",))]
        assert assign_components(components, 1) == [0, 0]


class TestMergeHelpers:
    def test_merge_round_reports_unions_disjoint_allocations(self):
        first = RoundReport(2, ("a",))
        first.revenue_cents = 100
        first.scans = 5
        first.allocations["a"] = (("winner", 1),)
        first.counters = {"x": 1}
        second = RoundReport(2, ("b",))
        second.revenue_cents = 50
        second.merges = 3
        second.allocations["b"] = (("winner", 2),)
        second.counters = {"x": 2, "y": 7}
        merged = merge_round_reports([first, second])
        assert merged.round_index == 2
        assert merged.occurring_phrases == ("a", "b")
        assert merged.revenue_cents == 150
        assert merged.scans == 5 and merged.merges == 3
        assert set(merged.allocations) == {"a", "b"}
        assert merged.counters == {"x": 3, "y": 7}

    def test_merge_round_reports_rejects_mismatched_rounds(self):
        with pytest.raises(InvalidAuctionError, match="round index"):
            merge_round_reports([RoundReport(1, ()), RoundReport(2, ())])
        with pytest.raises(InvalidAuctionError, match="zero"):
            merge_round_reports([])

    def test_merge_engine_reports_rejects_mismatched_histories(self):
        left, right = EngineReport(), EngineReport()
        left.absorb(RoundReport(0, ()))
        with pytest.raises(InvalidAuctionError, match="round count"):
            merge_engine_reports([left, right])


class TestShardedEngine:
    def test_single_shard_is_byte_identical_to_sequential(self):
        advertisers, rates = _tiled_market(num_components=2)
        sequential = SharedAuctionEngine(
            tuple(advertisers), SLOTS, rates, seed=5
        )
        sequential_report = sequential.run(10)
        with ShardedEngine(
            advertisers, SLOTS, rates, shards=1, seed=5
        ) as sharded:
            assert sharded.shards == 1
            sharded_report = sharded.run(10)
            spent = sharded.spent_snapshot()
        assert (
            sharded_report.revenue_cents == sequential_report.revenue_cents
        )
        assert (
            sharded_report.forgiven_cents
            == sequential_report.forgiven_cents
        )
        assert sharded_report.clicks == sequential_report.clicks
        assert len(sharded_report.history) == len(
            sequential_report.history
        )
        for mine, theirs in zip(
            sharded_report.history, sequential_report.history
        ):
            assert mine.allocations == theirs.allocations
            assert mine.occurring_phrases == theirs.occurring_phrases
        assert spent == sequential.budget_manager.spent_snapshot()

    def test_multi_shard_run_is_deterministic(self):
        advertisers, rates = _tiled_market(num_components=3)
        reports = []
        for _ in range(2):
            with ShardedEngine(
                advertisers, SLOTS, rates, shards=3, seed=7,
                layout="columnar",
            ) as sharded:
                assert sharded.shards == 3
                reports.append(sharded.run(6))
        assert reports[0].revenue_cents == reports[1].revenue_cents
        assert reports[0].clicks == reports[1].clicks
        for left, right in zip(reports[0].history, reports[1].history):
            assert left.allocations == right.allocations

    def test_explicit_round_matches_sequential_allocations(self):
        # Components never interact, so an explicitly supplied occurring
        # set must resolve to the sequential engine's exact allocations
        # regardless of how the phrases are spread over shards.
        advertisers, rates = _tiled_market(num_components=3)
        phrases = sorted(rates)
        sequential = SharedAuctionEngine(
            tuple(advertisers), SLOTS, rates, seed=0
        )
        expected = sequential.run_round(phrases)
        with ShardedEngine(
            advertisers, SLOTS, rates, shards=2, seed=0
        ) as sharded:
            merged = sharded.run_round(phrases)
        assert merged.allocations == expected.allocations
        assert merged.occurring_phrases == expected.occurring_phrases
        assert merged.revenue_cents == expected.revenue_cents

    def test_unknown_phrase_matches_sequential_error(self):
        advertisers, rates = _tiled_market()
        with ShardedEngine(advertisers, SLOTS, rates, shards=2) as sharded:
            with pytest.raises(InvalidAuctionError, match="no advertisers"):
                sharded.run_round(["nonexistent"])

    def test_shards_clamped_to_component_count(self):
        advertisers, rates = _tiled_market(num_components=2)
        with ShardedEngine(
            advertisers, SLOTS, rates, shards=8, seed=0
        ) as sharded:
            assert sharded.requested_shards == 8
            assert sharded.shards == 2
            stats = sharded.stats()
        assert len(stats) == 2
        assert sum(s["advertisers"] for s in stats) == len(advertisers)
        assert sum(s["phrases"] for s in stats) == len(rates)

    def test_event_routing_and_settlement(self):
        advertisers, rates = _tiled_market(num_components=2)
        with ShardedEngine(advertisers, SLOTS, rates, shards=2) as sharded:
            sharded.run(3)
            # Routed by advertiser id and by phrase; no subscriber is
            # attached, so both are no-ops that must not error.
            sharded.publish(BidChanged(advertisers[0].advertiser_id))
            sharded.publish(PhraseRemoved(sorted(rates)[0]))
            with pytest.raises(InvalidAuctionError, match="unknown"):
                sharded.publish(BidChanged(10_000))
            settled = sharded.settle_remaining_clicks()
        assert len(settled) == 3

    def test_rejects_collector_and_bad_shards(self):
        advertisers, rates = _tiled_market()
        with pytest.raises(InvalidAuctionError, match="collector"):
            ShardedEngine(advertisers, SLOTS, rates, collector=object())
        with pytest.raises(InvalidAuctionError, match="positive"):
            ShardedEngine(advertisers, SLOTS, rates, shards=0)

    def test_close_is_idempotent(self):
        advertisers, rates = _tiled_market()
        sharded = ShardedEngine(advertisers, SLOTS, rates, shards=2)
        sharded.close()
        sharded.close()
