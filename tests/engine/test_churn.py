"""Market churn through the bus: maintainer rebind + cache invalidation.

Advertisers and phrases enter and leave mid-run as
``AdvertiserAdded`` / ``AdvertiserRemoved`` / ``PhraseAdded`` /
``PhraseRemoved`` events on one :class:`ChangeFeed`.  The
:class:`PlanMaintainer` consumes them through its push handler and
repairs the plan inside the publishing call; its plan-change listeners
then rebind the :class:`CrossRoundPlanExecutor` (carrying surviving
node values) and the :class:`CrossRoundSortCache` (carrying streams
whose advertiser sets survived) -- the first test exercising structural
churn and both cross-round caches *together*.

Throughout, both caches run ``verify=True``: any churn-driven value
change not covered by its event would raise inside the round.
"""

from __future__ import annotations

import pytest

from repro.core.topk import top_k_scan
from repro.engine.changefeed import (
    AdvertiserAdded,
    AdvertiserRemoved,
    BidChanged,
    ChangeFeed,
    PhraseAdded,
    PhraseRemoved,
)
from repro.errors import InvalidPlanError
from repro.plans.executor import CrossRoundPlanExecutor
from repro.plans.maintenance import PlanMaintainer
from repro.sharedsort.cache import CrossRoundSortCache
from repro.sharedsort.plan import build_shared_sort_plan


def drain(stream):
    items = []
    index = 0
    while (item := stream.item(index)) is not None:
        items.append(item)
        index += 1
    return items


class ChurnHarness:
    """The full bus-driven stack of one serving loop."""

    K = 2
    CTR = {a: 0.5 + 0.05 * a for a in range(12)}

    def __init__(self):
        self.feed = ChangeFeed()
        self.maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}, "r": {4, 5, 0}},
            replan_after=8,
        )
        self.executor = CrossRoundPlanExecutor(
            self.maintainer.plan, self.K, verify=True
        )
        self.executor.connect(self.feed)
        self.maintainer.subscribe(self.executor.rebind)
        self.maintainer.connect(self.feed)
        self.sort_cache = CrossRoundSortCache(self._sort_plan(), verify=True)
        self.sort_cache.connect(self.feed)
        self.maintainer.subscribe(
            lambda plan: self.sort_cache.rebind(self._sort_plan())
        )
        self.bids = {a: float(a % 7 + 1) for a in range(6)}

    def _sort_plan(self):
        return build_shared_sort_plan(
            {
                phrase: sorted(ids)
                for phrase, ids in sorted(self.maintainer.interests().items())
            },
            1.0,
        )

    def scores(self):
        return {a: bid * self.CTR[a] for a, bid in self.bids.items()}

    def run_round_and_check(self):
        """One round through both caches, checked against fresh oracles."""
        scores = self.scores()
        result = self.executor.run_round(dict(scores))
        for query in self.executor.plan.instance.queries:
            expected = top_k_scan(
                self.K, [(scores[v], v) for v in sorted(query.variables)]
            )
            assert result.answers[query.name] == expected, query.name
        live = self.sort_cache.instantiate(dict(self.bids))
        fresh = self.sort_cache.plan.instantiate(dict(self.bids))
        for phrase in sorted(self.maintainer.interests()):
            assert drain(live.stream_for_phrase(phrase)) == drain(
                fresh.stream_for_phrase(phrase)
            ), phrase
        return result


class TestAdvertiserChurn:
    def test_advertiser_enters_existing_and_new_phrases(self):
        harness = ChurnHarness()
        harness.run_round_and_check()
        harness.bids[6] = 9.0
        harness.feed.publish(
            AdvertiserAdded(6, frozenset({"p", "brand-new"}))
        )
        interests = harness.maintainer.interests()
        assert 6 in interests["p"]
        assert interests["brand-new"] == frozenset({6})
        assert harness.executor.rebinds >= 1
        assert harness.sort_cache.rebinds >= 1
        result = harness.run_round_and_check()
        assert "brand-new" in result.answers or any(
            q.name == "brand-new"
            for q in harness.executor.plan.instance.trivial_queries
        )

    def test_advertiser_leaves_dropping_singleton_phrases(self):
        harness = ChurnHarness()
        harness.run_round_and_check()
        harness.bids[7] = 3.0
        harness.feed.publish(AdvertiserAdded(7, frozenset({"solo", "q"})))
        harness.run_round_and_check()
        harness.feed.publish(AdvertiserRemoved(7))
        del harness.bids[7]
        interests = harness.maintainer.interests()
        assert "solo" not in interests, "singleton phrase must be dropped"
        assert 7 not in interests["q"]
        harness.run_round_and_check()

    def test_readded_advertiser_with_new_bid_is_covered(self):
        # Leave and come back with a different bid: the AdvertiserAdded
        # event must cover the value change, or verify=True would raise.
        harness = ChurnHarness()
        harness.run_round_and_check()
        harness.bids[8] = 2.0
        harness.feed.publish(AdvertiserAdded(8, frozenset({"r"})))
        harness.run_round_and_check()
        harness.feed.publish(AdvertiserRemoved(8))
        del harness.bids[8]
        harness.run_round_and_check()
        harness.bids[8] = 11.0  # different bid on re-entry
        harness.feed.publish(AdvertiserAdded(8, frozenset({"p"})))
        harness.run_round_and_check()


class TestPhraseChurn:
    def test_phrase_added_and_removed(self):
        harness = ChurnHarness()
        harness.run_round_and_check()
        harness.feed.publish(PhraseAdded("z", frozenset({1, 3}), 0.8))
        interests = harness.maintainer.interests()
        assert interests["z"] == frozenset({1, 3})
        harness.run_round_and_check()
        harness.feed.publish(PhraseRemoved("z"))
        assert "z" not in harness.maintainer.interests()
        harness.run_round_and_check()

    def test_duplicate_phrase_add_raises_through_the_bus(self):
        harness = ChurnHarness()
        with pytest.raises(InvalidPlanError, match="already exists"):
            harness.feed.publish(PhraseAdded("p", frozenset({1})))

    def test_unknown_phrase_removal_raises_through_the_bus(self):
        harness = ChurnHarness()
        with pytest.raises(InvalidPlanError, match="unknown phrase"):
            harness.feed.publish(PhraseRemoved("never-existed"))


class TestChurnAndValueChangesCompose:
    def test_interleaved_churn_bids_and_rounds(self):
        harness = ChurnHarness()
        harness.run_round_and_check()
        # Structural and value events in the same inter-round gap.
        harness.bids[2] = 12.0
        harness.feed.publish(BidChanged(2))
        harness.bids[9] = 6.5
        harness.feed.publish(AdvertiserAdded(9, frozenset({"q", "r"})))
        harness.run_round_and_check()
        harness.feed.publish(PhraseAdded("w", frozenset({0, 9}), 0.5))
        harness.bids[9] = 1.5
        harness.feed.publish(BidChanged(9))
        harness.run_round_and_check()
        harness.feed.publish(AdvertiserRemoved(9))
        del harness.bids[9]
        # Phrase "w" survives with advertiser 0 alone.
        assert harness.maintainer.interests()["w"] == frozenset({0})
        harness.run_round_and_check()
        assert harness.executor.rebinds >= 3
        assert harness.sort_cache.rebinds >= 3

    def test_caches_keep_reusing_work_across_rebinds(self):
        harness = ChurnHarness()
        harness.run_round_and_check()
        harness.run_round_and_check()
        reused_before = harness.sort_cache.streams_reused
        # Touch a phrase disjoint from 'q': its subtree must survive the
        # repair and keep feeding both caches.
        harness.feed.publish(PhraseAdded("extra", frozenset({1, 5}), 0.9))
        result = harness.run_round_and_check()
        assert result.nodes_reused > 0, (
            "plan-node values must survive a disjoint structural repair"
        )
        assert harness.sort_cache.streams_reused > reused_before, (
            "sort streams must survive a disjoint structural repair"
        )
