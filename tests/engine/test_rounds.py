"""Tests for round batching."""

from __future__ import annotations

import pytest

from repro.engine.rounds import RoundBatcher, TimestampedQuery
from repro.errors import InvalidAuctionError


def q(t, phrase):
    return TimestampedQuery(t, phrase)


class TestRoundBatcher:
    def test_rejects_non_positive_length(self):
        with pytest.raises(InvalidAuctionError):
            RoundBatcher(0.0)

    def test_groups_by_round_boundary(self):
        batcher = RoundBatcher(1.0)
        rounds = list(
            batcher.batch([q(0.1, "a"), q(0.9, "b"), q(1.1, "a"), q(2.5, "c")])
        )
        assert [r.round_index for r in rounds] == [0, 1, 2]
        assert rounds[0].phrase_counts == {"a": 1, "b": 1}
        assert rounds[1].phrase_counts == {"a": 1}
        assert rounds[2].phrase_counts == {"c": 1}

    def test_duplicates_collapse_with_counts(self):
        batcher = RoundBatcher(2.0)
        (batch,) = batcher.batch([q(0.0, "a"), q(0.5, "a"), q(1.0, "b")])
        assert batch.phrase_counts == {"a": 2, "b": 1}
        assert batch.distinct_phrases == ("a", "b")
        assert batch.total_queries == 3

    def test_empty_rounds_skipped(self):
        batcher = RoundBatcher(1.0)
        rounds = list(batcher.batch([q(0.5, "a"), q(5.5, "b")]))
        assert [r.round_index for r in rounds] == [0, 5]

    def test_unordered_stream_rejected(self):
        batcher = RoundBatcher(1.0)
        with pytest.raises(InvalidAuctionError):
            list(batcher.batch([q(1.0, "a"), q(0.5, "b")]))

    def test_empty_stream(self):
        assert list(RoundBatcher(1.0).batch([])) == []

    def test_start_time_reported(self):
        batcher = RoundBatcher(0.5)
        (batch,) = batcher.batch([q(1.3, "a")])
        assert batch.round_index == 2
        assert batch.start_time == pytest.approx(1.0)

    def test_paper_round_length(self):
        """2/3-second rounds: ~1 music query per 1/3 s gives ~2 per round."""
        batcher = RoundBatcher(2 / 3)
        queries = [q(i / 3, "music") for i in range(12)]  # 4 seconds
        batches = list(batcher.batch(queries))
        assert all(b.phrase_counts["music"] == 2 for b in batches)
